"""E-F5 — Figure 5: gap on unified top-k datasets versus input similarity.

Workload: the Figure 1 pipeline (Section 6.1.3) — Markov-generated rankings
over a larger universe, truncated to their top-k elements, then unified — at
the scale's step grid.  The less similar the inputs, the larger the
unification buckets.

Expected shape (paper, Figure 5 and Section 7.3.2):

* the algorithms accounting for the cost of (un)tying (BioConsert, KwikSort,
  MEDRank) remain stable as similarity drops;
* BordaCount, CopelandMethod and RepeatChoice — which cannot account for the
  unification buckets — degrade sharply on dissimilar unified datasets;
* the average unification-bucket size grows as the similarity decreases.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments import format_figure5, run_figure5


def bench_figure5_unification(benchmark, bench_scale, bench_seed):
    rows, _reports = benchmark.pedantic(
        run_figure5, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    print()
    print(format_figure5(rows))

    gaps: dict[str, dict[int, float]] = defaultdict(dict)
    bucket_sizes: dict[int, float] = {}
    for row in rows:
        gaps[row["algorithm"]][row["steps"]] = row["average_gap"]
        bucket_sizes[row["steps"]] = row["average_bucket_size"]

    low_steps = min(bench_scale.unified_steps)
    high_steps = max(bench_scale.unified_steps)

    # Larger dissimilarity → larger unification buckets (Section 7.3.2).
    assert bucket_sizes[high_steps] >= bucket_sizes[low_steps]

    # Ties-aware algorithms stay good; BioConsert dominates the positional
    # algorithms that cannot account for untying on dissimilar unified data.
    assert gaps["BioConsert"][high_steps] <= 0.05
    assert gaps["BordaCount"][high_steps] >= gaps["BioConsert"][high_steps]
    assert gaps["RepeatChoice"][high_steps] >= gaps["BioConsert"][high_steps]

    # The positional algorithms degrade (or at best stagnate) as the
    # unification buckets grow.
    assert gaps["BordaCount"][high_steps] >= gaps["BordaCount"][low_steps] - 0.02
