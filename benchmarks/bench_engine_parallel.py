"""E-ENG — execution engine: serial vs. process-pool, cold vs. warm cache.

Workload: a figure2-sized batch — one uniformly generated dataset per point
of the scale's n grid, evaluated by the fast half of the algorithm suite
with the exact reference on the small sizes — executed four ways:

* serial backend, cold cache (the historical single-process behaviour);
* process-pool backend (4 workers), cold cache;
* serial backend, warm cache (every run is a hit — zero executions);
* process-pool backend, warm cache.

Expected shape: the process pool beats serial on multi-core machines once
the per-run work dominates the fork/pickle overhead (at smoke scale the
workload is tiny, so the pool mostly demonstrates correctness, not speed);
the warm-cache runs execute *nothing* and finish orders of magnitude
faster.  All four produce the same result fingerprint — the engine's
backend-independence guarantee.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.registry import make_evaluated_suite
from repro.engine import (
    BatchJob,
    ExecutionEngine,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
)
from repro.experiments import AdaptiveExact
from repro.experiments.report import format_seconds, format_table
from repro.generators.uniform import uniform_dataset

_BENCH_ALGORITHMS = (
    "BioConsert",
    "BordaCount",
    "CopelandMethod",
    "KwikSort",
    "MEDRank(0.5)",
    "RepeatChoice",
)


def _make_job(bench_scale, bench_seed) -> BatchJob:
    rng = np.random.default_rng(bench_seed)
    datasets = [
        uniform_dataset(
            bench_scale.num_rankings, n, rng, name=f"bench_engine_n{n}"
        )
        for n in bench_scale.scaling_n_values
    ]
    suite = make_evaluated_suite(seed=bench_seed, names=_BENCH_ALGORITHMS)
    exact = AdaptiveExact(milp_time_limit=bench_scale.time_limit_seconds)
    return BatchJob(
        datasets=datasets,
        suite=suite,
        exact_algorithm=exact,
        exact_max_elements=bench_scale.exact_max_elements,
        time_limit=bench_scale.time_limit_seconds,
    )


def _timed_run(engine: ExecutionEngine, job: BatchJob):
    start = time.perf_counter()
    report = engine.run(job)
    return report, time.perf_counter() - start


def bench_engine_parallel(benchmark, bench_scale, bench_seed, tmp_path_factory):
    job = _make_job(bench_scale, bench_seed)
    serial_dir = tmp_path_factory.mktemp("engine-cache-serial")
    process_dir = tmp_path_factory.mktemp("engine-cache-process")

    # Serial + cold cache is the benchmarked baseline (the legacy behaviour
    # plus cache writes); the variants are timed manually below.
    serial_cold = benchmark.pedantic(
        lambda: ExecutionEngine(SerialBackend(), ResultCache(serial_dir)).run(job),
        rounds=1,
        iterations=1,
    )
    serial_seconds = serial_cold.wall_seconds

    process_cold, process_seconds = _timed_run(
        ExecutionEngine(ProcessPoolBackend(max_workers=4), ResultCache(process_dir)),
        job,
    )
    serial_warm, serial_warm_seconds = _timed_run(
        ExecutionEngine(SerialBackend(), ResultCache(serial_dir)), job
    )
    process_warm, process_warm_seconds = _timed_run(
        ExecutionEngine(ProcessPoolBackend(max_workers=4), ResultCache(process_dir)),
        job,
    )

    rows = [
        {
            "mode": label,
            "time": format_seconds(seconds),
            "executed": report.executed_runs,
            "cached": report.cached_runs,
        }
        for label, seconds, report in (
            ("serial, cold cache", serial_seconds, serial_cold),
            ("process x4, cold cache", process_seconds, process_cold),
            ("serial, warm cache", serial_warm_seconds, serial_warm),
            ("process x4, warm cache", process_warm_seconds, process_warm),
        )
    ]
    print()
    print(
        format_table(
            rows,
            [
                ("mode", "Mode"),
                ("time", "Wall time"),
                ("executed", "Executed"),
                ("cached", "From cache"),
            ],
            title="Engine — serial vs process pool, cold vs warm cache",
        )
    )

    # Backend independence: every mode produces the same results.
    fingerprints = {
        report.result_fingerprint()
        for report in (serial_cold, process_cold, serial_warm, process_warm)
    }
    assert len(fingerprints) == 1

    # Cold runs execute everything; warm runs execute *nothing*.
    assert serial_cold.executed_runs == job.num_runs
    assert process_cold.executed_runs == job.num_runs
    assert serial_warm.executed_runs == 0 and serial_warm.cached_runs == job.num_runs
    assert process_warm.executed_runs == 0

    # Serving from cache is much faster than recomputing.
    assert serial_warm_seconds < serial_seconds


def bench_engine_resilience_overhead(benchmark, bench_scale, bench_seed):
    """No-fault cost of the resilient fan-out versus a bare execution loop.

    The resilience layer (retry state, deadline bookkeeping, fault-site
    lookups) wraps *every* spec execution, so its steady-state overhead with
    no faults injected and no retries must be negligible.  This benchmark
    runs the same spec list through a plain ``execute_spec`` loop and
    through :func:`repro.engine.resilient_map` on the serial backend, and
    asserts the resilient path stays within 5% (plus a small absolute
    allowance for timer noise on sub-second workloads).
    """
    from repro.engine import RetryPolicy, SerialBackend, execute_spec, resilient_map
    from repro.engine.execution import RunSpec

    job = _make_job(bench_scale, bench_seed)
    specs = [
        RunSpec(
            index=index,
            kind="algorithm",
            algorithm_name=name,
            algorithm=algorithm,
            dataset=dataset,
            time_limit=job.time_limit,
        )
        for index, (dataset, (name, algorithm)) in enumerate(
            (dataset, item)
            for dataset in job.datasets
            for item in job.suite.items()
        )
    ]
    policy = RetryPolicy()
    backend = SerialBackend()

    def bare_loop():
        return [execute_spec(spec) for spec in specs]

    def resilient_loop():
        return resilient_map(backend, execute_spec, specs, policy=policy)[0]

    rounds = 3
    bare_seconds = []
    resilient_seconds = []
    for _ in range(rounds):
        start = time.perf_counter()
        bare_results = bare_loop()
        bare_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        resilient_results = resilient_loop()
        resilient_seconds.append(time.perf_counter() - start)
    bare_best = min(bare_seconds)
    resilient_best = min(resilient_seconds)
    overhead = resilient_best / bare_best - 1.0 if bare_best else 0.0

    benchmark.pedantic(resilient_loop, rounds=1, iterations=1)

    print()
    print(
        format_table(
            [
                {
                    "path": "bare execute_spec loop",
                    "time": format_seconds(bare_best),
                    "overhead": "—",
                },
                {
                    "path": "resilient_map (no faults)",
                    "time": format_seconds(resilient_best),
                    "overhead": f"{100.0 * overhead:+.1f}%",
                },
            ],
            [("path", "Path"), ("time", "Best wall time"), ("overhead", "Overhead")],
            title="Engine — resilience layer overhead without faults",
        )
    )

    # Identical results, attempt accounting untouched on the happy path.
    assert [result.score for result in resilient_results] == [
        result.score for result in bare_results
    ]
    assert all(result.attempts == 1 for result in resilient_results)
    # The acceptance bar: ≤5% plus 20ms of absolute timer-noise allowance.
    assert resilient_best <= bare_best * 1.05 + 0.02, (
        f"resilience overhead {100.0 * overhead:.1f}% exceeds the 5% budget "
        f"({resilient_best:.3f}s vs {bare_best:.3f}s)"
    )
