"""RECOVERY — journaled write throughput and replay-vs-rebuild speed.

Exercises the two performance contracts of the durable live-state journal
(:mod:`repro.core.journal`):

* **journal tax** — appending every acknowledged mutation to the
  write-ahead journal (``fsync="batch"``) may cost at most **15 %** of
  the un-journaled write throughput: the benchmark replays the same
  seeded mutation stream through a bare and a journaled
  :class:`~repro.service.live.LiveAggregationSession` in interleaved
  bare/journaled pairs and asserts the best pair satisfies
  ``journaled >= 0.85 × un-journaled``.  The ``always`` and ``never``
  policies are measured alongside for the payload, not asserted.
* **replay speed** — recovering a compacted journal (snapshot adoption +
  tail replay) must be at least **5× faster** than rebuilding the same
  state from scratch (parsing the stored dataset text and running
  :func:`~repro.core.prepared.prepare_rankings` over it — the durable
  state a restarted process actually starts from), because startup
  recovery sits on the serving path.  Byte-identity of the replayed
  pairwise weights against the rebuild is asserted at *every* scale.

Both floors are timing-based, so they are asserted at the ``default``
and ``paper`` scales only; the ``smoke`` scale records the measured
numbers with ``floors_asserted: false`` (CI boxes are too noisy at
millisecond totals).

Results are written to a machine-readable ``BENCH_recovery.json`` (path
overridable through ``REPRO_BENCH_RECOVERY_JSON``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py \
        --benchmark-only -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_recovery.py --scale smoke
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import LiveDataset, prepare_rankings
from repro.core.journal import LiveJournal, replay_journal
from repro.datasets.io import parse_ranking
from repro.experiments.report import format_table
from repro.generators import uniform_dataset
from repro.service.live import LiveAggregationSession
from repro.workloads.churn import ChurnProfile, build_mutation_stream

_DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_recovery.json"

# Journaled write throughput must stay within 15 % of un-journaled.
_THROUGHPUT_RATIO_FLOOR = 0.85

# Replaying a compacted journal must beat a from-scratch rebuild by 5×.
_REPLAY_SPEEDUP_FLOOR = 5.0


@dataclass(frozen=True)
class RecoveryBenchProfile:
    """Scale knobs for the recovery benchmark."""

    num_rankings: int
    num_elements: int
    num_mutations: int
    tail_mutations: int
    assert_floors: bool
    seed: int = 2015

    def describe(self) -> dict:
        """Flat dict for the JSON payload."""
        return {
            "num_rankings": self.num_rankings,
            "num_elements": self.num_elements,
            "num_mutations": self.num_mutations,
            "tail_mutations": self.tail_mutations,
            "seed": self.seed,
        }


# The journal tax is per-record O(n) (serialize + checksum + one flush)
# while a mutation's delta maintenance is O(n²), so the ratio floor is
# stated — and holds — at the paper's regime of large element domains.
_PROFILES = {
    "smoke": RecoveryBenchProfile(
        num_rankings=150,
        num_elements=24,
        num_mutations=120,
        tail_mutations=12,
        assert_floors=False,
    ),
    "default": RecoveryBenchProfile(
        num_rankings=400,
        num_elements=64,
        num_mutations=600,
        tail_mutations=24,
        assert_floors=True,
    ),
    "paper": RecoveryBenchProfile(
        num_rankings=1000,
        num_elements=96,
        num_mutations=500,
        tail_mutations=32,
        assert_floors=True,
    ),
}


def _apply_stream(session: LiveAggregationSession, stream) -> float:
    """Apply every mutation; returns the wall-clock of the loop.

    The collector is quiesced for the timed region so a GC pass landing
    in one side of a bare/journaled pair does not skew the ratio.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for kind, payload in stream:
            if kind == "add":
                session.add_ranking(payload)
            elif kind == "remove":
                session.remove_ranking(payload)
            else:
                index, ranking = payload
                session.update_ranking(index, ranking)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _measure_throughput(base, stream, scratch: Path) -> dict:
    """Mutation throughput: bare session vs journaled, per fsync policy.

    The asserted ``batch`` ratio is measured in *paired* attempts — each
    attempt times a bare run immediately followed by a journaled run and
    takes their ratio — so slow drift (CPU frequency, page cache warmth)
    hits both sides of every pair equally instead of skewing the ratio.
    The asserted number is the *best* pair: like min-of-N wall-clock
    timing, the pair with the least scheduler interference is the
    closest estimate of the true cost ratio; every pair is kept in the
    payload for inspection.
    """
    runs = 5
    bare_times: list[float] = []
    batch_times: list[float] = []
    ratios: list[float] = []
    for attempt in range(runs):
        bare = _apply_stream(
            LiveAggregationSession(list(base.rankings), budget_seconds=0.05),
            stream,
        )
        session = LiveAggregationSession(
            list(base.rankings),
            budget_seconds=0.05,
            journal_dir=scratch / f"throughput-batch-{attempt}",
            journal_fsync="batch",
        )
        journaled = _apply_stream(session, stream)
        session.close()
        bare_times.append(bare)
        batch_times.append(journaled)
        ratios.append(bare / journaled)
    per_policy: dict[str, float] = {"batch": statistics.median(batch_times)}
    # "never" and "always" are payload context only, not asserted.
    for policy in ("never", "always"):
        best = float("inf")
        for attempt in range(2):
            directory = scratch / f"throughput-{policy}-{attempt}"
            session = LiveAggregationSession(
                list(base.rankings),
                budget_seconds=0.05,
                journal_dir=directory,
                journal_fsync=policy,
            )
            best = min(best, _apply_stream(session, stream))
            session.close()
        per_policy[policy] = best
    mutations = len(stream)
    bare = statistics.median(bare_times)
    return {
        "mutations": mutations,
        "bare_seconds": bare,
        "bare_mutations_per_second": mutations / bare,
        "journaled_seconds_by_fsync": per_policy,
        "journaled_mutations_per_second": mutations / per_policy["batch"],
        "batch_ratio": max(ratios),
        "batch_ratio_median": statistics.median(ratios),
        "batch_ratio_pairs": ratios,
    }


def _measure_replay(base, stream, tail, scratch: Path) -> dict:
    """Replay of a compacted journal vs a from-scratch rebuild.

    The rebuild starts from the dataset's canonical *text* lines — a
    restarted process only has durable state, so the honest alternative
    to journal replay is parsing the stored dataset and recounting the
    pairwise weights, not recounting from Python objects it no longer
    holds.
    """
    directory = scratch / "replay"
    session = LiveAggregationSession(
        list(base.rankings),
        budget_seconds=0.05,
        journal_dir=directory,
        journal_fsync="batch",
    )
    _apply_stream(session, stream)
    session.repair()
    session.compact()  # snapshot: replay adopts matrices, skips history
    _apply_stream(session, tail)
    final_lines = [
        session.dataset.line_at(i) for i in range(session.dataset.num_rankings)
    ]
    session.close()

    start = time.perf_counter()
    result = replay_journal(directory)
    replay_seconds = time.perf_counter() - start

    start = time.perf_counter()
    rebuilt = prepare_rankings([parse_ranking(line) for line in final_lines])
    rebuild_seconds = time.perf_counter() - start

    weights = result.dataset.weights()
    weights_match = bool(
        np.array_equal(weights.before_matrix, rebuilt.weights.before_matrix)
        and np.array_equal(weights.tied_matrix, rebuilt.weights.tied_matrix)
    )
    return {
        "replayed_records": result.replayed_records,
        "from_snapshot": result.from_snapshot,
        "replay_seconds": replay_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / max(replay_seconds, 1e-12),
        "weights_match_rebuild": weights_match,
        "consensus_recovered": result.consensus is not None,
    }


def run_recovery_benchmark(scale_name: str, seed: int = 2015) -> dict:
    """Run both phases at ``scale_name`` and assemble the asserted payload."""
    try:
        profile = _PROFILES[scale_name]
    except KeyError:
        raise SystemExit(
            f"unknown scale {scale_name!r}; expected one of {sorted(_PROFILES)}"
        ) from None
    if seed != profile.seed:
        profile = RecoveryBenchProfile(
            **{
                **profile.describe(),
                "assert_floors": profile.assert_floors,
                "seed": seed,
            }
        )

    base = uniform_dataset(
        profile.num_rankings,
        profile.num_elements,
        rng=profile.seed,
        name="recovery-bench",
    )
    reference = LiveDataset(base.rankings, name="recovery-stream")
    stream = build_mutation_stream(
        reference,
        ChurnProfile(num_mutations=profile.num_mutations, seed=profile.seed),
    )
    tail = build_mutation_stream(
        reference,
        ChurnProfile(num_mutations=profile.tail_mutations, seed=profile.seed + 1),
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-recovery-") as scratch:
        throughput = _measure_throughput(base, stream, Path(scratch))
        replay = _measure_replay(base, stream, tail, Path(scratch))

    assert replay["weights_match_rebuild"], (
        "replayed pairwise weights diverged from the from-scratch rebuild"
    )
    if profile.assert_floors:
        assert throughput["batch_ratio"] >= _THROUGHPUT_RATIO_FLOOR, (
            f"journal tax regressed: journaled (fsync=batch) ran at "
            f"{throughput['batch_ratio']:.2f}× the bare write throughput "
            f"(floor {_THROUGHPUT_RATIO_FLOOR}×)"
        )
        assert replay["speedup"] >= _REPLAY_SPEEDUP_FLOOR, (
            f"replay floor regressed: replay {replay['replay_seconds']:.4f}s "
            f"vs rebuild {replay['rebuild_seconds']:.4f}s = "
            f"{replay['speedup']:.1f}× (< {_REPLAY_SPEEDUP_FLOOR}×)"
        )

    return {
        "benchmark": "recovery",
        "scale": scale_name,
        "profile": profile.describe(),
        "floors_asserted": profile.assert_floors,
        "throughput": throughput,
        "throughput_ratio_floor": _THROUGHPUT_RATIO_FLOOR,
        "replay": replay,
        "replay_speedup_floor": _REPLAY_SPEEDUP_FLOOR,
    }


def write_payload(payload: dict, output: Path | None = None) -> Path:
    """Write the machine-readable timings; returns the path written."""
    if output is None:
        override = os.environ.get("REPRO_BENCH_RECOVERY_JSON")
        output = Path(override) if override else _DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def _print_payload(payload: dict) -> None:
    throughput = payload["throughput"]
    replay = payload["replay"]
    floors = "asserted" if payload["floors_asserted"] else "recorded only"
    rows = [
        {
            "phase": "journal tax",
            "work": f"{throughput['mutations']} mutations",
            "time": f"{1000.0 * throughput['journaled_seconds_by_fsync']['batch']:.1f} ms",
            "versus": f"bare {1000.0 * throughput['bare_seconds']:.1f} ms",
            "verdict": f"{throughput['batch_ratio']:.2f}× (floor "
            f"{payload['throughput_ratio_floor']:.2f}×, {floors})",
        },
        {
            "phase": "replay",
            "work": f"{replay['replayed_records']} records"
            + (" + snapshot" if replay["from_snapshot"] else ""),
            "time": f"{1000.0 * replay['replay_seconds']:.1f} ms",
            "versus": f"rebuild {1000.0 * replay['rebuild_seconds']:.1f} ms",
            "verdict": f"{replay['speedup']:.1f}× (floor "
            f"{payload['replay_speedup_floor']:.0f}×, {floors})",
        },
    ]
    profile = payload["profile"]
    print(
        format_table(
            rows,
            [
                ("phase", "Phase"),
                ("work", "Work"),
                ("time", "Time"),
                ("versus", "Versus"),
                ("verdict", "Verdict"),
            ],
            title=(
                f"Recovery — scale={payload['scale']}, "
                f"m={profile['num_rankings']}, n={profile['num_elements']}"
            ),
        )
    )


def bench_recovery(benchmark, bench_seed):
    """pytest-benchmark entry point: one timed pass over both phases."""
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    payload = benchmark.pedantic(
        lambda: run_recovery_benchmark(scale_name, bench_seed),
        rounds=1,
        iterations=1,
    )
    path = write_payload(payload)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args()
    payload = run_recovery_benchmark(arguments.scale, arguments.seed)
    path = write_payload(payload, arguments.output)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


if __name__ == "__main__":
    main()
