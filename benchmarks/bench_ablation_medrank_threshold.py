"""Ablation A1 — MEDRank threshold sensitivity (Section 7.1.1).

Workload: uniformly generated datasets (same grid as Table 5).  Measured
quantity: average gap of MEDRank for a grid of threshold values.

Expected shape (paper, Section 7.1.1): MEDRank is very sensitive to its
threshold; values above the default 0.5 do not improve the consensus, so
0.5 is the value to prefer.
"""

from __future__ import annotations

from repro.experiments import format_medrank_ablation, run_medrank_threshold_ablation


def bench_ablation_medrank_threshold(benchmark, bench_scale, bench_seed):
    rows, _report = benchmark.pedantic(
        run_medrank_threshold_ablation,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_medrank_ablation(rows))

    gaps = {row["threshold"]: row["average_gap"] for row in rows}
    # Thresholds above the default 0.5 never help (Section 7.1.1).
    for threshold, value in gaps.items():
        if threshold > 0.5:
            assert value >= gaps[0.5] - 0.05, (threshold, value, gaps[0.5])
    # The sweep is informative: the worst threshold is clearly worse than the best.
    assert max(gaps.values()) > min(gaps.values())
