"""Ablation A3 — threshold normalization between projection and unification (Section 8).

Workload: an F1-like season (races ranking only their finishers).  The
generalized normalization keeps the elements present in at least ``k``
rankings and unifies the rest: ``k = 1`` is unification, ``k = m`` is
projection.

Expected shape (Sections 7.3.1 and 8): as ``k`` grows the dataset shrinks
monotonically and relevant elements (strong pilots who missed a race or
two) start disappearing; the quality of the consensus achievable on the
kept elements stays high, so the trade-off is purely about which elements
survive — the reason the paper calls for intermediate ``k`` values.
"""

from __future__ import annotations

from repro.experiments import format_normalization_ablation, run_normalization_ablation


def bench_ablation_normalization(benchmark, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        run_normalization_ablation,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_normalization_ablation(rows))

    kept = [row["elements_kept"] for row in rows]
    top_kept = [row["top_pilots_kept"] for row in rows]

    # k = 1 (unification) keeps every pilot; larger k keeps monotonically fewer.
    assert kept[0] == max(kept)
    assert all(kept[i] >= kept[i + 1] for i in range(len(kept) - 1))

    # Unification retains all of the relevant pilots; full projection loses some.
    assert top_kept[0] == rows[0]["top_pilots_total"]
    assert top_kept[-1] <= top_kept[0]
