"""E-T4 — Table 4: average gap on the real-world(-like) dataset groups.

Workload: the synthetic stand-ins for WebSearch / F1 / SkiCross / BioMedical
(see DESIGN.md substitutions), each normalized the way the paper normalizes
the corresponding real group (projection and/or unification).  Baselines:
the full evaluated suite.  Reference: exact solver where feasible, m-gap
otherwise (exactly the paper's protocol for large unified WebSearch data).

Expected shape (paper, Table 4): BioConsert first or tied-first in (almost)
every column, KwikSortMin close behind, positional algorithms far behind on
unified columns, Ailon 3/2 absent (—) from the large unified WebSearch
column because its LP does not scale.
"""

from __future__ import annotations

from repro.experiments import format_table4, run_table4


def bench_table4_real_datasets(benchmark, bench_scale, bench_seed):
    reports = benchmark.pedantic(
        run_table4, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    print()
    print(format_table4(reports))

    # BioConsert leads every column where it ran (paper: best in 91.8% of
    # the real datasets).  A column can be empty when projection removes
    # (almost) every element — the paper observes the same on WebSearch.
    for (group, normalization), report in reports.items():
        ranks = report.algorithm_ranks()
        if "BioConsert" in ranks:
            assert ranks["BioConsert"] <= 3, (group, normalization, ranks)

    # Ailon 3/2 cannot handle the large unified WebSearch-like datasets.
    websearch_unified = reports.get(("WebSearch", "unification"))
    if websearch_unified is not None:
        assert "Ailon3/2" not in websearch_unified.average_gaps()
