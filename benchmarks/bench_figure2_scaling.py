"""E-F2 — Figure 2: computing time as a function of the number of elements.

Workload: uniformly generated datasets of m rankings over the scale's n
grid.  Measured quantity: average time per aggregation for every algorithm,
using the repeat-until-threshold protocol of Section 6.2.4.

Expected shape (paper, Figure 2): the positional algorithms (BordaCount,
CopelandMethod, MEDRank, RepeatChoice) stay within microseconds-to-
milliseconds and are indistinguishable; BioConsert is orders of magnitude
slower but still practical; the exact solver and Ailon 3/2 blow up quickly
and drop out of the curve.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments import format_figure2, run_figure2


def bench_figure2_scaling(benchmark, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        run_figure2,
        args=(bench_scale,),
        kwargs={"seed": bench_seed, "min_total_seconds": 0.02},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure2(rows))

    by_algorithm: dict[str, dict[int, float]] = defaultdict(dict)
    for row in rows:
        by_algorithm[row["algorithm"]][row["num_elements"]] = row["seconds"]

    largest_n = max(bench_scale.scaling_n_values)
    # Positional algorithms answer in well under 50 ms even at the largest n.
    for fast in ("BordaCount", "CopelandMethod", "MEDRank(0.5)", "RepeatChoice"):
        assert by_algorithm[fast][largest_n] < 0.05, fast

    # BioConsert is slower than the positional algorithms at the largest n
    # (the price of its local search), matching the Figure 2 ordering.
    assert by_algorithm["BioConsert"][largest_n] > by_algorithm["BordaCount"][largest_n]

    # The exact solver / Ailon do not appear beyond the feasibility limit.
    for expensive in ("ExactAlgorithm", "Ailon3/2"):
        measured_sizes = set(by_algorithm.get(expensive, {}))
        assert all(n <= bench_scale.exact_max_elements for n in measured_sizes)
