"""W-MATRIX — scenario workload matrix through the engine: cold vs warm cache.

Workload: the full registered scenario catalog (≥ 11 scenarios, including
the Mallows-with-ties / Plackett–Luce families and the adversarial
regimes), fanned through the execution engine as a
:class:`~repro.workloads.matrix.ScenarioMatrix` with shard-level batching
and scenario-namespaced cache keys, at the scenario scale matching
``REPRO_BENCH_SCALE`` (smoke → ``smoke``, anything larger → ``default``).

Expected shape: the cold run executes every (scenario × algorithm ×
dataset) cell; the warm re-run executes *nothing* (pure cache hits) while
producing an identical deterministic payload — the aliasing-proof cache
keys at work across a heterogeneous grid.
"""

from __future__ import annotations

import time

from repro.engine import ExecutionEngine, ResultCache, SerialBackend
from repro.experiments.report import format_seconds, format_table
from repro.workloads import ScenarioMatrix, deterministic_payload, scenario_names


def _matrix_scale(bench_scale) -> str:
    return "smoke" if bench_scale.name == "smoke" else "default"


def bench_scenario_matrix(benchmark, bench_scale, bench_seed, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("scenario-matrix-cache")
    matrix = ScenarioMatrix(scale=_matrix_scale(bench_scale), seed=bench_seed)

    cold = benchmark.pedantic(
        lambda: matrix.run(ExecutionEngine(SerialBackend(), ResultCache(cache_dir))),
        rounds=1,
        iterations=1,
    )
    start = time.perf_counter()
    warm = matrix.run(ExecutionEngine(SerialBackend(), ResultCache(cache_dir)))
    warm_seconds = time.perf_counter() - start

    rows = [
        {
            "mode": label,
            "time": format_seconds(seconds),
            "scenarios": len(report.scenarios),
            "executed": report.executed_runs,
            "cached": report.cached_runs,
        }
        for label, seconds, report in (
            ("cold cache", cold.wall_seconds, cold),
            ("warm cache", warm_seconds, warm),
        )
    ]
    print()
    print(
        format_table(
            rows,
            [
                ("mode", "Mode"),
                ("time", "Wall time"),
                ("scenarios", "Scenarios"),
                ("executed", "Executed"),
                ("cached", "From cache"),
            ],
            title="Scenario matrix — cold vs warm cache",
        )
    )

    assert len(cold.scenarios) == len(scenario_names()) >= 8
    assert cold.executed_runs == cold.total_runs > 0
    assert warm.executed_runs == 0 and warm.cached_runs == warm.total_runs
    assert deterministic_payload(cold.to_payload()) == deterministic_payload(
        warm.to_payload()
    )
