"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a
configurable scale:

* ``REPRO_BENCH_SCALE=smoke``   (default) — seconds per benchmark; checks the
  shape of every result on a laptop / CI machine;
* ``REPRO_BENCH_SCALE=default`` — minutes; closer to the paper's dataset
  counts while staying laptop-friendly;
* ``REPRO_BENCH_SCALE=paper``   — the paper's parameters (hours).

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also print the regenerated tables (the same rows/series the
paper reports).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_scale


def _selected_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale used by every benchmark of the session."""
    return get_scale(_selected_scale())


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Common seed so that all benchmarks run on the same generated data."""
    return 2015
