"""Ablation A2 — chaining strategies (Section 8).

Workload: uniformly generated datasets at the scale's ``medium_n``.
Measured quantities: average gap and average time of the cheap algorithms,
the anytime refiners, and their chained combinations.

Expected shape (Section 8's motivation): chaining a positional algorithm
with an anytime refiner recovers (nearly) the refiner's quality — i.e. it
improves dramatically on the positional algorithm alone — which is the
premise of the "chaining several algorithms" research direction the paper
proposes.
"""

from __future__ import annotations

from repro.experiments import format_chaining_ablation, run_chaining_ablation


def bench_ablation_chaining(benchmark, bench_scale, bench_seed):
    rows, _report = benchmark.pedantic(
        run_chaining_ablation,
        args=(bench_scale,),
        kwargs={"seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_chaining_ablation(rows))

    gaps = {row["algorithm"]: row["average_gap"] for row in rows}

    # Chaining improves on the cheap first stage...
    assert gaps["Chained(Borda→BioConsert)"] <= gaps["BordaCount"] + 1e-9
    assert gaps["Chained(MEDRank→BioConsert)"] <= gaps["MEDRank(0.5)"] + 1e-9
    assert gaps["Chained(Borda→SA)"] <= gaps["BordaCount"] + 1e-9

    # ... and the local-search-refined chain lands close to BioConsert itself.
    assert gaps["Chained(Borda→BioConsert)"] <= gaps["BioConsert"] + 0.05
