"""E-F3 — Figure 3: distribution of the similarity per dataset group.

Workload: the real-world-like groups under the normalizations the paper
uses, the Markov-chain datasets at three step counts, and uniformly
generated datasets.  Measured quantity: the intrinsic similarity ``s(R)``
of every dataset (equation 5).

Expected shape (paper, Figure 3): SkiCross and the low-step Markov datasets
are strongly positive; WebSearch-unified and the high-step Markov datasets
sit around or below zero; uniformly generated datasets sit slightly below
zero (≈ -0.04).
"""

from __future__ import annotations

from repro.experiments import format_figure3, run_figure3


def bench_figure3_similarity(benchmark, bench_scale, bench_seed):
    rows = benchmark.pedantic(
        run_figure3, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    print()
    print(format_figure3(rows))

    means = {row["group"]: row["mean"] for row in rows}

    # Uniform datasets: similarity slightly below zero (Section 7.2).
    assert -0.3 < means["Syn. uniform"] < 0.2

    # The Markov similarity knob orders the groups by step count.
    markov_rows = [row for row in rows if row["group"].startswith("Syn. w/ similarity")]
    markov_means = [row["mean"] for row in markov_rows]
    assert markov_means == sorted(markov_means, reverse=True)

    # SkiCross-like competitions are highly similar.
    skicross = [value for group, value in means.items() if group.startswith("SkiCross")]
    if skicross:
        assert max(skicross) > 0.4
