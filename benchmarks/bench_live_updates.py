"""LIVE — streaming mutation cost and warm-started consensus repair.

Exercises the two performance contracts of the live-dataset layer
(:class:`~repro.core.LiveDataset` + anytime warm starts):

* **delta maintenance** — a single streamed mutation (``update_ranking``)
  refreshes the O(n²) pairwise-weight planes by subtracting/adding the
  touched ranking's comparison plane instead of re-running the full
  O(m·n²) preparation.  The benchmark replays a stream of updates over a
  uniform dataset with ``m >= 200`` rankings, timing each delta against a
  from-scratch ``prepare_rankings`` rebuild of the same content, and
  asserts the median delta is at least **10× faster** (the acceptance
  floor of the PR that introduced live datasets).  It also re-checks the
  correctness contract: the maintained planes stay byte-identical to the
  rebuild.
* **warm repair** — after one mutation invalidates a converged consensus,
  an anytime search warm-started from the stale consensus must reach the
  cold run's final generalized Kemeny score in at most **50 %** of the
  cold run's wall-clock.  The benchmark steps both controllers explicitly
  and records the time-to-target.

Results are written to a machine-readable ``BENCH_live.json`` (path
overridable through ``REPRO_BENCH_LIVE_JSON``); both floors are embedded
in the payload and asserted at every scale.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_live_updates.py \
        --benchmark-only -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_live_updates.py --scale smoke
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.algorithms import BioConsert
from repro.algorithms.anytime import run_anytime
from repro.core import LiveDataset, prepare_rankings
from repro.core.kemeny import generalized_kemeny_score_from_weights
from repro.experiments.report import format_table
from repro.generators import uniform_dataset

_DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_live.json"

# A streamed delta must beat a full O(m·n²) rebuild by at least this much.
_DELTA_SPEEDUP_FLOOR = 10.0

# Warm repair must reach the cold final score within this fraction of the
# cold run's wall-clock.
_WARM_FRACTION_CEILING = 0.5


@dataclass(frozen=True)
class LiveBenchProfile:
    """Scale knobs for the live-update benchmark."""

    num_rankings: int
    num_elements: int
    num_mutations: int
    seed: int = 2015

    def describe(self) -> dict:
        """Flat dict for the JSON payload."""
        return {
            "num_rankings": self.num_rankings,
            "num_elements": self.num_elements,
            "num_mutations": self.num_mutations,
            "seed": self.seed,
        }


# The delta floor is stated at m >= 200, so even the smoke profile keeps
# that many rankings; the per-mutation work is O(n²), seconds overall.
_PROFILES = {
    "smoke": LiveBenchProfile(num_rankings=200, num_elements=12, num_mutations=16),
    "default": LiveBenchProfile(num_rankings=400, num_elements=20, num_mutations=32),
    "paper": LiveBenchProfile(num_rankings=1000, num_elements=30, num_mutations=64),
}


def _measure_deltas(live: LiveDataset, profile: LiveBenchProfile) -> dict:
    """Replay ``num_mutations`` updates, timing delta vs full rebuild."""
    delta_seconds: list[float] = []
    rebuild_seconds: list[float] = []
    size = len(live)
    for step in range(profile.num_mutations):
        replacement = live[(step * 7 + 3) % size]
        start = time.perf_counter()
        live.update_ranking(step % size, replacement)
        delta_seconds.append(time.perf_counter() - start)

        start = time.perf_counter()
        fresh = prepare_rankings(list(live.rankings))
        rebuild_seconds.append(time.perf_counter() - start)

    maintained = live.prepared()
    weights_match = bool(
        np.array_equal(maintained.weights.before_matrix, fresh.weights.before_matrix)
        and np.array_equal(maintained.weights.tied_matrix, fresh.weights.tied_matrix)
    )
    median_delta = statistics.median(delta_seconds)
    median_rebuild = statistics.median(rebuild_seconds)
    return {
        "mutations": profile.num_mutations,
        "median_delta_seconds": median_delta,
        "median_rebuild_seconds": median_rebuild,
        "max_delta_seconds": max(delta_seconds),
        "speedup": median_rebuild / max(median_delta, 1e-12),
        "weights_match_rebuild": weights_match,
    }


def _run_to_exhaustion(controller) -> tuple[float, int]:
    """Drive a controller until it finishes; returns (wall, steps)."""
    start = time.perf_counter()
    while controller.step():
        pass
    return time.perf_counter() - start, controller.steps


def _run_to_target(controller, target: int) -> tuple[float, int, bool]:
    """Step until ``best_score <= target``; returns (wall, steps, reached)."""
    start = time.perf_counter()
    while controller.step():
        if controller.best_score is not None and controller.best_score <= target:
            return time.perf_counter() - start, controller.steps, True
    reached = controller.best_score is not None and controller.best_score <= target
    return time.perf_counter() - start, controller.steps, reached


def _measure_warm_repair(live: LiveDataset, profile: LiveBenchProfile) -> dict:
    """Time a cold run vs a warm-started repair after one mutation."""
    algorithm = BioConsert()
    previous = run_anytime(algorithm, live.snapshot(), None).consensus

    # One streamed write invalidates the converged consensus.
    live.update_ranking(0, live[len(live) // 2])
    snapshot = live.snapshot()
    stale_score = generalized_kemeny_score_from_weights(
        previous, snapshot.pairwise_weights()
    )

    cold = algorithm.begin_anytime(snapshot)
    cold_wall, cold_steps = _run_to_exhaustion(cold)
    cold_score = cold.best_score

    warm = algorithm.begin_anytime(snapshot, initial=previous)
    warm_wall, warm_steps, reached = _run_to_target(warm, cold_score)
    return {
        "cold_wall_seconds": cold_wall,
        "cold_steps": cold_steps,
        "cold_score": int(cold_score),
        "stale_score": int(stale_score),
        "warm_seconds_to_cold_score": warm_wall,
        "warm_steps_to_cold_score": warm_steps,
        "warm_reached_cold_score": reached,
        "fraction_of_cold": warm_wall / max(cold_wall, 1e-12),
    }


def run_live_benchmark(scale_name: str, seed: int = 2015) -> dict:
    """Run both phases at ``scale_name`` and assemble the asserted payload."""
    try:
        profile = _PROFILES[scale_name]
    except KeyError:
        raise SystemExit(
            f"unknown scale {scale_name!r}; expected one of {sorted(_PROFILES)}"
        ) from None
    if seed != profile.seed:
        profile = LiveBenchProfile(**{**profile.describe(), "seed": seed})

    base = uniform_dataset(
        profile.num_rankings, profile.num_elements, rng=profile.seed, name="live-bench"
    )
    delta = _measure_deltas(LiveDataset(base.rankings, name="live-delta"), profile)
    warm = _measure_warm_repair(LiveDataset(base.rankings, name="live-warm"), profile)

    assert delta["weights_match_rebuild"], (
        "delta-maintained planes diverged from the from-scratch rebuild"
    )
    assert delta["speedup"] >= _DELTA_SPEEDUP_FLOOR, (
        f"delta-update floor regressed: rebuild {delta['median_rebuild_seconds']:.6f}s"
        f" vs delta {delta['median_delta_seconds']:.6f}s"
        f" = {delta['speedup']:.1f}× (< {_DELTA_SPEEDUP_FLOOR}×)"
    )
    assert warm["warm_reached_cold_score"], (
        "warm repair never reached the cold final score"
    )
    assert warm["fraction_of_cold"] <= _WARM_FRACTION_CEILING, (
        f"warm-repair floor regressed: reached the cold score "
        f"{warm['cold_score']} in {warm['warm_seconds_to_cold_score']:.4f}s, "
        f"{warm['fraction_of_cold']:.2%} of the cold run's "
        f"{warm['cold_wall_seconds']:.4f}s (> {_WARM_FRACTION_CEILING:.0%})"
    )

    return {
        "benchmark": "live-updates",
        "scale": scale_name,
        "profile": profile.describe(),
        "delta": delta,
        "delta_speedup_floor": _DELTA_SPEEDUP_FLOOR,
        "warm_repair": warm,
        "warm_fraction_ceiling": _WARM_FRACTION_CEILING,
    }


def write_payload(payload: dict, output: Path | None = None) -> Path:
    """Write the machine-readable timings; returns the path written."""
    if output is None:
        override = os.environ.get("REPRO_BENCH_LIVE_JSON")
        output = Path(override) if override else _DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def _print_payload(payload: dict) -> None:
    delta = payload["delta"]
    warm = payload["warm_repair"]
    rows = [
        {
            "phase": "delta update",
            "work": f"{delta['mutations']} mutations",
            "time": f"{1000.0 * delta['median_delta_seconds']:.3f} ms",
            "versus": f"rebuild {1000.0 * delta['median_rebuild_seconds']:.3f} ms",
            "verdict": f"{delta['speedup']:.0f}× (floor "
            f"{payload['delta_speedup_floor']:.0f}×)",
        },
        {
            "phase": "warm repair",
            "work": f"{warm['warm_steps_to_cold_score']} steps",
            "time": f"{1000.0 * warm['warm_seconds_to_cold_score']:.3f} ms",
            "versus": f"cold {1000.0 * warm['cold_wall_seconds']:.3f} ms",
            "verdict": f"{warm['fraction_of_cold']:.1%} (ceiling "
            f"{payload['warm_fraction_ceiling']:.0%})",
        },
    ]
    profile = payload["profile"]
    print(
        format_table(
            rows,
            [
                ("phase", "Phase"),
                ("work", "Work"),
                ("time", "Time"),
                ("versus", "Versus"),
                ("verdict", "Verdict"),
            ],
            title=(
                f"Live updates — scale={payload['scale']}, "
                f"m={profile['num_rankings']}, n={profile['num_elements']}"
            ),
        )
    )


def bench_live_updates(benchmark, bench_seed):
    """pytest-benchmark entry point: one timed pass over both phases."""
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    payload = benchmark.pedantic(
        lambda: run_live_benchmark(scale_name, bench_seed),
        rounds=1,
        iterations=1,
    )
    path = write_payload(payload)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args()
    payload = run_live_benchmark(arguments.scale, arguments.seed)
    path = write_payload(payload, arguments.output)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


if __name__ == "__main__":
    main()
