"""Micro-benchmarks of the core kernels shared by every algorithm.

These are not paper artefacts; they track the primitives whose cost
dominates every experiment of the harness:

* the generalized Kendall-τ distance (vectorised vs reference),
* the pairwise weight matrices (O(m·n²) construction),
* the weight-based generalized Kemeny scorer,
* one aggregation run of the flagship algorithms at the Figure 6 size
  (m = 7, n = 35).

Regressions here translate directly into slower table/figure regeneration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BioConsert, BordaCount, FaginSmall, KwikSort, MEDRank
from repro.core import (
    PairwiseWeights,
    generalized_kemeny_score_from_weights,
    generalized_kendall_tau_distance,
    generalized_kendall_tau_distance_reference,
)
from repro.generators import sample_uniform_ranking, uniform_dataset

_M, _N = 7, 35


@pytest.fixture(scope="module")
def figure6_dataset():
    return uniform_dataset(_M, _N, rng=123, name="kernel-bench")


@pytest.fixture(scope="module")
def figure6_weights(figure6_dataset):
    return PairwiseWeights(list(figure6_dataset.rankings))


def bench_generalized_distance_vectorized(benchmark, figure6_dataset):
    r, s = figure6_dataset.rankings[0], figure6_dataset.rankings[1]
    benchmark(generalized_kendall_tau_distance, r, s)


def bench_generalized_distance_reference(benchmark, figure6_dataset):
    r, s = figure6_dataset.rankings[0], figure6_dataset.rankings[1]
    benchmark(generalized_kendall_tau_distance_reference, r, s)


def bench_pairwise_weights_construction(benchmark, figure6_dataset):
    benchmark(PairwiseWeights, list(figure6_dataset.rankings))


def bench_weight_based_scorer(benchmark, figure6_dataset, figure6_weights):
    candidate = figure6_dataset.rankings[0]
    benchmark(generalized_kemeny_score_from_weights, candidate, figure6_weights)


def bench_uniform_sampler(benchmark):
    rng = np.random.default_rng(0)
    benchmark(sample_uniform_ranking, list(range(_N)), rng)


@pytest.mark.parametrize(
    "factory",
    [BordaCount, MEDRank, FaginSmall, lambda: KwikSort(seed=0), BioConsert],
    ids=["BordaCount", "MEDRank", "FaginSmall", "KwikSort", "BioConsert"],
)
def bench_algorithm_at_figure6_size(benchmark, figure6_dataset, factory):
    algorithm = factory()
    benchmark.pedantic(
        algorithm.aggregate, args=(figure6_dataset,), rounds=3, iterations=1
    )
