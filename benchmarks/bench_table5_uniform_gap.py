"""E-T5 — Table 5: average gap / %optimal / %first on uniform datasets.

Workload: uniformly generated rankings with ties (Section 6.1.1), m rankings
over the scale's n grid.  Baselines: the full evaluated algorithm suite.
Reference: the exact ties-aware solver (Section 4.2) on every dataset small
enough.  The benchmark prints the regenerated Table 5 (run with ``-s``).

Expected shape (paper, Table 5): BioConsert and Ailon 3/2 at the top with a
near-zero average gap, KwikSortMin next, positional algorithms mid-table,
Pick-a-Perm / RepeatChoice / MEDRank(0.7) at the bottom.
"""

from __future__ import annotations

from repro.experiments import format_table5, run_table5


def bench_table5_uniform_gap(benchmark, bench_scale, bench_seed):
    report = benchmark.pedantic(
        run_table5, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    print()
    print(format_table5(report))

    ranks = report.algorithm_ranks()
    gaps = report.average_gaps()
    # Shape checks mirroring the paper's conclusions.
    assert ranks["BioConsert"] <= 3, "BioConsert must rank near the top (paper: #1)"
    assert gaps["BioConsert"] <= 0.02, "BioConsert's average gap is close to zero"
    assert ranks["RepeatChoice"] > ranks["BioConsert"]
    # Section 7.1.1: raising the threshold above the default 0.5 does not
    # improve MEDRank (0.5 wins in 76% of the paper's synthetic datasets,
    # not all of them — hence the tolerance).
    assert gaps["MEDRank(0.5)"] <= gaps["MEDRank(0.7)"] + 0.05
