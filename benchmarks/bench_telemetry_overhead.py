"""TELEMETRY — overhead of the instrumentation layer on the hot path.

Runs the same uncached engine batch (aggregate → evaluate over a small
dataset grid) in three modes and compares wall time:

* **stripped** — the :mod:`repro.telemetry.runtime` helpers are replaced
  by no-ops for the duration of the run, approximating a build with no
  instrumentation sites at all (the floor);
* **disabled** — the shipped default: all call sites present, no session
  active, every helper short-circuits on the module global;
* **enabled**  — a full :func:`~repro.telemetry.runtime.session` capturing
  spans, metrics, and convergence streams.

The contract asserted here (and re-checked by CI) is the tentpole's
zero-overhead promise: the **disabled** mode must stay within
``_DISABLED_CEILING`` (5%) of the stripped floor.  The enabled ratio is
reported for visibility but not asserted — recording real spans is
allowed to cost something.

Timings use the best of ``_REPEATS`` runs (minimum is the most
noise-robust estimator for a fixed workload).  The payload lands in
``BENCH_telemetry.json`` (path overridable through
``REPRO_BENCH_TELEMETRY_JSON``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py \
        --benchmark-only -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --scale smoke
"""

from __future__ import annotations

import contextlib
import json
import os
import statistics
import time
from pathlib import Path

from repro.algorithms import BordaCount, ChanasBoth, MEDRank
from repro.engine import BatchJob, ExecutionEngine
from repro.experiments.report import format_table
from repro.generators import uniform_dataset
from repro.telemetry import runtime

_DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_telemetry.json"

# The disabled mode may cost at most 5% over the stripped floor.
_DISABLED_CEILING = 1.05
_REPEATS = 5

# (num_datasets, num_rankings, num_elements) per scale.
_GRIDS = {
    "smoke": [(4, 4, 10), (2, 6, 14)],
    "default": [(8, 5, 16), (4, 8, 24), (2, 10, 32)],
    "paper": [(16, 6, 24), (8, 10, 40), (4, 14, 60)],
}


def _suite():
    return {
        "BordaCount": BordaCount(),
        "MEDRank": MEDRank(),
        "ChanasBoth": ChanasBoth(),
    }


def _build_jobs(grid):
    jobs = []
    for index, (num_datasets, num_rankings, num_elements) in enumerate(grid):
        datasets = [
            uniform_dataset(num_rankings, num_elements, rng=100 * index + seed,
                            name=f"g{index}d{seed}")
            for seed in range(num_datasets)
        ]
        jobs.append(BatchJob.from_algorithms(datasets, _suite()))
    return jobs


def _run_workload(jobs) -> int:
    """One full uncached pass over every job; returns the run count."""
    runs = 0
    for job in jobs:
        report = ExecutionEngine(cache=None).run(job)
        runs += report.execution_summary()["executed_runs"]
    return runs


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attributes):
        return None

    def record(self, *args, **kwargs):
        return None


_NULL = _NullSpan()


@contextlib.contextmanager
def _stripped_runtime():
    """Replace every runtime helper with a no-op, approximating no call sites."""
    saved = {
        name: getattr(runtime, name)
        for name in (
            "is_enabled",
            "get_active",
            "span",
            "count",
            "observe",
            "set_gauge",
            "convergence_stream",
        )
    }
    try:
        runtime.is_enabled = lambda: False
        runtime.get_active = lambda: None
        runtime.span = lambda *a, **k: _NULL
        runtime.count = lambda *a, **k: None
        runtime.observe = lambda *a, **k: None
        runtime.set_gauge = lambda *a, **k: None
        runtime.convergence_stream = lambda *a, **k: _NULL
        yield
    finally:
        for name, value in saved.items():
            setattr(runtime, name, value)


def _time_mode(jobs, mode: str) -> dict:
    seconds = []
    runs = 0
    entries = 0
    for _ in range(_REPEATS):
        if mode == "stripped":
            context = _stripped_runtime()
        elif mode == "enabled":
            context = runtime.session()
        else:
            context = contextlib.nullcontext()
        start = time.perf_counter()
        with context as active:
            runs = _run_workload(jobs)
        seconds.append(time.perf_counter() - start)
        if mode == "enabled":
            entries = active.entry_count()
    return {
        "seconds_best": min(seconds),
        "seconds_median": statistics.median(seconds),
        "executed_runs": runs,
        "recorded_entries": entries,
    }


def run_telemetry_benchmark(scale_name: str) -> dict:
    """Time the three modes over the scale's grid and assemble the payload."""
    try:
        grid = _GRIDS[scale_name]
    except KeyError:
        raise SystemExit(
            f"unknown scale {scale_name!r}; expected one of {sorted(_GRIDS)}"
        ) from None
    jobs = _build_jobs(grid)

    modes = {}
    for mode in ("stripped", "disabled", "enabled"):
        modes[mode] = _time_mode(jobs, mode)

    floor = max(modes["stripped"]["seconds_best"], 1e-9)
    ratios = {
        "disabled_vs_stripped": modes["disabled"]["seconds_best"] / floor,
        "enabled_vs_stripped": modes["enabled"]["seconds_best"] / floor,
    }

    # The tentpole contract: instrumentation sites are free when disabled.
    assert ratios["disabled_vs_stripped"] <= _DISABLED_CEILING, (
        f"disabled-telemetry overhead regressed: "
        f"{ratios['disabled_vs_stripped']:.3f}× over the stripped floor "
        f"(ceiling {_DISABLED_CEILING}×)"
    )
    # Sanity: the enabled run actually recorded something.
    assert modes["enabled"]["recorded_entries"] > 0

    return {
        "benchmark": "telemetry-overhead",
        "scale": scale_name,
        "grid": [
            {"num_datasets": d, "num_rankings": r, "num_elements": e}
            for d, r, e in grid
        ],
        "repeats": _REPEATS,
        "modes": modes,
        "ratios": ratios,
        "ceilings": {"disabled_vs_stripped": _DISABLED_CEILING},
    }


def write_payload(payload: dict, output: Path | None = None) -> Path:
    """Write the machine-readable timings; returns the path written."""
    if output is None:
        override = os.environ.get("REPRO_BENCH_TELEMETRY_JSON")
        output = Path(override) if override else _DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def _print_payload(payload: dict) -> None:
    floor = payload["modes"]["stripped"]["seconds_best"]
    rows = []
    for mode, stats in payload["modes"].items():
        rows.append(
            {
                "mode": mode,
                "best": f"{1000.0 * stats['seconds_best']:.1f} ms",
                "median": f"{1000.0 * stats['seconds_median']:.1f} ms",
                "ratio": f"{stats['seconds_best'] / max(floor, 1e-9):.3f}×",
                "entries": stats["recorded_entries"],
            }
        )
    print(
        format_table(
            rows,
            [
                ("mode", "Mode"),
                ("best", "Best"),
                ("median", "Median"),
                ("ratio", "vs stripped"),
                ("entries", "Entries"),
            ],
            title=(
                f"Telemetry overhead — scale={payload['scale']}, "
                f"disabled ceiling {payload['ceilings']['disabled_vs_stripped']}×"
            ),
        )
    )


def bench_telemetry_overhead(benchmark):
    """pytest-benchmark entry point: one timed pass over the three modes."""
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    payload = benchmark.pedantic(
        lambda: run_telemetry_benchmark(scale_name), rounds=1, iterations=1
    )
    path = write_payload(payload)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args()
    payload = run_telemetry_benchmark(arguments.scale)
    path = write_payload(payload, arguments.output)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


if __name__ == "__main__":
    main()
