"""P-PREP — per-run dataset preparation vs. the shared PreparedDataset plan.

Times the pipeline change of the shared-plan PR: the seed path rebuilt the
O(m·n²) pairwise weight matrices inside *every* ``aggregate()`` call (once
per algorithm, again for the post-run Kemeny score), while the plan path
builds one :class:`repro.core.PreparedDataset` per dataset and threads it
through the whole algorithm batch.

Two benchmark families:

* **cold multi-algorithm batch** at figure-2 scale (m = 7 rankings, n on
  the paper's scaling grid up to n = 500): the *prepared catalog* — the
  algorithms whose kernels this PR moved onto the plan (BordaCount,
  CopelandMethod, MEDRank 0.5/0.7, Pick-a-Perm, RepeatChoice, KwikSort) —
  run back-to-back on one fresh dataset.  The seed cell replays the
  pre-plan pipeline exactly: fresh ``PairwiseWeights`` per call, reference
  kernels, tensor-path scoring.  The plan cell builds the plan once
  (inside the timed region — the batch is cold) and aggregates through it.
* **ExactSubsetDP** at n = 12/14: the pure-Python ``n·2^n`` rowsum loops
  and per-subset popcount walks of the seed kernel against the NumPy
  bitmask subset-sum DP.

Outputs of both paths are asserted identical in the same run.  At
``--scale default`` (and above) the acceptance floors of the PR are
enforced: the cold batch must be ≥ 5× faster at the figure-2 grid cells
(n = 400, 500) and ExactSubsetDP ≥ 2× at n = 12; the run fails if they
regress.  The ``smoke`` grid keeps CI runs in seconds and asserts output
equality only (shared CI runners make absolute timings unreliable).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_prepared_reuse.py \
        --benchmark-only -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_prepared_reuse.py --scale smoke
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.algorithms.exact_dp import ExactSubsetDP
from repro.algorithms.registry import make_algorithm
from repro.core.kemeny import generalized_kemeny_score
from repro.core.pairwise import PairwiseWeights
from repro.core.prepared import plan_build_count, prepare_rankings
from repro.experiments.report import format_table
from repro.generators.uniform import uniform_dataset

_DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_prepare.json"

# The algorithms whose hot paths consume the shared plan (dense positional
# kernels, vectorised pivot placement, batched candidate scoring).  MC4 and
# FaginDyn run through the plan too but are dominated by their own
# iteration/DP cost, so they are not part of the asserted batch.
PREPARED_SUITE: tuple[str, ...] = (
    "BordaCount",
    "CopelandMethod",
    "MEDRank(0.5)",
    "MEDRank(0.7)",
    "Pick-a-Perm",
    "RepeatChoice",
    "KwikSort",
)

# (n, m) batch cells per scale; m = 7 as in the paper's figure 2, n on the
# paper grid (which tops out at n = 400; 500 matches the "rankings of up to
# 500 elements" the paper's dataset description quotes).
_BATCH_GRID = {
    "smoke": [(60, 7), (100, 7)],
    "default": [(200, 7), (400, 7), (500, 7)],
    "paper": [(100, 7), (200, 7), (300, 7), (400, 7), (500, 7)],
}
_DP_GRID = {
    "smoke": [9],
    "default": [12, 14],
    "paper": [12, 14],
}
# Speedup floors asserted at scale "default" and above.
_BATCH_FLOORS = {400: 5.0, 500: 5.0}
_DP_FLOORS = {12: 2.0}

_BENCH_SEED_OFFSET = 77


def _median_seconds(function, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _seed_batch(rankings, algorithm_seed: int) -> int:
    """The pre-plan pipeline: per-call weights build, reference kernels,
    tensor-path scoring — exactly what ``aggregate()`` did at the seed."""
    total = 0
    for name in PREPARED_SUITE:
        algorithm = make_algorithm(name, seed=algorithm_seed)
        if hasattr(algorithm, "_kernel"):
            algorithm._kernel = "reference"
        weights = PairwiseWeights(rankings)
        consensus = algorithm._aggregate(rankings, weights)
        total += generalized_kemeny_score(consensus, rankings)
    return total


def _plan_batch(rankings, algorithm_seed: int) -> int:
    """The shared-plan pipeline, cold: one plan build, then the whole suite."""
    total = 0
    plan = prepare_rankings(rankings)
    for name in PREPARED_SUITE:
        result = make_algorithm(name, seed=algorithm_seed).aggregate(
            rankings, prepared=plan
        )
        total += result.score
    return total


def _bench_batches(grid, bench_seed: int):
    cells = []
    for n, m in grid:
        dataset = uniform_dataset(m, n, rng=bench_seed, name=f"prep_batch_n{n}_m{m}")
        rankings = list(dataset.rankings)
        algorithm_seed = bench_seed + _BENCH_SEED_OFFSET
        builds_before = plan_build_count()
        total_plan = _plan_batch(rankings, algorithm_seed)
        builds = plan_build_count() - builds_before
        total_seed = _seed_batch(rankings, algorithm_seed)
        assert total_plan == total_seed, (
            f"plan batch diverged from the seed pipeline at (n={n}, m={m}): "
            f"{total_plan} != {total_seed}"
        )
        repeats = 5
        seconds_seed = _median_seconds(
            lambda: _seed_batch(rankings, algorithm_seed), repeats
        )
        seconds_plan = _median_seconds(
            lambda: _plan_batch(rankings, algorithm_seed), repeats
        )
        cells.append(
            {
                "kernel": "prepared_batch",
                "n": n,
                "m": m,
                "algorithms": list(PREPARED_SUITE),
                "plan_builds_per_batch": builds,
                "seconds_seed_median": seconds_seed,
                "seconds_prepared_median": seconds_plan,
                "speedup": seconds_seed / seconds_plan,
                "identical_output": True,
                "repeats": repeats,
            }
        )
    return cells


def _bench_exact_dp(sizes, bench_seed: int):
    cells = []
    for n in sizes:
        dataset = uniform_dataset(7, n, rng=bench_seed + 1, name=f"prep_dp_n{n}")
        rankings = list(dataset.rankings)
        bitmask = ExactSubsetDP()
        reference = ExactSubsetDP(kernel="reference")
        result_bitmask = bitmask.aggregate(rankings)   # warm-up + output check
        result_reference = reference.aggregate(rankings)
        assert result_bitmask.consensus.buckets == result_reference.consensus.buckets
        assert result_bitmask.score == result_reference.score
        repeats = 1 if n >= 12 else 3
        seconds_bitmask = _median_seconds(lambda: bitmask.aggregate(rankings), repeats)
        seconds_reference = _median_seconds(
            lambda: reference.aggregate(rankings), repeats
        )
        cells.append(
            {
                "kernel": "exact_subset_dp",
                "n": n,
                "m": 7,
                "seconds_seed_median": seconds_reference,
                "seconds_prepared_median": seconds_bitmask,
                "speedup": seconds_reference / seconds_bitmask,
                "identical_output": True,
                "repeats": repeats,
            }
        )
    return cells


def run_prepared_benchmark(scale_name: str, bench_seed: int = 2015) -> dict:
    """Run the full grid for ``scale_name`` and return the JSON payload."""
    batch_grid = _BATCH_GRID.get(scale_name, _BATCH_GRID["smoke"])
    dp_grid = _DP_GRID.get(scale_name, _DP_GRID["smoke"])
    cells = _bench_batches(batch_grid, bench_seed) + _bench_exact_dp(
        dp_grid, bench_seed
    )
    payload = {
        "schema": "repro-bench-prepare/1",
        "scale": scale_name,
        "seed": bench_seed,
        "batch_suite": list(PREPARED_SUITE),
        "floors": {
            "prepared_batch": {str(n): floor for n, floor in _BATCH_FLOORS.items()},
            "exact_subset_dp": {str(n): floor for n, floor in _DP_FLOORS.items()},
        },
        "cells": cells,
    }
    if scale_name != "smoke":
        for cell in cells:
            floors = _BATCH_FLOORS if cell["kernel"] == "prepared_batch" else _DP_FLOORS
            floor = floors.get(cell["n"])
            if floor is not None:
                assert cell["speedup"] >= floor, (
                    f"{cell['kernel']} at (n={cell['n']}, m={cell['m']}) regressed: "
                    f"{cell['speedup']:.1f}x < required {floor:.0f}x"
                )
        for cell in cells:
            if cell["kernel"] == "prepared_batch":
                assert cell["plan_builds_per_batch"] == 1, (
                    f"cold batch at (n={cell['n']}, m={cell['m']}) built "
                    f"{cell['plan_builds_per_batch']} plans; expected exactly 1"
                )
    return payload


def write_payload(payload: dict, output: Path | None = None) -> Path:
    # An explicit output path (e.g. --output) beats the ambient env var.
    if output is not None:
        path = Path(output)
    else:
        path = Path(os.environ.get("REPRO_BENCH_PREPARE_JSON", _DEFAULT_OUTPUT))
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _print_payload(payload: dict) -> None:
    rows = [
        {
            "kernel": cell["kernel"],
            "n": cell["n"],
            "m": cell["m"],
            "seed": f"{cell['seconds_seed_median']:.4f}s",
            "prepared": f"{cell['seconds_prepared_median']:.4f}s",
            "speedup": f"{cell['speedup']:.1f}x",
        }
        for cell in payload["cells"]
    ]
    print()
    print(
        format_table(
            rows,
            [
                ("kernel", "Kernel"),
                ("n", "n"),
                ("m", "m"),
                ("seed", "Seed (median)"),
                ("prepared", "Prepared (median)"),
                ("speedup", "Speedup"),
            ],
            title="Prepared plans — per-run rebuilds vs shared PreparedDataset",
        )
    )


def bench_prepared_reuse(benchmark, bench_scale, bench_seed):
    """pytest-benchmark entry point: one timed pass over the whole grid."""
    payload = benchmark.pedantic(
        lambda: run_prepared_benchmark(bench_scale.name, bench_seed),
        rounds=1,
        iterations=1,
    )
    path = write_payload(payload)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args()
    payload = run_prepared_benchmark(arguments.scale, arguments.seed)
    path = write_payload(payload, arguments.output)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


if __name__ == "__main__":
    main()
