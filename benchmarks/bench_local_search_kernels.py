"""K-KERN — seed reference kernels vs. the dense array kernels.

Times the hot paths this repository moved onto :mod:`repro.core.arrays`:

* **BioConsert** end-to-end aggregation, ``kernel="reference"`` (the seed
  list-of-buckets sweep) against ``kernel="arrays"`` (bucket-id vector +
  segment sums);
* **Chanas** end-to-end aggregation, reference vs. array sort passes;
* **pairwise_distance_matrix**, the retained per-pair loop against the
  batched all-pairs tensor kernel.

Every (kernel, n, m) cell is timed over a few repeats and the **median**
timings are written to a machine-readable ``BENCH_kernels.json`` (path
overridable through ``REPRO_BENCH_KERNELS_JSON``) so future PRs can track
the performance trajectory.  Outputs of both paths are asserted identical
in the same run — the speedups are never bought with a different result.

At ``REPRO_BENCH_SCALE=default`` (and above) the grid includes the
acceptance cells of the PR that introduced the array layer — BioConsert at
(n=200, m=20) must be ≥ 5× faster than the seed kernel and
``pairwise_distance_matrix`` over 50 rankings of n=200 must be ≥ 10×
faster — and the run fails if those floors regress.  The ``smoke`` grid
keeps CI runs in seconds and does not assert speedup floors (shared CI
runners make absolute timings unreliable), only output equality.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_local_search_kernels.py \
        --benchmark-only -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_local_search_kernels.py --scale smoke
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.algorithms import BioConsert, Chanas
from repro.core import pairwise_distance_matrix, pairwise_distance_matrix_reference
from repro.experiments.report import format_table
from repro.generators.uniform import uniform_dataset

_DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_kernels.json"

# (n, m) grids per scale.  The default/paper grids contain the acceptance
# cells: BioConsert (200, 20) and the 50×n=200 distance matrix.
_LOCAL_SEARCH_GRID = {
    "smoke": [(40, 8), (60, 10)],
    "default": [(60, 10), (120, 15), (200, 20)],
    "paper": [(60, 10), (120, 15), (200, 20), (300, 20)],
}
_DISTANCE_GRID = {
    "smoke": [(100, 20)],
    "default": [(100, 20), (200, 50)],
    "paper": [(100, 20), (200, 50), (400, 100)],
}
# Speedup floors (vs. the seed implementation) asserted per acceptance cell
# at scale "default" and above.
_SPEEDUP_FLOORS = {
    ("bioconsert", 200, 20): 5.0,
    ("pairwise_distance_matrix", 200, 50): 10.0,
}


def _seed_distance_matrix(rankings) -> np.ndarray:
    """The seed ``pairwise_distance_matrix``: one call per pair, each call
    re-encoding both rankings over ``list(domain)`` and materialising
    ``np.triu_indices`` — the baseline the acceptance floors refer to.

    (The retained :func:`pairwise_distance_matrix_reference` per-pair loop
    is itself faster than this seed path: it benefits from the cached dense
    encodings and the triu-free counting kernel, and is timed separately.)
    """
    m = len(rankings)
    matrix = np.zeros((m, m), dtype=np.int64)
    for i in range(m):
        for j in range(i + 1, m):
            r, s = rankings[i], rankings[j]
            elements = list(r.domain)
            pos_r = np.fromiter((r.position_of(e) for e in elements), dtype=np.int64)
            pos_s = np.fromiter((s.position_of(e) for e in elements), dtype=np.int64)
            n = pos_r.shape[0]
            if n < 2:
                continue
            diff_r = np.sign(pos_r[:, None] - pos_r[None, :])
            diff_s = np.sign(pos_s[:, None] - pos_s[None, :])
            upper = np.triu_indices(n, k=1)
            dr = diff_r[upper]
            ds = diff_s[upper]
            distance = int(
                np.count_nonzero(dr * ds < 0) + np.count_nonzero((dr == 0) ^ (ds == 0))
            )
            matrix[i, j] = matrix[j, i] = distance
    return matrix


def _median_seconds(function, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _repeats_for(n: int, m: int) -> int:
    # Keep big reference cells affordable: one timing is enough when the
    # expected speedup dwarfs run-to-run noise.
    return 1 if n * m >= 2400 else 3


def _bench_local_search(factory, kernel_name: str, grid, bench_seed: int):
    cells = []
    for n, m in grid:
        dataset = uniform_dataset(m, n, rng=bench_seed, name=f"kern_{kernel_name}_n{n}_m{m}")
        arrays = factory(kernel="arrays")
        reference = factory(kernel="reference")
        result_arrays = arrays.aggregate(dataset)      # warm-up + output check
        result_reference = reference.aggregate(dataset)
        assert result_arrays.consensus == result_reference.consensus
        assert result_arrays.score == result_reference.score
        repeats = _repeats_for(n, m)
        seconds_arrays = _median_seconds(lambda: arrays.aggregate(dataset), repeats)
        seconds_reference = _median_seconds(lambda: reference.aggregate(dataset), repeats)
        cells.append(
            {
                "kernel": kernel_name,
                "n": n,
                "m": m,
                "seconds_reference_median": seconds_reference,
                "seconds_arrays_median": seconds_arrays,
                "speedup": seconds_reference / seconds_arrays,
                "identical_output": True,
                "repeats": repeats,
            }
        )
    return cells


def _bench_distance_matrix(grid, bench_seed: int):
    cells = []
    for n, m in grid:
        dataset = uniform_dataset(m, n, rng=bench_seed + 1, name=f"kern_dist_n{n}_m{m}")
        rankings = list(dataset.rankings)
        batched = pairwise_distance_matrix(rankings)
        assert (batched == pairwise_distance_matrix_reference(rankings)).all()
        assert (batched == _seed_distance_matrix(rankings)).all()
        repeats = 3
        seconds_arrays = _median_seconds(lambda: pairwise_distance_matrix(rankings), repeats)
        seconds_reference = _median_seconds(
            lambda: pairwise_distance_matrix_reference(rankings), repeats
        )
        seconds_seed = _median_seconds(lambda: _seed_distance_matrix(rankings), repeats)
        cells.append(
            {
                "kernel": "pairwise_distance_matrix",
                "n": n,
                "m": m,
                "seconds_seed_median": seconds_seed,
                "seconds_reference_median": seconds_reference,
                "seconds_arrays_median": seconds_arrays,
                "speedup": seconds_seed / seconds_arrays,
                "speedup_vs_reference": seconds_reference / seconds_arrays,
                "identical_output": True,
                "repeats": repeats,
            }
        )
    return cells


def run_kernel_benchmark(scale_name: str, bench_seed: int = 2015) -> dict:
    """Run the full grid for ``scale_name`` and return the JSON payload."""
    local_grid = _LOCAL_SEARCH_GRID.get(scale_name, _LOCAL_SEARCH_GRID["smoke"])
    distance_grid = _DISTANCE_GRID.get(scale_name, _DISTANCE_GRID["smoke"])
    cells = []
    cells += _bench_local_search(
        lambda **kw: BioConsert(**kw), "bioconsert", local_grid, bench_seed
    )
    cells += _bench_local_search(
        lambda **kw: Chanas(**kw), "chanas", local_grid, bench_seed
    )
    cells += _bench_distance_matrix(distance_grid, bench_seed)
    payload = {
        "schema": "repro-bench-kernels/1",
        "scale": scale_name,
        "seed": bench_seed,
        "cells": cells,
    }
    if scale_name != "smoke":
        for cell in cells:
            floor = _SPEEDUP_FLOORS.get((cell["kernel"], cell["n"], cell["m"]))
            if floor is not None:
                assert cell["speedup"] >= floor, (
                    f"{cell['kernel']} at (n={cell['n']}, m={cell['m']}) regressed: "
                    f"{cell['speedup']:.1f}x < required {floor:.0f}x"
                )
    return payload


def write_payload(payload: dict, output: Path | None = None) -> Path:
    # An explicit output path (e.g. --output) beats the ambient env var.
    if output is not None:
        path = Path(output)
    else:
        path = Path(os.environ.get("REPRO_BENCH_KERNELS_JSON", _DEFAULT_OUTPUT))
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _print_payload(payload: dict) -> None:
    rows = [
        {
            "kernel": cell["kernel"],
            "n": cell["n"],
            "m": cell["m"],
            "seed": (
                f"{cell['seconds_seed_median']:.4f}s"
                if "seconds_seed_median" in cell
                else f"{cell['seconds_reference_median']:.4f}s"
            ),
            "arrays": f"{cell['seconds_arrays_median']:.4f}s",
            "speedup": f"{cell['speedup']:.1f}x",
        }
        for cell in payload["cells"]
    ]
    print()
    print(
        format_table(
            rows,
            [
                ("kernel", "Kernel"),
                ("n", "n"),
                ("m", "m"),
                ("seed", "Seed (median)"),
                ("arrays", "Arrays (median)"),
                ("speedup", "Speedup"),
            ],
            title="Kernels — seed implementations vs dense array kernels",
        )
    )


def bench_local_search_kernels(benchmark, bench_scale, bench_seed):
    """pytest-benchmark entry point: one timed pass over the whole grid."""
    payload = benchmark.pedantic(
        lambda: run_kernel_benchmark(bench_scale.name, bench_seed),
        rounds=1,
        iterations=1,
    )
    path = write_payload(payload)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args()
    payload = run_kernel_benchmark(arguments.scale, arguments.seed)
    path = write_payload(payload, arguments.output)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


if __name__ == "__main__":
    main()
