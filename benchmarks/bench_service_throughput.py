"""SERVICE — request throughput and cold/warm latency of the serving layer.

Replays a Zipf-skewed request stream (see
:mod:`repro.workloads.service_load`) through the
:class:`~repro.service.ServiceFrontend` three times over the same cache
directory:

* **cold**  — empty cache: every distinct dataset is computed (portfolio
  race under the per-request budget), repeats are coalesced or served by
  the freshly warmed tiers;
* **disk-warm** — a new frontend process over the same directory: nothing
  is computed, first touches hit the disk tier and are promoted;
* **memory-warm** — the same frontend again: pure in-memory LRU hits.

The medians per phase are written to a machine-readable
``BENCH_service.json`` (path overridable through
``REPRO_BENCH_SERVICE_JSON``).  The run asserts the serving contract: warm
phases compute nothing, every phase answers every request, and the warm
per-request latency is at least 10× below the cold one (the acceptance
floor of the PR that introduced the service layer; asserted at every
scale — the cold phase runs full aggregations, so the gap is orders of
magnitude in practice).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py \
        --benchmark-only -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --scale smoke
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from repro.experiments.report import format_table
from repro.service import ServiceFrontend
from repro.workloads import ServiceLoadProfile, build_service_requests

_DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_service.json"

# Warm requests must be at least this much faster than cold ones.
_WARM_SPEEDUP_FLOOR = 10.0

_PROFILES = {
    "smoke": ServiceLoadProfile(
        scenarios=("mallows-ties-diffuse", "markov-similarity"),
        scale="smoke",
        num_requests=40,
        budget_seconds=0.25,
        batch_size=8,
        seed=2015,
    ),
    "default": ServiceLoadProfile(
        scenarios=("mallows-ties-diffuse", "markov-similarity", "uniform-ties"),
        scale="default",
        num_requests=200,
        budget_seconds=0.5,
        batch_size=16,
        seed=2015,
    ),
    "paper": ServiceLoadProfile(
        scenarios=(
            "mallows-ties-diffuse",
            "markov-similarity",
            "uniform-ties",
            "biomedical-like",
        ),
        scale="default",
        num_requests=1000,
        budget_seconds=0.5,
        batch_size=32,
        seed=2015,
    ),
}


def _replay(frontend: ServiceFrontend, requests, batch_size: int) -> dict:
    """Replay the stream and return per-phase latency/source statistics."""
    latencies: list[float] = []
    sources: dict[str, int] = {}
    start = time.perf_counter()
    for begin in range(0, len(requests), batch_size):
        batch = requests[begin : begin + batch_size]
        for response in frontend.submit_batch(batch):
            latencies.append(response.latency_seconds)
            sources[response.source] = sources.get(response.source, 0) + 1
    wall = time.perf_counter() - start
    return {
        "requests": len(latencies),
        "wall_seconds": wall,
        "throughput_rps": len(latencies) / wall if wall > 0 else float("inf"),
        "latency_median_seconds": statistics.median(latencies),
        "latency_mean_seconds": statistics.fmean(latencies),
        "latency_max_seconds": max(latencies),
        "by_source": dict(sorted(sources.items())),
    }


def run_service_benchmark(scale_name: str, seed: int = 2015) -> dict:
    """Run the cold / disk-warm / memory-warm phases and assemble the payload."""
    try:
        profile = _PROFILES[scale_name]
    except KeyError:
        raise SystemExit(
            f"unknown scale {scale_name!r}; expected one of {sorted(_PROFILES)}"
        ) from None
    if seed != profile.seed:
        profile = ServiceLoadProfile(**{**profile.describe(), "seed": seed,
                                        "scenarios": profile.scenarios})
    requests = build_service_requests(profile)

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-service-"))
    try:
        cold_frontend = ServiceFrontend(
            cache_dir, default_budget_seconds=profile.budget_seconds, seed=seed
        )
        cold = _replay(cold_frontend, requests, profile.batch_size)

        # New frontend over the same directory: empty memory tier, warm disk.
        disk_frontend = ServiceFrontend(
            cache_dir, default_budget_seconds=profile.budget_seconds, seed=seed
        )
        disk_warm = _replay(disk_frontend, requests, profile.batch_size)

        # Same frontend again: every key now sits in the memory LRU.
        memory_warm = _replay(disk_frontend, requests, profile.batch_size)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Serving contract: warm phases execute nothing.
    assert disk_warm["by_source"].get("computed", 0) == 0, disk_warm
    assert memory_warm["by_source"].get("computed", 0) == 0, memory_warm
    assert cold["requests"] == disk_warm["requests"] == memory_warm["requests"]

    # Cold latency is dominated by the computed requests; compare medians of
    # the whole stream only when they are non-degenerate, otherwise compare
    # means (a heavily skewed stream can have a cache-hit median even cold).
    cold_latency = max(cold["latency_median_seconds"], cold["latency_mean_seconds"])
    warm_latency = max(
        min(disk_warm["latency_median_seconds"], memory_warm["latency_median_seconds"]),
        1e-9,
    )
    speedup = cold_latency / warm_latency
    assert speedup >= _WARM_SPEEDUP_FLOOR, (
        f"warm-cache latency floor regressed: cold {cold_latency:.6f}s vs "
        f"warm {warm_latency:.6f}s = {speedup:.1f}× (< {_WARM_SPEEDUP_FLOOR}×)"
    )

    return {
        "benchmark": "service-throughput",
        "scale": scale_name,
        "profile": profile.describe(),
        "warm_speedup": speedup,
        "warm_speedup_floor": _WARM_SPEEDUP_FLOOR,
        "phases": {
            "cold": cold,
            "disk_warm": disk_warm,
            "memory_warm": memory_warm,
        },
    }


def write_payload(payload: dict, output: Path | None = None) -> Path:
    """Write the machine-readable timings; returns the path written."""
    if output is None:
        override = os.environ.get("REPRO_BENCH_SERVICE_JSON")
        output = Path(override) if override else _DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def _print_payload(payload: dict) -> None:
    rows = []
    for phase, stats in payload["phases"].items():
        rows.append(
            {
                "phase": phase,
                "requests": stats["requests"],
                "throughput": f"{stats['throughput_rps']:.0f} req/s",
                "median": f"{1000.0 * stats['latency_median_seconds']:.3f} ms",
                "mean": f"{1000.0 * stats['latency_mean_seconds']:.3f} ms",
                "sources": ", ".join(
                    f"{name}={count}" for name, count in stats["by_source"].items()
                ),
            }
        )
    print(
        format_table(
            rows,
            [
                ("phase", "Phase"),
                ("requests", "Requests"),
                ("throughput", "Throughput"),
                ("median", "Median"),
                ("mean", "Mean"),
                ("sources", "By source"),
            ],
            title=(
                f"Service throughput — scale={payload['scale']}, "
                f"warm speedup {payload['warm_speedup']:.0f}× "
                f"(floor {payload['warm_speedup_floor']:.0f}×)"
            ),
        )
    )


def bench_service_throughput(benchmark, bench_seed):
    """pytest-benchmark entry point: one timed pass over the three phases."""
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    payload = benchmark.pedantic(
        lambda: run_service_benchmark(scale_name, bench_seed),
        rounds=1,
        iterations=1,
    )
    path = write_payload(payload)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args()
    payload = run_service_benchmark(arguments.scale, arguments.seed)
    path = write_payload(payload, arguments.output)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


if __name__ == "__main__":
    main()
