"""E-F6 — Figure 6: time / quality trade-off on uniform datasets.

Workload: uniformly generated datasets of m rankings over the scale's
``medium_n`` elements (m = 7, n = 35 in the paper).  Every evaluated
algorithm (plus the exact solver when feasible) is placed by its average
gap and its average aggregation time.

Expected shape (paper, Figure 6 and Section 7.4):

* BioConsert sits near the zero-gap axis at a moderate time cost — the
  recommended default;
* the positional algorithms are the fastest but with noticeably larger gaps;
* the exact solver (and Ailon 3/2) pay orders of magnitude more time than
  BioConsert for the last fraction of a percent of quality.
"""

from __future__ import annotations

from repro.experiments import format_figure6, run_figure6


def bench_figure6_tradeoff(benchmark, bench_scale, bench_seed):
    rows, report = benchmark.pedantic(
        run_figure6, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    print()
    print(format_figure6(rows))

    gaps = {row["algorithm"]: row["average_gap"] for row in rows}
    times = {row["algorithm"]: row["average_seconds"] for row in rows}

    # BioConsert: near-optimal quality.
    assert gaps["BioConsert"] <= 0.02

    # Positional algorithms are the fastest family but lose on quality.
    assert times["BordaCount"] < times["BioConsert"]
    assert gaps["BordaCount"] >= gaps["BioConsert"]
    assert times["MEDRank(0.5)"] < times["BioConsert"]

    # The exact solver (when it ran) pays much more time than BioConsert.
    if "ExactAlgorithm" in times:
        assert times["ExactAlgorithm"] > times["BioConsert"]
        assert gaps["ExactAlgorithm"] <= 1e-9
