"""E-T1 — Table 1: the algorithm catalogue.

Regenerates the rows of Table 1 (reference, algorithm family, approximation
guarantee, tie capabilities) directly from the algorithm implementations and
benchmarks the registry instantiation path (a sanity check that building the
whole suite stays negligible compared to any aggregation run).
"""

from __future__ import annotations

from repro.algorithms import make_evaluated_suite, table1_catalogue
from repro.experiments import format_table

_COLUMNS = [
    ("reference", "Ref"),
    ("name", "Name"),
    ("approximation", "Approx."),
    ("family", "Family"),
    ("produces_ties", "Can produce ties"),
    ("accounts_for_tie_cost", "Untying cost"),
]


def bench_table1_catalogue(benchmark):
    """Build the Table 1 rows from the registry."""
    rows = benchmark(table1_catalogue)
    print()
    print(format_table(rows, _COLUMNS, title="Table 1 — algorithms and their categories"))
    assert len(rows) >= 15


def bench_table1_suite_instantiation(benchmark):
    """Instantiate the full evaluated suite (the paper's bold rows)."""
    suite = benchmark(make_evaluated_suite, seed=0)
    assert len(suite) == 13
