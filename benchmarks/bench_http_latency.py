"""HTTP — socket-path latency overhead and shard-scaling throughput.

Two questions about the serving stack's network face
(:mod:`repro.service.http`), answered against a real socket:

* **How much latency does the socket path add?**  A warm, Zipf-skewed
  schedule is driven twice through a 2-shard server (second pass fully
  warm), and the same schedule is replayed against an in-process
  :class:`~repro.service.ServiceFrontend` that *also parses every dataset
  from its wire text* — so both sides do identical work and the ratio
  isolates pure HTTP/asyncio/dispatch overhead.  The acceptance floor
  (asserted at every scale): warm socket p99 ≤ 10× warm in-process p99.
* **Does throughput scale with shard workers?**  A schedule of distinct
  (uncacheable, uncoalesceable) budget-bound requests is driven through a
  1-shard and a 4-shard *process-mode* topology.  The acceptance floor —
  ≥2× throughput from 1→4 shards — needs real CPU parallelism, so it is
  asserted only when ≥4 usable cores exist; on smaller machines the
  measured ratio is still recorded, with ``floor_asserted: false`` and
  the reason, in the payload.

Every scale also asserts the smoke contract: zero failed requests and a
non-empty (positive) p99.  Results go to ``BENCH_http.json`` (path
overridable through ``REPRO_BENCH_HTTP_JSON``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_http_latency.py \
        --benchmark-only -s
    # or, standalone:
    PYTHONPATH=src python benchmarks/bench_http_latency.py --scale smoke
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.report import format_table
from repro.generators import uniform_dataset
from repro.service import ServiceFrontend
from repro.service.http import HttpAggregationServer, encode_aggregate_request
from repro.service.http.protocol import decode_aggregate_request
from repro.workloads import (
    HttpLoadProfile,
    HttpSchedule,
    ScheduledRequest,
    build_http_schedule,
    drive_http_load,
)

_DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_http.json"

# Warm socket p99 must stay within this factor of the warm in-process p99.
_SOCKET_OVERHEAD_FLOOR = 10.0
# Going 1 → 4 shard workers must at least double throughput — asserted
# only when the machine has enough cores for 4 workers to actually run.
_SCALING_FLOOR = 2.0
_SCALING_SHARDS = (1, 4)
_MIN_CORES_FOR_SCALING = 4

_PROFILES = {
    "smoke": {
        "latency": HttpLoadProfile(
            scenarios=("mallows-ties-diffuse",),
            scale="smoke",
            num_requests=30,
            budget_seconds=0.1,
            concurrency=1,
            seed=2015,
        ),
        "scaling_requests": 8,
        "scaling_budget": 0.02,
        "scaling_shape": (12, 10),  # rankings × elements per dataset
    },
    "default": {
        "latency": HttpLoadProfile(
            scenarios=("mallows-ties-diffuse", "markov-similarity"),
            scale="smoke",
            num_requests=100,
            budget_seconds=0.1,
            concurrency=1,
            seed=2015,
        ),
        "scaling_requests": 16,
        "scaling_budget": 0.05,
        "scaling_shape": (16, 12),
    },
    "paper": {
        "latency": HttpLoadProfile(
            scenarios=("mallows-ties-diffuse", "markov-similarity", "uniform-ties"),
            scale="default",
            num_requests=300,
            budget_seconds=0.25,
            concurrency=1,
            seed=2015,
        ),
        "scaling_requests": 32,
        "scaling_budget": 0.1,
        "scaling_shape": (20, 15),
    },
}


def _usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _scaling_schedule(
    count: int, budget: float, shape: tuple[int, int], seed: int
) -> HttpSchedule:
    """``count`` *distinct* budget-bound requests: no cache, no coalescing.

    Every dataset is unique, so each request costs one budgeted compute on
    its shard — the workload where adding shard workers must pay off.
    """
    profile = HttpLoadProfile(
        num_requests=count,
        budget_seconds=budget,
        concurrency=8,
        seed=seed,
    )
    rankings, elements = shape
    slots = []
    for position in range(count):
        dataset = uniform_dataset(
            rankings, elements, seed + position, name=f"scaling-{position}"
        )
        slots.append(
            ScheduledRequest(
                position=position,
                offset_seconds=0.0,
                dataset_index=position,
                wire=encode_aggregate_request(
                    dataset,
                    budget_seconds=budget,
                    request_id=f"scale-{position:04d}",
                ),
            )
        )
    return HttpSchedule(profile=profile, requests=tuple(slots), num_datasets=count)


async def _drive_topology(
    schedule: HttpSchedule,
    *,
    shards: int,
    mode: str,
    cache_dir: str | None,
    seed: int,
    budget: float,
    passes: int = 1,
) -> list[dict]:
    """Start a server, drive the schedule ``passes`` times, drain; reports."""
    server = HttpAggregationServer(
        cache_dir,
        shards=shards,
        mode=mode,
        seed=seed,
        default_budget_seconds=budget,
        max_pending=max(64, len(schedule.requests)),
    )
    await server.start()
    try:
        reports = []
        for _ in range(passes):
            reports.append(
                await drive_http_load(
                    schedule, host=server.host, port=server.port
                )
            )
        return reports
    finally:
        await server.drain()


def _inprocess_warm_p99(
    schedule: HttpSchedule, *, seed: int, budget: float
) -> float:
    """Warm p99 of the same schedule served without any socket.

    Apples-to-apples with the socket path: every request is decoded from
    its wire payload (dataset text parse included) before submission, so
    the only work the socket run does *in addition* is HTTP itself.
    """
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-http-base-"))
    try:
        frontend = ServiceFrontend(
            cache_dir, default_budget_seconds=budget, seed=seed
        )
        for slot in schedule.requests:  # warm pass
            frontend.submit(decode_aggregate_request(slot.wire))
        latencies = []
        for slot in schedule.requests:  # measured pass, fully warm
            start = time.perf_counter()
            frontend.submit(decode_aggregate_request(slot.wire))
            latencies.append(time.perf_counter() - start)
        return float(np.percentile(np.array(latencies), 99))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_http_benchmark(scale_name: str, seed: int = 2015) -> dict:
    """Run the latency and scaling phases and assemble the payload."""
    try:
        config = _PROFILES[scale_name]
    except KeyError:
        raise SystemExit(
            f"unknown scale {scale_name!r}; expected one of {sorted(_PROFILES)}"
        ) from None
    profile: HttpLoadProfile = config["latency"]
    if seed != profile.seed:
        profile = HttpLoadProfile(
            **{**profile.describe(), "seed": seed,
               "scenarios": profile.scenarios}
        )

    # --- Phase 1: warm socket latency vs warm in-process latency -------- #
    schedule = build_http_schedule(profile)
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-http-"))
    try:
        warmup, warm = asyncio.run(
            _drive_topology(
                schedule,
                shards=2,
                mode="thread",
                cache_dir=str(cache_dir),
                seed=seed,
                budget=profile.budget_seconds,
                passes=2,
            )
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    inprocess_p99 = _inprocess_warm_p99(
        schedule, seed=seed, budget=profile.budget_seconds
    )
    socket_p99 = warm["latency_seconds"]["p99"]
    overhead_ratio = socket_p99 / max(inprocess_p99, 1e-9)

    for phase_name, report in (("warmup", warmup), ("warm", warm)):
        assert report["failed"] == 0, (
            f"{phase_name} pass had failed requests: {report['by_status']}"
        )
        assert report["completed"] == len(schedule.requests), report
    assert socket_p99 > 0.0, "warm socket p99 must be non-empty/positive"
    assert overhead_ratio <= _SOCKET_OVERHEAD_FLOOR, (
        f"socket-path overhead floor regressed: warm socket p99 "
        f"{socket_p99 * 1e3:.3f}ms vs in-process {inprocess_p99 * 1e3:.3f}ms "
        f"= {overhead_ratio:.1f}× (> {_SOCKET_OVERHEAD_FLOOR}×)"
    )

    # --- Phase 2: shard-scaling throughput ------------------------------ #
    scaling_schedule = _scaling_schedule(
        config["scaling_requests"],
        config["scaling_budget"],
        config["scaling_shape"],
        seed,
    )
    by_shards: dict[int, dict] = {}
    for shard_count in _SCALING_SHARDS:
        scaling_cache = Path(tempfile.mkdtemp(prefix="repro-bench-http-scale-"))
        try:
            (report,) = asyncio.run(
                _drive_topology(
                    scaling_schedule,
                    shards=shard_count,
                    mode="process",
                    cache_dir=str(scaling_cache),
                    seed=seed,
                    budget=config["scaling_budget"],
                )
            )
        finally:
            shutil.rmtree(scaling_cache, ignore_errors=True)
        assert report["failed"] == 0, report["by_status"]
        # Fresh cache + distinct datasets: everything must be computed.
        assert report["by_source"].get("computed", 0) == report["completed"], (
            report["by_source"]
        )
        by_shards[shard_count] = report

    low, high = _SCALING_SHARDS
    scaling_ratio = (
        by_shards[high]["throughput_rps"]
        / max(by_shards[low]["throughput_rps"], 1e-9)
    )
    cores = _usable_cores()
    floor_asserted = cores >= _MIN_CORES_FOR_SCALING
    if floor_asserted:
        assert scaling_ratio >= _SCALING_FLOOR, (
            f"shard-scaling floor regressed: {low}→{high} shards gave "
            f"{scaling_ratio:.2f}× throughput (< {_SCALING_FLOOR}×) "
            f"on {cores} cores"
        )

    return {
        "benchmark": "http-latency",
        "scale": scale_name,
        "profile": profile.describe(),
        "latency": {
            "socket_warm_p99_seconds": socket_p99,
            "socket_warm_p50_seconds": warm["latency_seconds"]["p50"],
            "socket_warm_p999_seconds": warm["latency_seconds"]["p999"],
            "inprocess_warm_p99_seconds": inprocess_p99,
            "overhead_ratio": overhead_ratio,
            "overhead_floor": _SOCKET_OVERHEAD_FLOOR,
            "warmup": {
                "by_source": warmup["by_source"],
                "throughput_rps": warmup["throughput_rps"],
            },
            "warm": {
                "by_source": warm["by_source"],
                "throughput_rps": warm["throughput_rps"],
            },
        },
        "scaling": {
            "shards": list(_SCALING_SHARDS),
            "mode": "process",
            "requests": len(scaling_schedule.requests),
            "budget_seconds": config["scaling_budget"],
            "throughput_rps": {
                str(count): by_shards[count]["throughput_rps"]
                for count in _SCALING_SHARDS
            },
            "ratio": scaling_ratio,
            "floor": _SCALING_FLOOR,
            "floor_asserted": floor_asserted,
            "usable_cores": cores,
            "note": (
                None
                if floor_asserted
                else (
                    f"only {cores} usable core(s): 4 process workers cannot "
                    f"run in parallel, so the {_SCALING_FLOOR}× floor is "
                    "recorded but not asserted on this machine"
                )
            ),
        },
    }


def write_payload(payload: dict, output: Path | None = None) -> Path:
    """Write the machine-readable timings; returns the path written."""
    if output is None:
        override = os.environ.get("REPRO_BENCH_HTTP_JSON")
        output = Path(override) if override else _DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def _print_payload(payload: dict) -> None:
    latency = payload["latency"]
    scaling = payload["scaling"]
    rows = [
        {
            "metric": "warm socket p50 / p99 / p999",
            "value": (
                f"{latency['socket_warm_p50_seconds'] * 1e3:.3f} / "
                f"{latency['socket_warm_p99_seconds'] * 1e3:.3f} / "
                f"{latency['socket_warm_p999_seconds'] * 1e3:.3f} ms"
            ),
        },
        {
            "metric": "warm in-process p99",
            "value": f"{latency['inprocess_warm_p99_seconds'] * 1e3:.3f} ms",
        },
        {
            "metric": "socket overhead ratio",
            "value": (
                f"{latency['overhead_ratio']:.2f}× "
                f"(floor ≤ {latency['overhead_floor']:.0f}×)"
            ),
        },
    ]
    for count in scaling["shards"]:
        rows.append(
            {
                "metric": f"{count}-shard throughput (process mode)",
                "value": f"{scaling['throughput_rps'][str(count)]:.1f} req/s",
            }
        )
    rows.append(
        {
            "metric": "scaling ratio",
            "value": (
                f"{scaling['ratio']:.2f}× "
                + (
                    f"(floor ≥ {scaling['floor']:.0f}×)"
                    if scaling["floor_asserted"]
                    else f"(floor not asserted: {scaling['usable_cores']} core(s))"
                )
            ),
        }
    )
    print(
        format_table(
            rows,
            [("metric", "Metric"), ("value", "Value")],
            title=f"HTTP serving — scale={payload['scale']}",
        )
    )


def bench_http_latency(benchmark, bench_seed):
    """pytest-benchmark entry point: one timed pass over both phases."""
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    payload = benchmark.pedantic(
        lambda: run_http_benchmark(scale_name, bench_seed),
        rounds=1,
        iterations=1,
    )
    path = write_payload(payload)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--output", type=Path, default=None)
    arguments = parser.parse_args()
    payload = run_http_benchmark(arguments.scale, arguments.seed)
    path = write_payload(payload, arguments.output)
    _print_payload(payload)
    print(f"machine-readable timings written to {path}")


if __name__ == "__main__":
    main()
