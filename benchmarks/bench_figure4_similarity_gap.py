"""E-F4 — Figure 4: gap versus input similarity on Markov-generated datasets.

Workload: datasets generated with the Markov chain of Section 6.1.2 at the
scale's step grid (few steps = very similar inputs, many steps = close to
uniform).  Baselines: the Figure 4 algorithm set.  Reference: exact solver
when feasible.

Expected shape (paper, Figure 4 and Section 7.2):

* BioConsert and KwikSort improve markedly as similarity increases
  (BioConsert finds the optimum on very similar datasets);
* BordaCount's gap is comparatively stable across similarity levels;
* overall gaps grow as the datasets become less similar.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments import format_figure4, run_figure4


def bench_figure4_similarity_gap(benchmark, bench_scale, bench_seed):
    rows, _reports = benchmark.pedantic(
        run_figure4, args=(bench_scale,), kwargs={"seed": bench_seed}, rounds=1, iterations=1
    )
    print()
    print(format_figure4(rows))

    gaps: dict[str, dict[int, float]] = defaultdict(dict)
    for row in rows:
        gaps[row["algorithm"]][row["steps"]] = row["average_gap"]

    low_steps = min(bench_scale.similarity_steps)
    high_steps = max(bench_scale.similarity_steps)

    # BioConsert finds (near-)optimal consensuses on very similar datasets and
    # stays close to optimal even on dissimilar ones.
    assert gaps["BioConsert"][low_steps] <= 0.01
    assert gaps["BioConsert"][high_steps] <= 0.05

    # KwikSort benefits from similarity: its gap on very similar datasets is
    # no worse than on dissimilar ones.
    assert gaps["KwikSort"][low_steps] <= gaps["KwikSort"][high_steps] + 1e-9

    # BioConsert dominates BordaCount at every similarity level.
    for steps in bench_scale.similarity_steps:
        assert gaps["BioConsert"][steps] <= gaps["BordaCount"][steps] + 1e-9
