#!/usr/bin/env python
"""Dependency-free documentation builder and cross-reference checker.

The build container has no mkdocs/Sphinx, so the docs pipeline is
self-contained: this script renders the Markdown sources under ``docs/``
into a static HTML site (sidebar navigation, one page per source file, a
generated SVG module diagram) and validates the cross-reference graph:

* every relative link must point at an existing page (or generated asset),
  and a ``#fragment`` must match a heading anchor of the target page;
* every ``repro.*`` dotted reference inside inline code must resolve to an
  importable module / attribute of the installed package — stale API
  mentions fail the build;
* the navigation (:data:`NAV`) and the set of Markdown sources must match
  exactly, so no page can silently drop out of the site.

Usage::

    PYTHONPATH=src python docs/build_docs.py --check           # validate only
    PYTHONPATH=src python docs/build_docs.py --output site     # check + build

The checker exits non-zero on the first report of problems, which is what
the CI docs job relies on.
"""

from __future__ import annotations

import argparse
import html
import importlib
import re
import sys
from pathlib import Path

DOCS_DIR = Path(__file__).resolve().parent

#: The site navigation: (source file, sidebar title), in order.
NAV: list[tuple[str, str]] = [
    ("index.md", "Overview"),
    ("architecture.md", "Architecture"),
    ("guides/core-arrays.md", "Core & array kernels"),
    ("guides/prepared-datasets.md", "Prepared datasets"),
    ("guides/live-datasets.md", "Live datasets"),
    ("guides/engine.md", "Execution engine"),
    ("guides/resilience.md", "Resilience & fault injection"),
    ("guides/workloads.md", "Workload scenarios"),
    ("guides/service.md", "Serving layer"),
    ("guides/http-serving.md", "HTTP serving"),
    ("guides/recovery.md", "Recovery & failover"),
    ("guides/telemetry.md", "Telemetry"),
    ("guides/reproduce-paper.md", "Reproduce the paper"),
    ("reference/cli.md", "CLI reference"),
]

#: Assets produced by the build itself (valid link targets without a source).
GENERATED_ASSETS = {"assets/architecture.svg"}

_DOTTED = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+$")
_CODE_SPAN = re.compile(r"`([^`]+)`")
_LINK = re.compile(r"(?<!\!)\[([^\]]+)\]\(([^)\s]+)\)")
_IMAGE = re.compile(r"\!\[([^\]]*)\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,5})\s+(.*?)\s*$")


def slugify(title: str) -> str:
    """Anchor id of a heading (GitHub-style: lowercase, dashes)."""
    text = re.sub(r"`([^`]*)`", r"\1", title)
    text = re.sub(r"[^\w\s-]", "", text.lower())
    return re.sub(r"[\s]+", "-", text.strip())


# --------------------------------------------------------------------------- #
# Markdown subset renderer
# --------------------------------------------------------------------------- #
def _render_inline(text: str) -> str:
    """Inline markup: code spans, links, images, bold, italics."""
    out = []
    cursor = 0
    # Protect code spans from the other inline rules.
    for match in _CODE_SPAN.finditer(text):
        out.append(_render_inline_plain(text[cursor : match.start()]))
        out.append(f"<code>{html.escape(match.group(1))}</code>")
        cursor = match.end()
    out.append(_render_inline_plain(text[cursor:]))
    return "".join(out)


def _render_inline_plain(text: str) -> str:
    text = html.escape(text, quote=False)
    text = _IMAGE.sub(lambda m: f'<img src="{m.group(2)}" alt="{m.group(1)}">', text)
    text = _LINK.sub(
        lambda m: f'<a href="{_href(m.group(2))}">{m.group(1)}</a>', text
    )
    text = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", text)
    text = re.sub(r"(?<!\*)\*([^*]+)\*(?!\*)", r"<em>\1</em>", text)
    return text


def _href(target: str) -> str:
    """Rewrite relative ``.md`` links to the rendered ``.html`` pages."""
    if target.startswith(("http://", "https://", "mailto:")):
        return target
    path, _, fragment = target.partition("#")
    if path.endswith(".md"):
        path = path[: -len(".md")] + ".html"
    return path + (f"#{fragment}" if fragment else "")


def render_markdown(text: str) -> str:
    """Render the Markdown subset used by these docs into an HTML body."""
    lines = text.splitlines()
    out: list[str] = []
    index = 0
    while index < len(lines):
        line = lines[index]
        stripped = line.strip()

        if not stripped:
            index += 1
            continue

        if stripped.startswith("```"):
            language = stripped[3:].strip()
            block: list[str] = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                block.append(lines[index])
                index += 1
            index += 1  # closing fence
            classes = f' class="language-{language}"' if language else ""
            out.append(
                f"<pre><code{classes}>" + html.escape("\n".join(block)) + "</code></pre>"
            )
            continue

        heading = _HEADING.match(stripped)
        if heading:
            level = len(heading.group(1))
            title = heading.group(2)
            anchor = slugify(title)
            out.append(
                f'<h{level} id="{anchor}">{_render_inline(title)}'
                f'<a class="anchor" href="#{anchor}">¶</a></h{level}>'
            )
            index += 1
            continue

        if stripped.startswith("|"):
            rows: list[str] = []
            while index < len(lines) and lines[index].strip().startswith("|"):
                rows.append(lines[index].strip())
                index += 1
            out.append(_render_table(rows))
            continue

        if stripped.startswith(("- ", "* ")):
            items: list[str] = []
            while index < len(lines) and lines[index].strip().startswith(("- ", "* ")):
                item = [lines[index].strip()[2:]]
                index += 1
                # continuation lines (indented)
                while (
                    index < len(lines)
                    and lines[index].startswith("  ")
                    and lines[index].strip()
                    and not lines[index].strip().startswith(("- ", "* "))
                ):
                    item.append(lines[index].strip())
                    index += 1
                items.append(_render_inline(" ".join(item)))
            out.append("<ul>" + "".join(f"<li>{item}</li>" for item in items) + "</ul>")
            continue

        if re.match(r"^\d+\.\s", stripped):
            items = []
            while index < len(lines) and re.match(r"^\d+\.\s", lines[index].strip()):
                item = [re.sub(r"^\d+\.\s", "", lines[index].strip())]
                index += 1
                while (
                    index < len(lines)
                    and lines[index].startswith("  ")
                    and lines[index].strip()
                    and not re.match(r"^\d+\.\s", lines[index].strip())
                ):
                    item.append(lines[index].strip())
                    index += 1
                items.append(_render_inline(" ".join(item)))
            out.append("<ol>" + "".join(f"<li>{item}</li>" for item in items) + "</ol>")
            continue

        if stripped.startswith(">"):
            quote: list[str] = []
            while index < len(lines) and lines[index].strip().startswith(">"):
                quote.append(lines[index].strip().lstrip("> "))
                index += 1
            out.append("<blockquote><p>" + _render_inline(" ".join(quote)) + "</p></blockquote>")
            continue

        paragraph = [stripped]
        index += 1
        while index < len(lines):
            nxt = lines[index].strip()
            if (
                not nxt
                or nxt.startswith(("```", "#", "|", "- ", "* ", ">"))
                or re.match(r"^\d+\.\s", nxt)
            ):
                break
            paragraph.append(nxt)
            index += 1
        out.append("<p>" + _render_inline(" ".join(paragraph)) + "</p>")

    return "\n".join(out)


def _render_table(rows: list[str]) -> str:
    def cells(row: str) -> list[str]:
        return [cell.strip() for cell in row.strip("|").split("|")]

    header = cells(rows[0])
    body = [cells(row) for row in rows[2:]] if len(rows) > 2 else []
    parts = ["<table>", "<thead><tr>"]
    parts += [f"<th>{_render_inline(cell)}</th>" for cell in header]
    parts.append("</tr></thead><tbody>")
    for row in body:
        parts.append("<tr>" + "".join(f"<td>{_render_inline(cell)}</td>" for cell in row) + "</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


# --------------------------------------------------------------------------- #
# Cross-reference checking
# --------------------------------------------------------------------------- #
def page_anchors(text: str) -> set[str]:
    """All heading anchors of a Markdown source."""
    anchors = set()
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line.strip())
        if match:
            anchors.add(slugify(match.group(2)))
    return anchors


def _iter_links(text: str):
    """Yield every link/image target outside fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield match.group(2)
        for match in _IMAGE.finditer(line):
            yield match.group(2)


def _iter_code_references(text: str):
    """Yield every ``repro.*`` dotted reference in inline code spans."""
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _CODE_SPAN.finditer(line):
            token = match.group(1).strip().rstrip("()")
            if _DOTTED.match(token):
                yield token


def _resolvable(token: str) -> bool:
    """Whether a dotted ``repro.*`` reference imports / resolves."""
    parts = token.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attribute in parts[split:]:
                obj = getattr(obj, attribute)
        except AttributeError:
            return False
        return True
    return False


def check(docs_dir: Path = DOCS_DIR) -> list[str]:
    """Validate the docs tree; returns a list of problem descriptions."""
    problems: list[str] = []
    sources = {
        str(path.relative_to(docs_dir)).replace("\\", "/")
        for path in docs_dir.rglob("*.md")
    }
    nav_paths = [path for path, _ in NAV]

    for path in nav_paths:
        if path not in sources:
            problems.append(f"nav entry {path!r} has no source file")
    for path in sorted(sources - set(nav_paths)):
        problems.append(f"page {path!r} is missing from the navigation")

    anchors = {
        path: page_anchors((docs_dir / path).read_text(encoding="utf-8"))
        for path in sorted(sources)
    }

    for path in sorted(sources):
        text = (docs_dir / path).read_text(encoding="utf-8")
        base = Path(path).parent
        for target in _iter_links(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            raw_path, _, fragment = target.partition("#")
            if not raw_path:  # same-page anchor
                if fragment and fragment not in anchors[path]:
                    problems.append(f"{path}: broken anchor #{fragment}")
                continue
            resolved = str((base / raw_path)).replace("\\", "/")
            resolved = str(Path(resolved)).replace("\\", "/")
            while resolved.startswith("./"):
                resolved = resolved[2:]
            if resolved in GENERATED_ASSETS:
                continue
            if resolved not in sources:
                problems.append(f"{path}: broken link {target!r}")
                continue
            if fragment and fragment not in anchors[resolved]:
                problems.append(
                    f"{path}: broken anchor {target!r} (no heading "
                    f"#{fragment} in {resolved})"
                )
        for token in _iter_code_references(text):
            if not _resolvable(token):
                problems.append(f"{path}: unresolvable API reference `{token}`")
    return problems


# --------------------------------------------------------------------------- #
# Site assembly
# --------------------------------------------------------------------------- #
_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title} — repro-rankagg</title>
<style>
:root {{ --accent: #1f6feb; --ink: #1c2128; --muted: #57606a; --line: #d0d7de; }}
* {{ box-sizing: border-box; }}
body {{ margin: 0; font: 16px/1.6 system-ui, sans-serif; color: var(--ink); }}
.layout {{ display: flex; min-height: 100vh; }}
nav {{ width: 240px; flex-shrink: 0; border-right: 1px solid var(--line);
       padding: 24px 16px; background: #f6f8fa; }}
nav h1 {{ font-size: 16px; margin: 0 0 12px; }}
nav a {{ display: block; padding: 6px 10px; border-radius: 6px;
         color: var(--ink); text-decoration: none; }}
nav a.current {{ background: var(--accent); color: #fff; }}
nav a:hover:not(.current) {{ background: #eaeef2; }}
main {{ flex: 1; max-width: 860px; padding: 32px 48px 96px; }}
h1, h2, h3 {{ line-height: 1.25; }}
h1 {{ border-bottom: 1px solid var(--line); padding-bottom: 8px; }}
a {{ color: var(--accent); }}
a.anchor {{ visibility: hidden; margin-left: 6px; text-decoration: none; }}
h1:hover .anchor, h2:hover .anchor, h3:hover .anchor {{ visibility: visible; }}
code {{ background: #f0f2f4; padding: 2px 5px; border-radius: 4px;
        font-size: 87%; }}
pre {{ background: #0d1117; color: #e6edf3; padding: 16px; border-radius: 8px;
       overflow-x: auto; }}
pre code {{ background: none; color: inherit; padding: 0; }}
table {{ border-collapse: collapse; width: 100%; margin: 16px 0; }}
th, td {{ border: 1px solid var(--line); padding: 6px 12px; text-align: left; }}
th {{ background: #f6f8fa; }}
blockquote {{ border-left: 4px solid var(--accent); margin: 16px 0;
              padding: 4px 16px; color: var(--muted); }}
img {{ max-width: 100%; }}
</style>
</head>
<body>
<div class="layout">
<nav>
<h1>repro-rankagg</h1>
{nav}
</nav>
<main>
{body}
</main>
</div>
</body>
</html>
"""


def _nav_html(current: str) -> str:
    entries = []
    for path, title in NAV:
        href = _relative_href(current, path[: -len(".md")] + ".html")
        cls = ' class="current"' if path == current else ""
        entries.append(f'<a{cls} href="{href}">{html.escape(title)}</a>')
    return "\n".join(entries)


def _relative_href(current: str, target: str) -> str:
    depth = len(Path(current).parent.parts)
    return "../" * depth + target


def architecture_svg() -> str:
    """The rendered module diagram (generated, kept in sync with the code)."""
    boxes = [
        # (x, y, w, label, sublabel)
        (20, 20, 200, "repro.cli", "aggregate · batch · scenarios · serve · portfolio"),
        (260, 20, 200, "repro.service", "PortfolioScheduler · ServiceFrontend · live sessions"),
        (750, 20, 140, "repro.service.http", "server · shards · failover"),
        (500, 20, 200, "repro.workloads", "Scenario registry · ScenarioMatrix · service load · churn"),
        (140, 130, 200, "repro.experiments", "table/figure drivers"),
        (380, 130, 200, "repro.engine", "backends · ResultCache · tiering · BatchJob"),
        (20, 240, 200, "repro.evaluation", "gaps · runner · timing · guidance"),
        (260, 240, 200, "repro.algorithms", "Table 1 catalogue · anytime protocol"),
        (500, 240, 200, "repro.generators", "uniform · markov · mallows · adversarial"),
        (140, 350, 200, "repro.datasets", "Dataset · normalization · I/O"),
        (380, 350, 200, "repro.core", "Ranking · kernels · prepared plans · LiveDataset · journal"),
        # Cross-cutting: every layer reports into it when a session is
        # active, hence no arrows — it observes rather than depends.
        (750, 185, 140, "repro.telemetry", "spans · metrics · curves"),
    ]
    arrows = [
        (120, 70, 240, 170),   # cli -> experiments
        (750, 47, 465, 47),    # service.http -> service
        (360, 70, 450, 130),   # service -> engine
        (600, 70, 520, 130),   # workloads -> engine
        (240, 180, 380, 180),  # experiments -> engine
        (480, 230, 400, 240),  # engine -> algorithms
        (120, 290, 240, 290),  # evaluation -> algorithms
        (360, 290, 300, 350),  # algorithms -> datasets
        (420, 290, 460, 350),  # algorithms -> core
        (600, 290, 560, 350),  # generators -> core
        (340, 400, 380, 400),  # datasets -> core
    ]
    parts = [
        '<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 910 460" '
        'font-family="system-ui, sans-serif">',
        "<defs><marker id='arr' markerWidth='8' markerHeight='8' refX='7' refY='3' "
        "orient='auto'><path d='M0,0 L7,3 L0,6 z' fill='#57606a'/></marker></defs>",
        '<rect width="910" height="460" fill="#f6f8fa"/>',
    ]
    for x1, y1, x2, y2 in arrows:
        parts.append(
            f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" stroke="#57606a" '
            'stroke-width="1.5" marker-end="url(#arr)"/>'
        )
    for x, y, w, label, sublabel in boxes:
        parts.append(
            f'<rect x="{x}" y="{y}" width="{w}" height="54" rx="8" fill="#fff" '
            'stroke="#1f6feb" stroke-width="1.5"/>'
        )
        parts.append(
            f'<text x="{x + w / 2}" y="{y + 22}" text-anchor="middle" '
            f'font-size="14" font-weight="600" fill="#1c2128">{label}</text>'
        )
        parts.append(
            f'<text x="{x + w / 2}" y="{y + 40}" text-anchor="middle" '
            f'font-size="9" fill="#57606a">{html.escape(sublabel)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def build(docs_dir: Path = DOCS_DIR, output: Path | None = None) -> Path:
    """Render the whole site into ``output`` (default ``docs/_site``)."""
    output = output or docs_dir / "_site"
    output.mkdir(parents=True, exist_ok=True)
    titles = dict(NAV)
    for path, _ in NAV:
        source = (docs_dir / path).read_text(encoding="utf-8")
        body = render_markdown(source)
        page = _TEMPLATE.format(
            title=html.escape(titles[path]),
            nav=_nav_html(path),
            body=body,
        )
        target = output / (path[: -len(".md")] + ".html")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(page, encoding="utf-8")
    assets = output / "assets"
    assets.mkdir(exist_ok=True)
    (assets / "architecture.svg").write_text(architecture_svg(), encoding="utf-8")
    return output


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true", help="validate cross-references only"
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="build the site into this directory"
    )
    arguments = parser.parse_args(argv)

    problems = check()
    if problems:
        for problem in problems:
            print(f"docs check: {problem}", file=sys.stderr)
        print(f"docs check failed with {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs check passed ({len(NAV)} pages, cross-references OK)")

    if not arguments.check:
        site = build(output=arguments.output)
        pages = sorted(str(p.relative_to(site)) for p in site.rglob("*.html"))
        print(f"built {len(pages)} pages into {site}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
