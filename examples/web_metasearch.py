"""Metasearch: merge the result lists of several web search engines.

The motivating application of Dwork et al. [20] and of the paper's
WebSearch datasets: each engine returns a long, partially overlapping
top-k list (with tied grades), and the metasearch engine must produce one
consensus list.

The script

1. builds a WebSearch-like dataset (four engines, a few hundred documents),
2. shows why the normalization choice matters (projection throws away most
   documents, unification keeps them at the cost of a large final bucket),
3. runs the algorithms the paper recommends for this regime and compares
   their quality (m-gap) and running time,
4. prints the top of the consensus list.

Run with:  python examples/web_metasearch.py
"""

from __future__ import annotations

import time

from repro.algorithms import (
    BioConsert,
    BordaCount,
    CopelandMethod,
    KwikSort,
    MEDRank,
)
from repro.core import generalized_kemeny_score
from repro.datasets import project, unify, websearch_like_dataset
from repro.evaluation import gaps_for_scores


def main() -> None:
    raw = websearch_like_dataset(
        num_engines=4,
        universe_size=300,
        results_per_engine=80,
        tie_fraction=0.2,
        rng=7,
        name="metasearch",
    )
    print(f"Raw engine results: {raw.num_rankings} engines, "
          f"{raw.num_elements} distinct documents retrieved overall")

    # --- normalization choice ---------------------------------------------------
    projected = project(raw)
    unified = unify(raw)
    print(f"  projection keeps   {projected.num_elements:4d} documents "
          f"(those returned by every engine)")
    print(f"  unification keeps  {unified.num_elements:4d} documents "
          f"(missing ones added in a final bucket)")
    print(f"  unified similarity s(R) = {unified.similarity():+.3f}")
    print()

    # --- aggregate the unified dataset ------------------------------------------
    algorithms = [
        BordaCount(),
        CopelandMethod(),
        MEDRank(0.5),
        KwikSort(num_repeats=5, seed=0),
        BioConsert(),
    ]
    scores: dict[str, int] = {}
    timings: dict[str, float] = {}
    consensuses = {}
    for algorithm in algorithms:
        start = time.perf_counter()
        result = algorithm.aggregate(unified)
        timings[result.algorithm] = time.perf_counter() - start
        scores[result.algorithm] = result.score
        consensuses[result.algorithm] = result.consensus

    gaps = gaps_for_scores(scores)  # m-gap: relative to the best algorithm here
    print(f"{'algorithm':<16} {'score':>8} {'m-gap':>8} {'time':>10}")
    for name in sorted(scores, key=scores.get):
        print(
            f"{name:<16} {scores[name]:>8} {gaps[name]:>7.1%} "
            f"{timings[name] * 1000:>8.1f} ms"
        )
    print()

    # --- final consensus ---------------------------------------------------------
    best_name = min(scores, key=scores.get)
    best = consensuses[best_name]
    print(f"Top of the consensus list ({best_name}):")
    shown = 0
    for rank, bucket in enumerate(best.buckets, start=1):
        label = ", ".join(sorted(bucket)[:4])
        suffix = f" (+{len(bucket) - 4} more)" if len(bucket) > 4 else ""
        print(f"  {rank:2d}. {label}{suffix}")
        shown += 1
        if shown >= 10:
            break

    # Sanity: the reported score really is the generalized Kemeny score.
    assert scores[best_name] == generalized_kemeny_score(best, list(unified.rankings))


if __name__ == "__main__":
    main()
