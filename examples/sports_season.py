"""Sports season: rank pilots from race results, and why normalization matters.

The F1 use case of the paper (Section 7.3.1): each race of a season ranks
only the pilots who finished it.  To aggregate the races into a season-long
consensus, the dataset must first be normalized — and the paper shows the
choice is not innocent: projection (keep only pilots who finished *every*
race) silently removes pilots as important as a vice-champion, while
unification keeps everyone.

The script

1. builds an F1-like season,
2. compares the projected and unified datasets (how many pilots survive,
   who disappears),
3. aggregates both with BioConsert and shows how the podium changes,
4. demonstrates the intermediate threshold normalization the paper proposes
   as future work (Section 8).

Run with:  python examples/sports_season.py
"""

from __future__ import annotations

from repro.algorithms import BioConsert
from repro.datasets import f1_like_dataset, normalize_with_threshold, project, unify


def podium(consensus, count: int = 5) -> str:
    names: list[str] = []
    for bucket in consensus.buckets:
        names.extend(sorted(bucket))
        if len(names) >= count:
            break
    return ", ".join(names[:count])


def main() -> None:
    season = f1_like_dataset(num_races=12, num_pilots=26, noise=0.5, rng=3, name="season")
    universe = season.universe()
    print(f"Season: {season.num_rankings} races, {len(universe)} pilots entered")
    print()

    # --- projection vs unification ----------------------------------------------
    projected = project(season)
    unified = unify(season)
    removed = sorted(universe - projected.universe())
    print(f"Projection keeps {projected.num_elements} pilots "
          f"({len(removed)} removed: finished at least one race less)")
    print(f"  removed pilots include: {', '.join(removed[:6])}"
          + (" ..." if len(removed) > 6 else ""))
    print(f"Unification keeps {unified.num_elements} pilots "
          f"(missing ones tied in a final bucket per race)")
    print()

    # --- aggregate both -----------------------------------------------------------
    bioconsert = BioConsert()
    projected_result = bioconsert.aggregate(projected)
    unified_result = bioconsert.aggregate(unified)
    print("Season consensus (BioConsert):")
    print(f"  projected dataset podium : {podium(projected_result.consensus)}")
    print(f"  unified dataset podium   : {podium(unified_result.consensus)}")
    print()

    # A strong pilot who missed a couple of races exists only in the unified
    # consensus — the paper's 1970-champion anecdote.
    only_unified = sorted(
        set(unified_result.consensus.domain) - set(projected_result.consensus.domain)
    )
    if only_unified:
        example = only_unified[0]
        position = unified_result.consensus.position_of(example) + 1
        print(f"Pilot {example} is absent from the projected consensus but ranked "
              f"in bucket {position} of the unified one.")
    print()

    # --- threshold normalization (Section 8) ---------------------------------------
    print("Threshold normalization (keep pilots present in >= k races):")
    for k in (1, season.num_rankings // 2, season.num_rankings):
        thresholded = normalize_with_threshold(season, k)
        result = bioconsert.aggregate(thresholded)
        print(f"  k = {k:2d}: {thresholded.num_elements:2d} pilots kept, "
              f"podium: {podium(result.consensus, 3)}")


if __name__ == "__main__":
    main()
