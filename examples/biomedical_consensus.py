"""Biomedical consensus: rank genes returned by several sources.

The BioMedical use case of the paper ([12], ConQuR-Bio): several biological
databases return ranked lists of genes for the same query, grades are
coarse (many genes share a grade, i.e. are tied), and each source covers
only part of the gene universe.  The goal is one consensus ranking that a
biologist can read top-down.

The script

1. builds a BioMedical-like dataset (five sources, ties, partial coverage),
2. unifies it (the normalization the paper uses for this group),
3. asks the guidance engine (Section 7.4) which algorithm to use,
4. runs that recommendation plus the exact solver when the instance is
   small enough, and reports the gap,
5. prints the consensus with its tied groups, which is exactly what the
   grade-style output of the original application looks like.

Run with:  python examples/biomedical_consensus.py
"""

from __future__ import annotations

from repro.algorithms import make_algorithm
from repro.datasets import biomedical_like_dataset, unify
from repro.evaluation import Priority, gap, profile_dataset, recommend
from repro.experiments import AdaptiveExact


def main() -> None:
    raw = biomedical_like_dataset(
        num_sources=5,
        num_genes=18,
        coverage_rate=0.8,
        grade_levels=4,
        divergence_steps=30,
        rng=11,
        name="gene-query",
    )
    dataset = unify(raw)
    print(f"Dataset: {dataset.num_rankings} sources over {dataset.num_elements} genes")
    print(f"  tie density        : {dataset.tie_density():.2f}")
    print(f"  average bucket size: {dataset.average_bucket_size():.2f}")
    print(f"  similarity s(R)    : {dataset.similarity():+.3f}")
    print()

    # --- guidance ---------------------------------------------------------------
    profile = profile_dataset(dataset)
    print("Guidance (quality priority):")
    recommendations = recommend(profile, Priority.QUALITY)
    for entry in recommendations:
        print(f"  {entry.algorithm:<15} — {entry.reason}")
    print()

    # --- run the recommended algorithm ------------------------------------------
    primary = recommendations[0].algorithm
    algorithm = make_algorithm(primary, seed=0)
    result = algorithm.aggregate(dataset)
    print(f"{primary} consensus score: {result.score} "
          f"({result.elapsed_seconds * 1000:.1f} ms)")

    # --- exact reference ----------------------------------------------------------
    if dataset.num_elements <= 20:
        exact = AdaptiveExact().aggregate(dataset)
        print(f"Exact optimal score      : {exact.score} "
              f"({exact.elapsed_seconds:.2f} s)")
        print(f"{primary} gap            : {gap(result.score, exact.score):.2%}")
    print()

    # --- the consensus a biologist reads ------------------------------------------
    print("Consensus gene ranking (tied genes share a line):")
    for rank, bucket in enumerate(result.consensus.buckets, start=1):
        print(f"  grade {rank}: " + ", ".join(sorted(bucket)))


if __name__ == "__main__":
    main()
