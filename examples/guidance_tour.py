"""Guidance tour: which algorithm should I use for *my* dataset?

Section 7.4 of the paper distils the whole experimental study into a small
set of recommendations driven by dataset features (size, similarity, large
ties) and by the user's priority (quality / speed / optimality).  This
example generates datasets of very different shapes, profiles them, prints
the guidance engine's recommendation for each, and then verifies the advice
empirically by running the recommended algorithm against a fast baseline.

Run with:  python examples/guidance_tour.py
"""

from __future__ import annotations

import time

from repro.algorithms import make_algorithm
from repro.datasets import unify, websearch_like_dataset
from repro.evaluation import Priority, profile_dataset, recommend
from repro.generators import markov_dataset, uniform_dataset, unified_topk_dataset


def describe_and_recommend(name: str, dataset, priority: Priority) -> str:
    profile = profile_dataset(dataset)
    recommendations = recommend(profile, priority)
    primary = recommendations[0]
    similarity = "n/a" if profile.similarity is None else f"{profile.similarity:+.2f}"
    print(f"{name}")
    print(f"  m={profile.num_rankings}, n={profile.num_elements}, "
          f"s(R)={similarity}, tie density={profile.tie_density:.2f}, "
          f"large buckets={profile.has_large_buckets}")
    print(f"  priority: {priority.value}")
    print(f"  -> {primary.algorithm}: {primary.reason}")
    for alternative in recommendations[1:]:
        print(f"     alternative: {alternative.algorithm}")
    print()
    return primary.algorithm


def empirical_check(dataset, recommended: str, baseline: str = "RepeatChoice") -> None:
    rows = []
    for name in (recommended, baseline):
        algorithm = make_algorithm(name, seed=0)
        start = time.perf_counter()
        result = algorithm.aggregate(dataset)
        rows.append((name, result.score, time.perf_counter() - start))
    print(f"  empirical check on {dataset.name!r}:")
    for name, score, seconds in rows:
        print(f"    {name:<15} score={score:<6} time={seconds * 1000:8.1f} ms")
    recommended_score = rows[0][1]
    baseline_score = rows[1][1]
    verdict = "matches" if recommended_score <= baseline_score else "does NOT match"
    print(f"    -> the recommendation {verdict} the naive baseline on quality\n")


def main() -> None:
    scenarios = [
        (
            "Uniform mid-size dataset (no structure)",
            uniform_dataset(7, 30, rng=1, name="uniform-30"),
            Priority.BALANCED,
        ),
        (
            "Very similar rankings (Markov, few steps)",
            markov_dataset(7, 30, 25, rng=2, name="similar-30"),
            Priority.QUALITY,
        ),
        (
            "Unified top-k lists with large ending buckets",
            unified_topk_dataset(6, 60, 15, 50_000, rng=3, name="unified-topk"),
            Priority.SPEED,
        ),
        (
            "Small dataset where optimality is required",
            uniform_dataset(5, 12, rng=4, name="small-12"),
            Priority.OPTIMALITY,
        ),
        (
            "Large unified metasearch dataset",
            unify(websearch_like_dataset(4, 250, 70, rng=5, name="metasearch-big")),
            Priority.BALANCED,
        ),
    ]

    checked = 0
    for name, dataset, priority in scenarios:
        recommended = describe_and_recommend(name, dataset, priority)
        # Run the empirical check on the datasets small enough to keep the
        # example fast.
        if dataset.num_elements <= 60 and checked < 3:
            empirical_check(dataset, recommended)
            checked += 1


if __name__ == "__main__":
    main()
