"""Quickstart: aggregate a handful of rankings with ties.

This walks through the worked example of Section 2.2 of the paper:

    r1 = [{A}, {D}, {B, C}]
    r2 = [{A}, {B, C}, {D}]
    r3 = [{D}, {A, C}, {B}]

whose optimal consensus is [{A}, {D}, {B, C}] with a generalized Kemeny
score of 5, and shows the three ways of using the library:

1. the one-call ``repro.aggregate`` helper,
2. explicit algorithm objects (to inspect scores, timings, diagnostics),
3. the exact solver as a quality reference (gap computation).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Ranking, aggregate
from repro.algorithms import BordaCount, ExactAlgorithm, KwikSort
from repro.core import generalized_kendall_tau_distance, kendall_tau_correlation
from repro.evaluation import gap


def main() -> None:
    rankings = [
        Ranking([["A"], ["D"], ["B", "C"]]),
        Ranking([["A"], ["B", "C"], ["D"]]),
        Ranking([["D"], ["A", "C"], ["B"]]),
    ]

    print("Input rankings")
    for index, ranking in enumerate(rankings, start=1):
        print(f"  r{index} = {ranking}")
    print()

    # --- pairwise distances and correlation -----------------------------------
    print("Pairwise generalized Kendall-tau distances")
    for i in range(len(rankings)):
        for j in range(i + 1, len(rankings)):
            distance = generalized_kendall_tau_distance(rankings[i], rankings[j])
            correlation = kendall_tau_correlation(rankings[i], rankings[j])
            print(f"  G(r{i + 1}, r{j + 1}) = {distance}   tau = {correlation:+.2f}")
    print()

    # --- 1. one-call aggregation ----------------------------------------------
    result = aggregate(rankings)  # BioConsert, the paper's default recommendation
    print(f"BioConsert consensus : {result.consensus}")
    print(f"generalized Kemeny score: {result.score}")
    print()

    # --- 2. explicit algorithm objects -----------------------------------------
    for algorithm in (BordaCount(), KwikSort(num_repeats=10, seed=0)):
        outcome = algorithm.aggregate(rankings)
        print(
            f"{outcome.algorithm:<12} score={outcome.score:<3} "
            f"time={outcome.elapsed_seconds * 1000:.2f} ms  {outcome.consensus}"
        )
    print()

    # --- 3. exact reference and gap --------------------------------------------
    exact = ExactAlgorithm().aggregate(rankings)
    print(f"Exact optimal consensus : {exact.consensus}  (score {exact.score})")
    heuristic_gap = gap(result.score, exact.score)
    print(f"BioConsert gap          : {heuristic_gap:.1%} (0% = optimal)")


if __name__ == "__main__":
    main()
