"""Service-load workload: stream construction and frontend replay."""

from __future__ import annotations

import pytest

from repro.service import ServiceFrontend
from repro.workloads import (
    ServiceLoadProfile,
    build_service_requests,
    run_service_load,
)

PROFILE = ServiceLoadProfile(
    scenarios=("mallows-ties-diffuse",),
    scale="smoke",
    num_requests=12,
    budget_seconds=0.1,
    batch_size=4,
    seed=3,
)


class TestStreamConstruction:
    def test_stream_length_and_ids(self):
        requests = build_service_requests(PROFILE)
        assert len(requests) == 12
        assert [r.request_id for r in requests[:2]] == ["req-0000", "req-0001"]
        assert all(r.budget_seconds == 0.1 for r in requests)

    def test_stream_is_deterministic(self):
        first = build_service_requests(PROFILE)
        second = build_service_requests(PROFILE)
        assert [r.dataset.name for r in first] == [r.dataset.name for r in second]

    def test_skew_repeats_popular_datasets(self):
        requests = build_service_requests(PROFILE)
        names = [r.dataset.name for r in requests]
        # Far fewer distinct datasets than requests: traffic is repetitive.
        assert len(set(names)) < len(names)

    def test_empty_selection_is_rejected(self):
        profile = ServiceLoadProfile(scenarios=("unknown-scenario",))
        with pytest.raises(ValueError):
            build_service_requests(profile)


class TestReplay:
    def test_replay_reports_sources_and_stats(self, tmp_path):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.1)
        payload = run_service_load(frontend, PROFILE)
        assert payload["report"] == "service-load"
        assert payload["profile"]["num_requests"] == 12
        assert sum(payload["responses_by_source"].values()) == 12
        assert payload["frontend"]["requests"] == 12
        # Repetitive traffic must be served from the cache or coalesced.
        assert payload["frontend"]["hit_rate"] > 0.0
        computed = payload["responses_by_source"].get("computed", 0)
        assert computed == payload["distinct_datasets"]

    def test_warm_replay_computes_nothing(self, tmp_path):
        directory = tmp_path / "cache"
        run_service_load(
            ServiceFrontend(directory, default_budget_seconds=0.1), PROFILE
        )
        warm = ServiceFrontend(directory, default_budget_seconds=0.1)
        payload = run_service_load(warm, PROFILE)
        assert payload["responses_by_source"].get("computed", 0) == 0
        assert payload["frontend"]["hit_rate"] == 1.0
