"""Scenario registry and catalog conformance tests."""

from __future__ import annotations

import pytest

from repro.core import Ranking
from repro.datasets import Dataset
from repro.engine import dataset_fingerprint
from repro.workloads import (
    SCENARIO_SCALES,
    Scenario,
    ScenarioShapeError,
    get_scenario,
    get_scenario_scale,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)

REQUIRED_SCENARIOS = {
    "uniform-ties",
    "markov-similarity",
    "unified-topk",
    "mallows-ties-concentrated",
    "mallows-ties-diffuse",
    "plackett-luce-skewed",
    "plackett-luce-zipf",
    "near-total-ties",
    "disjoint-shards",
    "heavy-tailed-lengths",
}


def test_catalog_has_at_least_eight_scenarios():
    names = set(scenario_names())
    assert REQUIRED_SCENARIOS <= names
    assert len(names) >= 8


def test_list_scenarios_sorted_and_filterable():
    scenarios = list_scenarios()
    assert [s.name for s in scenarios] == sorted(s.name for s in scenarios)
    adversarial = list_scenarios(tag="adversarial")
    assert {s.name for s in adversarial} >= {"near-total-ties", "disjoint-shards"}
    assert all("adversarial" in s.tags for s in adversarial)


def test_get_scenario_unknown_name():
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_get_scenario_scale_unknown_name():
    with pytest.raises(ValueError, match="unknown scenario scale"):
        get_scenario_scale("galactic")
    smoke = get_scenario_scale("smoke")
    assert get_scenario_scale(smoke) is smoke
    assert set(SCENARIO_SCALES) == {"smoke", "default"}


@pytest.mark.parametrize("name", sorted(REQUIRED_SCENARIOS) + ["biomedical-like"])
def test_every_scenario_builds_complete_stamped_datasets(name):
    scenario = get_scenario(name)
    datasets = scenario.build("smoke", base_seed=2015)
    scale = get_scenario_scale("smoke")
    assert len(datasets) == scale.datasets_per_scenario
    for index, dataset in enumerate(datasets):
        assert dataset.is_complete
        assert dataset.num_elements >= 2
        assert dataset.metadata["scenario"] == name
        assert dataset.metadata["scenario_family"] == scenario.family
        assert dataset.metadata["scenario_seed_policy"] == scenario.seed_policy
        assert dataset.metadata["scenario_index"] == index
        if scenario.normalization is not None:
            assert scenario.normalization in str(dataset.metadata.get("normalization"))


def test_per_dataset_seed_policy_is_order_independent():
    scenario = get_scenario("uniform-ties")
    assert scenario.seed_policy == "per-dataset"
    both = scenario.build("smoke", base_seed=7, num_datasets=2)
    just_one = scenario.build("smoke", base_seed=7, num_datasets=1)
    assert dataset_fingerprint(both[0]) == dataset_fingerprint(just_one[0])
    # Re-building is fully reproducible.
    again = scenario.build("smoke", base_seed=7, num_datasets=2)
    assert [dataset_fingerprint(d) for d in again] == [
        dataset_fingerprint(d) for d in both
    ]


def test_different_seeds_and_scenarios_give_different_content():
    scenario = get_scenario("uniform-ties")
    a = scenario.build("smoke", base_seed=1, num_datasets=1)[0]
    b = scenario.build("smoke", base_seed=2, num_datasets=1)[0]
    assert dataset_fingerprint(a) != dataset_fingerprint(b)
    other = get_scenario("mallows-ties-diffuse").build("smoke", base_seed=1, num_datasets=1)[0]
    assert dataset_fingerprint(a) != dataset_fingerprint(other)


def test_shared_stream_policy_is_deterministic():
    scenario = get_scenario("markov-similarity")
    assert scenario.seed_policy == "shared-stream"
    first = scenario.build("smoke", base_seed=11)
    second = scenario.build("smoke", base_seed=11)
    assert [dataset_fingerprint(d) for d in first] == [
        dataset_fingerprint(d) for d in second
    ]


def test_register_scenario_decorator_and_duplicate_rejection():
    @register_scenario(
        "temp-singleton",
        family="test",
        description="one fixed ranking",
        expected={"complete": True, "contains_ties": False},
    )
    def build_singleton(scale, rng, index):
        return Dataset(
            [Ranking.from_permutation([0, 1, 2])] * scale.num_rankings,
            name=f"temp_{index}",
        )

    try:
        assert "temp-singleton" in scenario_names()
        built = get_scenario("temp-singleton").build("smoke", 0, num_datasets=1)
        assert built[0].num_elements == 3
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("temp-singleton", family="test", description="dup")(
                build_singleton
            )
    finally:
        unregister_scenario("temp-singleton")
    assert "temp-singleton" not in scenario_names()


def test_invalid_seed_policy_rejected():
    with pytest.raises(ValueError, match="seed policy"):
        Scenario(
            name="bad",
            family="test",
            description="",
            builder=lambda scale, rng, index: Dataset([]),
            seed_policy="per-universe",
        )


def test_expected_shape_violation_raises():
    @register_scenario(
        "temp-claims-ties",
        family="test",
        description="claims ties but builds permutations",
        expected={"contains_ties": True},
    )
    def build_tieless(scale, rng, index):
        return Dataset(
            [Ranking.from_permutation([0, 1, 2])] * scale.num_rankings,
            name=f"tieless_{index}",
        )

    try:
        with pytest.raises(ScenarioShapeError, match="contains_ties"):
            get_scenario("temp-claims-ties").build("smoke", 0, num_datasets=1)
    finally:
        unregister_scenario("temp-claims-ties")


def test_raw_shape_checked_before_normalization():
    @register_scenario(
        "temp-claims-incomplete",
        family="test",
        description="claims raw incompleteness but builds complete data",
        normalization="unification",
        expected={"raw_complete": False},
    )
    def build_complete(scale, rng, index):
        return Dataset(
            [Ranking.from_permutation([0, 1, 2])] * scale.num_rankings,
            name=f"complete_{index}",
        )

    try:
        with pytest.raises(ScenarioShapeError, match="raw_complete"):
            get_scenario("temp-claims-incomplete").build("smoke", 0, num_datasets=1)
    finally:
        unregister_scenario("temp-claims-incomplete")


def test_describe_cards_are_json_friendly():
    for scenario in list_scenarios():
        card = scenario.describe()
        assert card["name"] == scenario.name
        assert isinstance(card["expected"], dict)
        assert isinstance(card["tags"], list)
        assert card["paper_section"]
