"""ScenarioMatrix: sharded grid execution through the engine."""

from __future__ import annotations

import json

import pytest

from repro.engine import ExecutionEngine, ResultCache
from repro.workloads import (
    DEFAULT_MATRIX_ALGORITHMS,
    ScenarioMatrix,
    deterministic_payload,
    scenario_names,
)

FAST_ALGORITHMS = ("BordaCount", "Pick-a-Perm")


def test_matrix_covers_every_registered_scenario():
    matrix = ScenarioMatrix(scale="smoke")
    assert matrix.scenario_list() == scenario_names()
    assert len(matrix.scenario_list()) >= 8
    assert set(DEFAULT_MATRIX_ALGORITHMS) >= {"BioConsert", "BordaCount"}


def test_matrix_rejects_bad_configuration():
    with pytest.raises(ValueError, match="shard_size"):
        ScenarioMatrix(shard_size=0)
    with pytest.raises(ValueError, match="unknown scenario"):
        ScenarioMatrix(scenarios=("no-such-scenario",)).scenario_list()
    with pytest.raises(ValueError, match="unknown scenario scale"):
        ScenarioMatrix(scale="galactic")


def test_jobs_carry_scenario_cache_context_and_shards():
    matrix = ScenarioMatrix(
        scenarios=("uniform-ties", "near-total-ties"),
        algorithms=FAST_ALGORITHMS,
        scale="smoke",
        shard_size=1,
        with_exact=False,
    )
    jobs = list(matrix.jobs())
    # smoke scale builds 2 datasets per scenario; shard_size=1 -> 2 shards
    # each, in the caller's scenario order.
    assert [(name, shard) for name, shard, _ in jobs] == [
        ("uniform-ties", 0),
        ("uniform-ties", 1),
        ("near-total-ties", 0),
        ("near-total-ties", 1),
    ]
    for name, _, job in jobs:
        assert len(job.datasets) == 1
        assert job.cache_context["scenario"] == name
        assert job.cache_context["seed_policy"] == "per-dataset"
        assert job.cache_context["base_seed"] == 2015
        assert set(job.suite) == set(FAST_ALGORITHMS)


def test_full_smoke_matrix_runs_and_writes_report(tmp_path):
    matrix = ScenarioMatrix(algorithms=FAST_ALGORITHMS, scale="smoke", with_exact=False)
    report = matrix.run()
    assert len(report.scenarios) >= 8
    names = {result.scenario for result in report.scenarios}
    assert {
        "mallows-ties-concentrated",
        "mallows-ties-diffuse",
        "plackett-luce-skewed",
        "near-total-ties",
        "disjoint-shards",
    } <= names
    for result in report.scenarios:
        assert result.num_datasets == 2
        assert result.num_shards == 1
        assert result.total_runs == result.num_datasets * len(FAST_ALGORITHMS)
        assert result.summary_rows
        assert result.dataset_features
        best = result.best_row()
        assert best is not None and best["rank"] == 1

    path = report.write(tmp_path / "workloads_report.json")
    payload = json.loads(path.read_text())
    assert payload["report"] == "scenario-matrix"
    assert payload["total_runs"] == report.total_runs
    assert len(payload["scenarios"]) == len(report.scenarios)


def test_matrix_reruns_are_served_from_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    matrix = ScenarioMatrix(
        scenarios=("uniform-ties", "mallows-ties-diffuse"),
        algorithms=FAST_ALGORITHMS,
        scale="smoke",
        with_exact=False,
    )
    cold = matrix.run(ExecutionEngine(cache=cache))
    assert cold.executed_runs == cold.total_runs and cold.cached_runs == 0
    warm = matrix.run(ExecutionEngine(cache=cache))
    assert warm.executed_runs == 0 and warm.cached_runs == warm.total_runs
    # The deterministic payloads (scores, gaps, features) are identical.
    assert deterministic_payload(cold.to_payload()) == deterministic_payload(
        warm.to_payload()
    )


def test_matrix_is_deterministic_across_shardings():
    base = ScenarioMatrix(
        scenarios=("uniform-ties",),
        algorithms=FAST_ALGORITHMS,
        scale="smoke",
        shard_size=2,
        with_exact=False,
    ).run()
    resharded = ScenarioMatrix(
        scenarios=("uniform-ties",),
        algorithms=FAST_ALGORITHMS,
        scale="smoke",
        shard_size=1,
        with_exact=False,
    ).run()
    a = deterministic_payload(base.to_payload())
    b = deterministic_payload(resharded.to_payload())
    # Shard count differs; everything result-shaped must not.
    for payload in (a, b):
        for scenario in payload["scenarios"]:
            scenario.pop("num_shards")
        payload.pop("shard_size")
    assert a == b
    assert base.scenario("uniform-ties").num_shards == 1
    assert resharded.scenario("uniform-ties").num_shards == 2


def test_matrix_with_exact_records_optimal_scores():
    report = ScenarioMatrix(
        scenarios=("uniform-ties",),
        algorithms=FAST_ALGORITHMS,
        scale="smoke",
        with_exact=True,
    ).run()
    result = report.scenario("uniform-ties")
    # smoke uniform-ties datasets have 7 elements <= exact_max_elements=8.
    assert len(result.optimal_scores) == result.num_datasets
    gaps = [row["average_gap"] for row in result.summary_rows]
    assert all(gap >= 0.0 for gap in gaps)
    with pytest.raises(KeyError):
        report.scenario("not-in-report")
