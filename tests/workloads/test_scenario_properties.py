"""Property-based conformance suite over every registered scenario.

Invariants checked for each scenario's datasets (seeded loops over two base
seeds, plus hypothesis sweeps for the samplers):

* the BioConsert consensus score never exceeds ``trivial_upper_bound``
  (the algorithm starts from every input ranking and only accepts strictly
  improving moves) — on both the reference and the array kernel, which must
  also agree with each other exactly;
* aggregation is idempotent on identical-input datasets: the consensus is
  the common input ranking, at score zero;
* the generalized Kemeny score is invariant under element relabeling.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BioConsert
from repro.core import Ranking
from repro.core.kemeny import generalized_kemeny_score, trivial_upper_bound
from repro.datasets import Dataset
from repro.generators import sample_mallows_ties_ranking
from repro.workloads import get_scenario, scenario_names

BASE_SEEDS = (2015, 7)
KERNELS = ("reference", "arrays")


def _scenario_datasets(name: str, seed: int) -> list[Dataset]:
    return get_scenario(name).build("smoke", base_seed=seed, num_datasets=1)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("name", scenario_names())
def test_consensus_score_within_trivial_upper_bound(name, kernel):
    for seed in BASE_SEEDS:
        for dataset in _scenario_datasets(name, seed):
            bound = trivial_upper_bound(dataset.rankings)
            result = BioConsert(seed=seed, kernel=kernel).aggregate(dataset)
            assert result.score <= bound, (name, kernel, seed)
            # The reported score is the true generalized Kemeny score.
            assert result.score == generalized_kemeny_score(
                result.consensus, dataset.rankings
            )


@pytest.mark.parametrize("name", scenario_names())
def test_kernels_agree_on_every_scenario(name):
    for seed in BASE_SEEDS:
        for dataset in _scenario_datasets(name, seed):
            reference = BioConsert(seed=seed, kernel="reference").aggregate(dataset)
            arrays = BioConsert(seed=seed, kernel="arrays").aggregate(dataset)
            assert reference.score == arrays.score, (name, seed)
            assert reference.consensus.canonical() == arrays.consensus.canonical()


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("name", scenario_names())
def test_idempotence_on_identical_inputs(name, kernel):
    """Aggregating m copies of one ranking returns that ranking at score 0."""
    for seed in BASE_SEEDS:
        dataset = _scenario_datasets(name, seed)[0]
        ranking = dataset.rankings[0]
        clones = Dataset([ranking] * len(dataset), name=f"{name}-clones")
        assert trivial_upper_bound(clones.rankings) == 0
        result = BioConsert(seed=seed, kernel=kernel).aggregate(clones)
        assert result.score == 0, (name, kernel)
        assert result.consensus.canonical() == ranking.canonical()


@pytest.mark.parametrize("name", scenario_names())
def test_kemeny_score_invariant_under_relabeling(name):
    """Relabeling elements never changes the generalized Kemeny score."""
    for seed in BASE_SEEDS:
        dataset = _scenario_datasets(name, seed)[0]
        elements = sorted(dataset.universe(), key=repr)
        shuffled = list(elements)
        np.random.default_rng(seed).shuffle(shuffled)
        mapping = {old: f"relabel_{new}" for old, new in zip(elements, shuffled)}

        def relabel(ranking: Ranking) -> Ranking:
            return Ranking(
                [[mapping[element] for element in bucket] for bucket in ranking.buckets]
            )

        relabeled = [relabel(ranking) for ranking in dataset.rankings]
        candidate = BioConsert(seed=seed).consensus(dataset)
        original_score = generalized_kemeny_score(candidate, dataset.rankings)
        relabeled_score = generalized_kemeny_score(relabel(candidate), relabeled)
        assert original_score == relabeled_score, name
        assert trivial_upper_bound(dataset.rankings) == trivial_upper_bound(relabeled)


@settings(max_examples=30, deadline=None)
@given(
    phi=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_mallows_ties_always_produces_valid_rankings(phi, n, seed):
    """Any (phi, n, seed): the sample is a valid ranking over the full domain."""
    reference = Ranking.from_permutation(list(range(n)))
    sample = sample_mallows_ties_ranking(
        reference, phi, np.random.default_rng(seed)
    )
    assert sample.domain == reference.domain
    assert all(len(bucket) >= 1 for bucket in sample.buckets)
    assert sum(len(bucket) for bucket in sample.buckets) == n
