"""Statistical conformance tests for the new ranking families.

The Mallows-with-ties sampler is designed so that both dispersion limits
are *exact*: phi=0 returns the reference ranking with probability one, and
phi=1 is the uniform distribution over all rankings with ties — which these
tests verify against the exact counting functions of
:mod:`repro.generators.uniform` (ordered Bell numbers, per-bucket-count
populations).  The Plackett–Luce checks compare empirical top-1 frequencies
against the model's closed-form ``w_e / sum(w)``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Ranking
from repro.core.distances import generalized_kendall_tau_distance
from repro.generators import (
    count_rankings_with_ties,
    mallows_ties_dataset,
    ordered_bell_number,
    plackett_luce_dataset,
    plackett_luce_utilities,
    sample_mallows_ties_ranking,
    uniform_composition_weights,
)


def test_phi_zero_returns_reference_exactly():
    rng = np.random.default_rng(5)
    reference = Ranking([[0], [3, 1], [2], [4, 5]])
    for _ in range(50):
        assert sample_mallows_ties_ranking(reference, 0.0, rng) == reference


def test_phi_out_of_range_rejected():
    rng = np.random.default_rng(0)
    reference = Ranking.from_permutation([0, 1, 2])
    with pytest.raises(ValueError, match="phi"):
        sample_mallows_ties_ranking(reference, 1.5, rng)
    with pytest.raises(ValueError, match="phi"):
        sample_mallows_ties_ranking(reference, -0.1, rng)


def test_uniform_composition_weights_sum_to_ordered_bell():
    # sum_s C(n, s) a(n-s) = a(n): the first-bucket decomposition.
    for n in range(1, 9):
        assert sum(uniform_composition_weights(n)) == ordered_bell_number(n)


def test_phi_one_matches_uniform_bucket_count_law():
    """At phi=1 the bucket-count histogram matches k!·S(n,k)/a(n) exactly."""
    n, samples = 4, 8000
    rng = np.random.default_rng(20150811)
    reference = Ranking.from_permutation(list(range(n)))
    counts = {k: 0 for k in range(1, n + 1)}
    for _ in range(samples):
        counts[sample_mallows_ties_ranking(reference, 1.0, rng).num_buckets] += 1
    total = ordered_bell_number(n)
    for k in range(1, n + 1):
        expected = count_rankings_with_ties(n, k) / total
        observed = counts[k] / samples
        sigma = math.sqrt(expected * (1 - expected) / samples)
        assert abs(observed - expected) < 5 * sigma, (k, observed, expected)


def test_phi_one_is_uniform_over_individual_rankings():
    """Every individual ranking with ties appears with frequency ~ 1/a(n)."""
    n, samples = 3, 6000
    rng = np.random.default_rng(99)
    reference = Ranking.from_permutation(list(range(n)))
    frequencies: dict[Ranking, int] = {}
    for _ in range(samples):
        drawn = sample_mallows_ties_ranking(reference, 1.0, rng).canonical()
        frequencies[drawn] = frequencies.get(drawn, 0) + 1
    total = ordered_bell_number(n)  # 13 rankings with ties over 3 elements
    assert len(frequencies) == total
    expected = 1.0 / total
    sigma = math.sqrt(expected * (1 - expected) / samples)
    for ranking, count in frequencies.items():
        assert abs(count / samples - expected) < 5 * sigma, ranking


def test_dispersion_sweep_concentrates_on_reference():
    """Mean generalized distance to the reference grows with phi."""
    rng = np.random.default_rng(7)
    reference = Ranking([[0], [1, 2], [3], [4]])
    means = []
    for phi in (0.1, 0.5, 0.9):
        distances = [
            generalized_kendall_tau_distance(
                sample_mallows_ties_ranking(reference, phi, rng), reference
            )
            for _ in range(300)
        ]
        means.append(sum(distances) / len(distances))
    assert means[0] < means[1] < means[2]


def test_large_reference_does_not_overflow():
    """Regression: big-int ordered Bell weights must never pass through
    float64 (n=200 used to raise OverflowError in the composition stage)."""
    rng = np.random.default_rng(1)
    reference = Ranking.from_permutation(list(range(200)))
    for phi in (0.5, 1.0):
        sample = sample_mallows_ties_ranking(reference, phi, rng)
        assert sample.domain == reference.domain


def test_mallows_ties_dataset_metadata_and_domain():
    dataset = mallows_ties_dataset(5, 6, 0.4, np.random.default_rng(3))
    assert dataset.num_rankings == 5
    assert dataset.is_complete
    assert dataset.num_elements == 6
    assert dataset.metadata["generator"] == "mallows-ties"
    assert dataset.metadata["phi"] == 0.4


def test_plackett_luce_top1_frequencies_match_utilities():
    """Empirical top-1 frequencies match w_e / sum(w) on small n."""
    n, samples, skew = 4, 5000, 1.0
    utilities = plackett_luce_utilities(n, skew, kind="geometric")
    total_weight = sum(utilities.values())
    dataset = plackett_luce_dataset(
        samples, n, np.random.default_rng(314), skew=skew, skew_kind="geometric"
    )
    top1 = {element: 0 for element in range(n)}
    for ranking in dataset:
        top1[ranking.buckets[0][0]] += 1
    for element in range(n):
        expected = utilities[element] / total_weight
        observed = top1[element] / samples
        sigma = math.sqrt(expected * (1 - expected) / samples)
        assert abs(observed - expected) < 5 * sigma, (element, observed, expected)


def test_plackett_luce_utility_profiles():
    geometric = plackett_luce_utilities(5, 0.8, kind="geometric")
    zipf = plackett_luce_utilities(5, 1.2, kind="zipf")
    linear = plackett_luce_utilities(5, 0.5, kind="linear")
    for profile in (geometric, zipf, linear):
        values = [profile[i] for i in range(5)]
        assert values == sorted(values, reverse=True)
        assert all(v > 0 for v in values)
    # skew=0 degenerates to equal utilities for every profile.
    for kind in ("geometric", "zipf", "linear"):
        flat = set(plackett_luce_utilities(4, 0.0, kind=kind).values())
        assert flat == {1.0}
    with pytest.raises(ValueError, match="profile"):
        plackett_luce_utilities(4, 1.0, kind="cauchy")
    with pytest.raises(ValueError, match="skew"):
        plackett_luce_utilities(4, -1.0)
