"""Kill-restart churn harness tests: real SIGKILLs, real replay.

These tests fork actual worker processes and kill them with ``SIGKILL``
mid-stream — no mocking — so the durability invariant they pin is the
one production would rely on: an acknowledged write survives any process
death, and replay reconstructs the exact pre-kill state.
"""

from __future__ import annotations

import pytest

from repro.workloads import KillRestartProfile, run_kill_restart_churn


def test_profile_validates_kill_points():
    with pytest.raises(ValueError, match="increasing"):
        KillRestartProfile(kill_points=(10, 10))
    with pytest.raises(ValueError, match="below"):
        KillRestartProfile(num_mutations=20, kill_points=(5, 25))


def test_kill_restart_loses_no_acknowledged_write(tmp_path):
    profile = KillRestartProfile(
        num_mutations=24,
        kill_points=(7, 15),
        repair_every=5,
        budget_seconds=0.05,
        seed=41,
    )
    report = run_kill_restart_churn(profile, journal_dir=tmp_path / "wal")
    assert report["kills"] == 2
    assert report["completed"]
    assert report["zero_lost_acks"], report["rounds"]
    assert report["weights_match_rebuild"]
    assert report["fingerprint_match"]
    assert report["consensus_recovered"]
    assert report["final_generation"] == 24
    # Each restart resumed exactly at the recovered generation — the
    # stream was applied once, no loss and no double-apply.
    for entry in report["rounds"][1:]:
        assert entry["resumed_at"] >= 7
    for entry in report["rounds"]:
        assert entry["recovered_generation"] >= entry["acked"]


def test_harness_refuses_dirty_journal_dir(tmp_path):
    (tmp_path / "wal").mkdir()
    (tmp_path / "wal" / "junk").touch()
    with pytest.raises(ValueError, match="empty"):
        run_kill_restart_churn(
            KillRestartProfile(num_mutations=6, kill_points=()),
            journal_dir=tmp_path / "wal",
        )


def test_no_kill_points_runs_single_clean_round(tmp_path):
    profile = KillRestartProfile(
        num_mutations=8, kill_points=(), repair_every=4, budget_seconds=0.05
    )
    report = run_kill_restart_churn(profile, journal_dir=tmp_path / "wal")
    assert report["kills"] == 0
    assert len(report["rounds"]) == 1
    assert report["zero_lost_acks"]
    assert report["weights_match_rebuild"]
