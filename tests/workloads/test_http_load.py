"""HTTP load-generator determinism and shape tests.

The two determinism contracts of :mod:`repro.workloads.http_load`:

* **schedule replay** — building the schedule twice from one profile is
  byte-identical: same slots, same wire payloads, same fingerprint;
* **result replay** — driving the same schedule repeatedly against the
  same server yields identical per-request result fingerprints (answer
  content is a function of the request, never of cache temperature or
  timing).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import HttpAggregationServer
from repro.workloads import (
    HttpLoadProfile,
    build_http_schedule,
    drive_http_load,
)

PROFILE = HttpLoadProfile(
    scenarios=("mallows-ties-diffuse",),
    scale="smoke",
    num_requests=16,
    budget_seconds=0.05,
    concurrency=3,
    seed=424,
)


def test_seeded_schedule_replays_byte_identical():
    first = build_http_schedule(PROFILE)
    second = build_http_schedule(PROFILE)
    assert first.fingerprint() == second.fingerprint()
    assert len(first) == len(second) == PROFILE.num_requests
    for a, b in zip(first.requests, second.requests):
        assert a.position == b.position
        assert a.dataset_index == b.dataset_index
        assert a.offset_seconds == b.offset_seconds
        # Byte-identical wire payloads, not just equal objects.
        assert json.dumps(a.wire, sort_keys=True) == json.dumps(
            b.wire, sort_keys=True
        )
    # A different seed is a different schedule.
    other = build_http_schedule(
        HttpLoadProfile(**{**PROFILE.describe(), "seed": 425,
                           "scenarios": PROFILE.scenarios})
    )
    assert other.fingerprint() != first.fingerprint()


def test_open_loop_offsets_are_seeded_and_monotonic():
    profile = HttpLoadProfile(
        **{**PROFILE.describe(), "loop": "open", "rate": 100.0,
           "scenarios": PROFILE.scenarios}
    )
    first = build_http_schedule(profile)
    second = build_http_schedule(profile)
    assert first.fingerprint() == second.fingerprint()
    offsets = [slot.offset_seconds for slot in first.requests]
    assert offsets == sorted(offsets)
    assert all(offset > 0 for offset in offsets)
    # Mean inter-arrival gap tracks 1/rate (seeded, so exact per seed;
    # the loose band just guards against unit mistakes).
    mean_gap = offsets[-1] / len(offsets)
    assert 0.2 / profile.rate < mean_gap < 5.0 / profile.rate


def test_replays_against_same_server_state_fingerprint_identically(tmp_path):
    async def scenario():
        server = HttpAggregationServer(
            str(tmp_path / "cache"), shards=2, seed=11,
            default_budget_seconds=0.05,
        )
        await server.start()
        try:
            schedule = build_http_schedule(PROFILE)
            reports = [
                await drive_http_load(
                    schedule, host=server.host, port=server.port
                )
                for _ in range(3)
            ]
        finally:
            await server.drain()
        return reports

    reports = asyncio.run(scenario())
    for report in reports:
        assert report["failed"] == 0
        assert report["completed"] == PROFILE.num_requests
        assert report["latency_seconds"]["p99"] > 0.0
    # Identical per-request answers every run — even though the cache
    # tiers (and so the latency profile) differ between run 1 and run 3.
    baseline = reports[0]["result_fingerprints"]
    for report in reports[1:]:
        assert report["result_fingerprints"] == baseline
        assert report["results_fingerprint"] == reports[0]["results_fingerprint"]


def test_profile_validation():
    with pytest.raises(ValueError, match="loop"):
        HttpLoadProfile(loop="bursty")
    with pytest.raises(ValueError, match="concurrency"):
        HttpLoadProfile(concurrency=0)
    with pytest.raises(ValueError, match="rate"):
        HttpLoadProfile(rate=0.0)
