"""Regression tests: scenario cache keys can never alias across scenarios.

Two scenarios can produce datasets with *identical content* (hence identical
dataset fingerprints) — e.g. a degenerate parameterization, or a copied
builder.  Before the ``cache_context`` fix, their engine cache entries
collided: a result computed under scenario A was served to scenario B.
The matrix driver now namespaces every job's cache keys with the scenario
name and seed policy.
"""

from __future__ import annotations

from repro.algorithms import make_algorithm
from repro.core import Ranking
from repro.datasets import Dataset
from repro.engine import (
    BatchJob,
    ExecutionEngine,
    ResultCache,
    dataset_fingerprint,
    run_key,
)

_KEY_ARGS = dict(
    dataset_fingerprint="d" * 64,
    algorithm_name="BordaCount",
    parameters={"seed": 1},
    time_limit=None,
)


def test_run_key_without_context_matches_historical_address():
    assert run_key(**_KEY_ARGS) == run_key(**_KEY_ARGS, context=None)
    # An empty context is treated as "no context", not a distinct namespace.
    assert run_key(**_KEY_ARGS) == run_key(**_KEY_ARGS, context={})


def test_run_key_context_namespaces_the_address():
    plain = run_key(**_KEY_ARGS)
    scenario_a = run_key(**_KEY_ARGS, context={"scenario": "a", "seed_policy": "per-dataset"})
    scenario_b = run_key(**_KEY_ARGS, context={"scenario": "b", "seed_policy": "per-dataset"})
    policy_change = run_key(
        **_KEY_ARGS, context={"scenario": "a", "seed_policy": "shared-stream"}
    )
    assert len({plain, scenario_a, scenario_b, policy_change}) == 4


def _fixed_dataset(name: str) -> Dataset:
    rankings = [
        Ranking([["A"], ["D"], ["B", "C"]]),
        Ranking([["A"], ["B", "C"], ["D"]]),
        Ranking([["D"], ["A", "C"], ["B"]]),
    ]
    return Dataset(rankings, name=name)


def test_equal_fingerprint_datasets_do_not_alias_across_scenarios(tmp_path):
    """Same dataset content under two scenario contexts: no cache crosstalk."""
    dataset_a = _fixed_dataset("scenario_a_000")
    dataset_b = _fixed_dataset("scenario_b_000")
    assert dataset_fingerprint(dataset_a) == dataset_fingerprint(dataset_b)

    cache = ResultCache(tmp_path / "cache")
    suite = {"BordaCount": make_algorithm("BordaCount", seed=0)}

    job_a = BatchJob.from_algorithms(
        [dataset_a], suite, cache_context={"scenario": "a", "seed_policy": "per-dataset"}
    )
    engine = ExecutionEngine(cache=cache)
    report_a = engine.run(job_a)
    assert report_a.executed_runs == 1

    # Different scenario, identical content: must execute, not hit A's entry.
    job_b = BatchJob.from_algorithms(
        [dataset_b], suite, cache_context={"scenario": "b", "seed_policy": "per-dataset"}
    )
    report_b = engine.run(job_b)
    assert report_b.executed_runs == 1
    assert report_b.cached_runs == 0

    # Re-running either scenario is a within-scenario cache hit.
    rerun_a = engine.run(job_a)
    assert rerun_a.executed_runs == 0 and rerun_a.cached_runs == 1
    rerun_b = engine.run(job_b)
    assert rerun_b.executed_runs == 0 and rerun_b.cached_runs == 1
    assert len(cache) == 2


def test_context_free_jobs_still_share_cache_by_content(tmp_path):
    """Without a context, identical content keeps deduplicating (PR 1 behaviour)."""
    cache = ResultCache(tmp_path / "cache")
    suite = {"BordaCount": make_algorithm("BordaCount", seed=0)}
    engine = ExecutionEngine(cache=cache)
    first = engine.run(BatchJob.from_algorithms([_fixed_dataset("first")], suite))
    second = engine.run(BatchJob.from_algorithms([_fixed_dataset("renamed")], suite))
    assert first.executed_runs == 1
    assert second.executed_runs == 0 and second.cached_runs == 1
