"""Tests for the dense array kernel layer (repro.core.arrays)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DomainMismatchError,
    EmptyDatasetError,
    PairwiseWeights,
    Ranking,
    disagreement_counts,
    distances_to_stack,
    generalized_kendall_tau_distance_reference,
    pairwise_distance_matrix_reference,
    pairwise_distance_tensor,
    pairwise_order_counts,
    position_tensor,
)


def _random_rankings(m: int, n: int, seed: int) -> list[Ranking]:
    """Random rankings with ties over the same 0..n-1 domain."""
    rng = np.random.default_rng(seed)
    rankings = []
    for _ in range(m):
        positions = rng.integers(0, n, size=n)
        rankings.append(Ranking.from_positions(dict(enumerate(positions.tolist()))))
    return rankings


class TestDensePositions:
    def test_positions_follow_sorted_elements(self):
        ranking = Ranking([["B"], ["A", "C"], ["D"]])
        assert ranking.sorted_elements() == ("A", "B", "C", "D")
        assert ranking.dense_positions().tolist() == [1, 0, 1, 2]

    def test_cached_and_read_only(self):
        ranking = Ranking([["A"], ["B"]])
        first = ranking.dense_positions()
        assert ranking.dense_positions() is first  # cached, no re-encoding
        with pytest.raises(ValueError):
            first[0] = 5

    def test_same_domain_rankings_align(self):
        r = Ranking([["A", "B"], ["C"]])
        s = Ranking([["C"], ["B"], ["A"]])
        assert r.sorted_elements() == s.sorted_elements()

    def test_empty_ranking(self):
        ranking = Ranking([])
        assert ranking.sorted_elements() == ()
        assert ranking.dense_positions().shape == (0,)


class TestPositionTensor:
    def test_shape_and_values(self):
        r = Ranking([["A"], ["B", "C"]])
        s = Ranking([["C"], ["A", "B"]])
        elements, tensor = position_tensor([r, s])
        assert elements == ["A", "B", "C"]
        assert tensor.tolist() == [[0, 1, 1], [1, 1, 0]]

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            position_tensor([])

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            position_tensor([Ranking([["A"]]), Ranking([["B"]])])


class TestPairwiseOrderCounts:
    def test_matches_pairwise_weights(self):
        rankings = _random_rankings(9, 17, seed=3)
        weights = PairwiseWeights(rankings)
        _, tensor = position_tensor(rankings)
        before, tied = pairwise_order_counts(tensor)
        assert (before == weights.before_matrix).all()
        assert (tied == weights.tied_matrix).all()

    def test_chunking_is_invisible(self):
        rankings = _random_rankings(11, 13, seed=4)
        _, tensor = position_tensor(rankings)
        whole = pairwise_order_counts(tensor)
        chunked = pairwise_order_counts(tensor, block_cells=1)
        assert (whole[0] == chunked[0]).all()
        assert (whole[1] == chunked[1]).all()


class TestDisagreementCounts:
    def test_matches_reference_distance(self):
        rankings = _random_rankings(8, 15, seed=5)
        _, tensor = position_tensor(rankings)
        for i in range(4):
            for j in range(4, 8):
                inverted, tied_in_one = disagreement_counts(tensor[i], tensor[j])
                reference = generalized_kendall_tau_distance_reference(
                    rankings[i], rankings[j]
                )
                assert inverted + tied_in_one == reference

    def test_tiny_inputs(self):
        assert disagreement_counts(np.array([0]), np.array([0])) == (0, 0)
        assert disagreement_counts(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == (0, 0)


class TestPairwiseDistanceTensor:
    def test_matches_reference_matrix(self):
        rankings = _random_rankings(12, 21, seed=6)
        _, tensor = position_tensor(rankings)
        batched = pairwise_distance_tensor(tensor)
        reference = pairwise_distance_matrix_reference(rankings)
        assert (batched == reference).all()

    def test_chunking_is_invisible(self):
        rankings = _random_rankings(10, 9, seed=7)
        _, tensor = position_tensor(rankings)
        whole = pairwise_distance_tensor(tensor)
        chunked = pairwise_distance_tensor(tensor, block_cells=1)
        assert (whole == chunked).all()

    def test_degenerate_sizes(self):
        assert pairwise_distance_tensor(np.zeros((1, 5), dtype=np.int64)).shape == (1, 1)
        assert pairwise_distance_tensor(np.zeros((3, 1), dtype=np.int64)).sum() == 0


class TestDistancesToStack:
    def test_matches_matrix_row(self):
        rankings = _random_rankings(10, 14, seed=8)
        _, tensor = position_tensor(rankings)
        reference = pairwise_distance_matrix_reference(rankings)
        for row in (0, 3, 9):
            distances = distances_to_stack(tensor[row], tensor, block_cells=100)
            assert (distances == reference[row]).all()
