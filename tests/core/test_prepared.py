"""PreparedDataset plan layer: construction, memoization, worker cache, pickling."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import (
    PairwiseWeights,
    PreparedDataset,
    Ranking,
    cached_plan,
    clear_plan_cache,
    plan_build_count,
    prepare_rankings,
    rankings_fingerprint,
    store_plan,
)
from repro.core.exceptions import DomainMismatchError, EmptyDatasetError
from repro.datasets import Dataset
from repro.engine.fingerprint import dataset_fingerprint
from repro.generators.uniform import uniform_dataset


@pytest.fixture(autouse=True)
def _fresh_worker_cache():
    # Every test module shares the process-wide worker cache; the fixture
    # datasets here have identical content across tests, so isolate them.
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture()
def dataset() -> Dataset:
    return uniform_dataset(5, 12, rng=7, name="prepared-fixture")


class TestPreparedDataset:
    def test_bundle_contents(self, dataset):
        plan = dataset.prepared()
        assert isinstance(plan, PreparedDataset)
        assert plan.num_rankings == 5
        assert plan.num_elements == 12
        assert isinstance(plan.weights, PairwiseWeights)
        assert plan.positions.shape == (5, 12)
        assert plan.elements == plan.weights.elements
        assert plan.prepare_seconds >= 0.0

    def test_positions_are_read_only(self, dataset):
        plan = dataset.prepared()
        with pytest.raises(ValueError):
            plan.positions[0, 0] = 99

    def test_positions_match_weights_counts(self, dataset):
        plan = dataset.prepared()
        rebuilt = PairwiseWeights(list(dataset.rankings))
        assert (plan.weights.before_matrix == rebuilt.before_matrix).all()
        assert (plan.weights.tied_matrix == rebuilt.tied_matrix).all()
        assert (plan.positions == rebuilt.positions).all()

    def test_score_matches_weights_scoring(self, dataset):
        from repro.core import generalized_kemeny_score

        plan = dataset.prepared()
        candidate = dataset.rankings[0]
        assert plan.score(candidate) == generalized_kemeny_score(
            candidate, list(dataset.rankings)
        )

    def test_matches_guards_foreign_plans(self, dataset):
        plan = dataset.prepared()
        assert plan.matches(list(dataset.rankings))
        other = uniform_dataset(5, 10, rng=8, name="other")
        assert not plan.matches(list(other.rankings))
        assert not plan.matches(list(dataset.rankings)[:-1])

    def test_matches_rejects_same_shape_same_domain_sibling(self, dataset):
        plan = dataset.prepared()
        # Same m, same n, same {0..n-1} domain — different content.
        sibling = uniform_dataset(5, 12, rng=99, name="sibling")
        assert sibling.num_rankings == dataset.num_rankings
        assert sibling.universe() == dataset.universe()
        assert not plan.matches(list(sibling.rankings))

    def test_matches_accepts_equal_rebuilt_rankings(self, dataset):
        plan = dataset.prepared()
        rebuilt = [Ranking(r.buckets) for r in dataset.rankings]
        assert all(a is not b for a, b in zip(rebuilt, dataset.rankings))
        assert plan.matches(rebuilt)


class TestFingerprints:
    def test_fingerprint_matches_engine_digest(self, dataset):
        plan = dataset.prepared()
        assert plan.fingerprint == dataset_fingerprint(dataset)
        assert plan.fingerprint == rankings_fingerprint(dataset.rankings)

    def test_fingerprint_ignores_name_and_metadata(self, dataset):
        renamed = Dataset(dataset.rankings, name="elsewhere", metadata={"x": 1})
        assert renamed.content_fingerprint() == dataset.content_fingerprint()

    def test_fingerprint_tracks_content(self, dataset):
        shorter = dataset.with_rankings(dataset.rankings[:-1])
        assert shorter.content_fingerprint() != dataset.content_fingerprint()

    def test_fingerprint_memoized_on_instance(self, dataset):
        assert dataset.content_fingerprint() is dataset.content_fingerprint()


class TestMemoization:
    def test_plan_built_once_per_instance(self, dataset):
        before = plan_build_count()
        first = dataset.prepared()
        assert dataset.prepared() is first
        assert dataset.pairwise_weights() is first.weights
        assert plan_build_count() == before + 1

    def test_pairwise_weights_memoized(self, dataset):
        assert dataset.pairwise_weights() is dataset.pairwise_weights()

    def test_incomplete_dataset_raises(self):
        incomplete = Dataset(
            [Ranking([["A"], ["B"]]), Ranking([["A"], ["C"]])], name="incomplete"
        )
        with pytest.raises(DomainMismatchError):
            incomplete.prepared()

    def test_empty_dataset_raises(self):
        with pytest.raises(EmptyDatasetError):
            Dataset([], name="empty").prepared()


class TestWorkerCache:
    def test_identical_content_shares_plan_across_instances(self, dataset):
        clear_plan_cache()
        try:
            plan = dataset.prepared()
            clone = Dataset(dataset.rankings, name="clone")
            before = plan_build_count()
            assert clone.prepared() is plan
            assert plan_build_count() == before
        finally:
            clear_plan_cache()

    def test_store_and_lookup(self, dataset):
        clear_plan_cache()
        try:
            assert cached_plan("missing") is None
            plan = prepare_rankings(dataset.rankings)
            store_plan("key", plan)
            assert cached_plan("key") is plan
        finally:
            clear_plan_cache()

    def test_cache_is_lru_bounded(self):
        from repro.core.prepared import _plan_cache
        from repro.core import plan_cache_limit

        clear_plan_cache()
        try:
            plans = [
                prepare_rankings(uniform_dataset(2, 4, rng=seed).rankings)
                for seed in range(plan_cache_limit() + 3)
            ]
            for index, plan in enumerate(plans):
                store_plan(f"key{index}", plan)
            assert len(_plan_cache) == plan_cache_limit()
            assert cached_plan("key0") is None  # oldest evicted
            assert cached_plan(f"key{len(plans) - 1}") is plans[-1]
        finally:
            clear_plan_cache()


class TestPickling:
    def test_plan_is_not_pickled_with_dataset(self, dataset):
        dataset.prepared()
        clone = pickle.loads(pickle.dumps(dataset))
        assert "_plan" not in clone.__dict__
        assert clone.rankings == dataset.rankings

    def test_fingerprint_survives_pickling(self, dataset):
        fingerprint = dataset.content_fingerprint()
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone.__dict__.get("_content_fingerprint") == fingerprint

    def test_unpickled_dataset_reprepares_identically(self, dataset):
        plan = dataset.prepared()
        clear_plan_cache()
        try:
            clone = pickle.loads(pickle.dumps(dataset))
            replanned = clone.prepared()
            assert replanned is not plan
            assert (replanned.positions == plan.positions).all()
            assert (
                replanned.weights.before_matrix == plan.weights.before_matrix
            ).all()
        finally:
            clear_plan_cache()


class TestPositionalCounts:
    def test_counts_against_bucket_walk(self):
        from repro.core import positional_counts

        rng = np.random.default_rng(3)
        rankings = []
        for _ in range(6):
            buckets = rng.integers(0, 4, size=9)
            rankings.append(Ranking.from_positions(dict(enumerate(buckets.tolist()))))
        weights = PairwiseWeights(rankings)
        before_counts, bucket_sizes = positional_counts(weights.positions)
        for row, ranking in enumerate(rankings):
            for col, element in enumerate(weights.elements):
                bucket_index = ranking.position_of(element)
                expected_before = sum(
                    len(b) for b in ranking.buckets[:bucket_index]
                )
                assert before_counts[row, col] == expected_before
                assert bucket_sizes[row, col] == len(ranking.buckets[bucket_index])
