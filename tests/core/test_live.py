"""Property suite for LiveDataset: delta maintenance == from-scratch rebuild."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BioConsert, BordaCount
from repro.algorithms.anytime import run_anytime
from repro.core import (
    DomainMismatchError,
    EmptyDatasetError,
    LiveDataset,
    Ranking,
    prepare_rankings,
    rankings_fingerprint,
)
from repro.datasets import Dataset
from repro.engine import dataset_fingerprint

ELEMENTS = ["A", "B", "C", "D", "E", "F"]


@st.composite
def rankings_with_ties(draw, elements=tuple(ELEMENTS)):
    """A random bucket order over the fixed element domain."""
    order = draw(st.permutations(list(elements)))
    if len(order) > 1:
        cuts = draw(st.sets(st.integers(1, len(order) - 1)))
    else:
        cuts = set()
    boundaries = [0, *sorted(cuts), len(order)]
    buckets = [
        order[start:stop]
        for start, stop in zip(boundaries, boundaries[1:])
        if stop > start
    ]
    return Ranking(buckets)


# One mutation as data: the kind, a position selector (reduced modulo the
# current size at application time) and a fresh ranking for add/update.
mutations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "update"]),
        st.integers(0, 63),
        rankings_with_ties(),
    ),
    min_size=0,
    max_size=12,
)


def apply_mutations(live: LiveDataset, steps) -> int:
    """Replay a drawn mutation sequence; returns how many were applied."""
    applied = 0
    for kind, position, ranking in steps:
        if kind == "add":
            live.add_ranking(ranking, index=position % (len(live) + 1))
        elif kind == "remove":
            if len(live) == 1:
                continue
            live.remove_ranking(position % len(live))
        else:
            live.update_ranking(position % len(live), ranking)
        applied += 1
    return applied


class TestDeltaEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        initial=st.lists(rankings_with_ties(), min_size=1, max_size=5),
        steps=mutations,
    )
    def test_weights_byte_identical_to_rebuild(self, initial, steps):
        """After any mutation sequence the maintained state equals a fresh
        O(m·n²) preparation bit for bit."""
        live = LiveDataset(initial)
        apply_mutations(live, steps)
        fresh = prepare_rankings(list(live.rankings))
        maintained = live.prepared()
        assert np.array_equal(maintained.weights.before_matrix, fresh.weights.before_matrix)
        assert np.array_equal(maintained.weights.tied_matrix, fresh.weights.tied_matrix)
        assert np.array_equal(maintained.positions, fresh.positions)
        assert maintained.elements == fresh.elements
        # Derived cost carriers (memoized lazily) agree as well.
        assert np.array_equal(maintained.weights.cost_before(), fresh.weights.cost_before())
        assert np.array_equal(maintained.weights.cost_tied(), fresh.weights.cost_tied())
        live_flat = maintained.weights.flat_cost_vectors()
        fresh_flat = fresh.weights.flat_cost_vectors()
        assert live_flat[0].dtype == fresh_flat[0].dtype
        assert np.array_equal(live_flat[0], fresh_flat[0])
        assert np.array_equal(live_flat[1], fresh_flat[1])

    @settings(max_examples=60, deadline=None)
    @given(
        initial=st.lists(rankings_with_ties(), min_size=1, max_size=5),
        steps=mutations,
    )
    def test_fingerprint_coherent_across_mutations(self, initial, steps):
        live = LiveDataset(initial)
        applied = apply_mutations(live, steps)
        assert live.generation == applied
        assert live.content_fingerprint() == rankings_fingerprint(live.rankings)
        snapshot = live.snapshot()
        assert snapshot.content_fingerprint() == live.content_fingerprint()
        assert dataset_fingerprint(snapshot) == live.content_fingerprint()
        assert snapshot.metadata["generation"] == live.generation

    @settings(max_examples=25, deadline=None)
    @given(
        initial=st.lists(rankings_with_ties(), min_size=1, max_size=4),
        steps=mutations,
        extra=rankings_with_ties(),
    )
    def test_snapshot_isolation(self, initial, steps, extra):
        """A snapshot is frozen: later mutations never touch its arrays."""
        live = LiveDataset(initial)
        apply_mutations(live, steps)
        snapshot = live.snapshot()
        before = snapshot.prepared().weights.before_matrix.copy()
        tied = snapshot.prepared().weights.tied_matrix.copy()
        fingerprint = snapshot.content_fingerprint()
        live.add_ranking(extra)
        live.update_ranking(0, extra)
        assert np.array_equal(snapshot.prepared().weights.before_matrix, before)
        assert np.array_equal(snapshot.prepared().weights.tied_matrix, tied)
        assert snapshot.content_fingerprint() == fingerprint
        # And the new generation is a distinct dataset object.
        assert live.snapshot() is not snapshot


class TestWarmStartEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        initial=st.lists(rankings_with_ties(), min_size=2, max_size=4),
        steps=mutations,
    )
    def test_trajectories_match_fresh_preparation(self, initial, steps):
        """Warm-started anytime runs over a live snapshot reproduce the runs
        over an independently prepared dataset, on both kernels."""
        live = LiveDataset(initial)
        apply_mutations(live, steps)
        previous = BordaCount().aggregate(live.snapshot()).consensus
        fresh = Dataset(live.rankings, name="fresh")
        for kernel in ("arrays", "reference"):
            algorithm = BioConsert(kernel=kernel)
            from_live = run_anytime(algorithm, live.snapshot(), None, initial=previous)
            from_fresh = run_anytime(algorithm, fresh, None, initial=previous)
            assert from_live.consensus == from_fresh.consensus
            assert from_live.score == from_fresh.score
            assert from_live.details["steps"] == from_fresh.details["steps"]
            assert from_live.details["warm_start"] is True


class TestMutationContract:
    def test_requires_initial_ranking(self):
        with pytest.raises(EmptyDatasetError):
            LiveDataset([])

    def test_cannot_remove_last(self):
        live = LiveDataset([Ranking([["A"], ["B"]])], name="tiny")
        with pytest.raises(EmptyDatasetError):
            live.remove_ranking(0)
        assert live.generation == 0

    def test_domain_mismatch_rejected_without_state_change(self):
        live = LiveDataset([Ranking([["A"], ["B"]])])
        fingerprint = live.content_fingerprint()
        with pytest.raises(DomainMismatchError):
            live.add_ranking(Ranking([["A"], ["C"]]))
        with pytest.raises(DomainMismatchError):
            live.update_ranking(0, Ranking([["X"], ["B"]]))
        assert live.generation == 0
        assert live.content_fingerprint() == fingerprint

    def test_update_returns_previous_and_add_respects_index(self):
        first = Ranking([["A"], ["B"]])
        second = Ranking([["B"], ["A"]])
        third = Ranking([["A", "B"]])
        live = LiveDataset([first])
        assert live.add_ranking(second, index=0) == 0
        assert live.rankings == (second, first)
        assert live.update_ranking(1, third) == first
        assert live.rankings == (second, third)
        removed = live.remove_ranking(0)
        assert removed == second
        assert live.rankings == (third,)
        assert live.generation == 3

    def test_sequence_protocol(self):
        first = Ranking([["A"], ["B"]])
        second = Ranking([["B"], ["A"]])
        live = LiveDataset([first, second], name="seq")
        assert len(live) == 2
        assert list(live) == [first, second]
        assert live[1] == second
        assert live.num_elements == 2
        assert live.elements == ["A", "B"]
        assert "seq" in repr(live)

    def test_snapshot_memoized_per_generation(self):
        live = LiveDataset([Ranking([["A"], ["B"]]), Ranking([["B"], ["A"]])])
        snapshot = live.snapshot()
        assert live.snapshot() is snapshot
        live.update_ranking(0, Ranking([["A", "B"]]))
        assert live.snapshot() is not snapshot

    def test_last_delta_seconds_updates(self):
        live = LiveDataset([Ranking([["A"], ["B"]])])
        assert live.last_delta_seconds == 0.0
        live.add_ranking(Ranking([["B"], ["A"]]))
        assert live.last_delta_seconds > 0.0


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_snapshot_scores_identical_across_backends(self, backend, tmp_path):
        """A live snapshot behaves like any dataset on every backend."""
        from repro.engine import ExecutionEngine, make_backend
        from repro.evaluation import evaluate_algorithms

        live = LiveDataset(
            [
                Ranking([["A"], ["B", "C"], ["D"], ["E"], ["F"]]),
                Ranking([["B"], ["A"], ["D", "C"], ["F"], ["E"]]),
                Ranking([["C"], ["B"], ["A"], ["E"], ["D"], ["F"]]),
            ],
            name="backend-eq",
        )
        live.update_ranking(0, Ranking([["D"], ["A", "B"], ["C"], ["F"], ["E"]]))
        live.add_ranking(Ranking([["F"], ["E"], ["D"], ["C"], ["B"], ["A"]]))
        report = evaluate_algorithms(
            [live.snapshot()],
            {"BordaCount": BordaCount(), "BioConsert": BioConsert()},
            engine=ExecutionEngine(backend=make_backend(backend, workers=2)),
        )
        scores = {
            (run.dataset, run.algorithm): run.score for run in report.runs
        }
        fresh = prepare_rankings(list(live.rankings))
        for algorithm in (BordaCount(), BioConsert()):
            result = algorithm.aggregate(Dataset(live.rankings, name="backend-eq"))
            assert scores[("backend-eq", algorithm.name)] == result.score
            assert fresh.score(result.consensus) == result.score
