"""Tests for the Kendall-τ and generalized Kendall-τ distances."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DomainMismatchError,
    Ranking,
    generalized_kendall_tau_distance,
    generalized_kendall_tau_distance_reference,
    kendall_tau_distance,
    pairwise_distance_matrix,
    spearman_footrule_distance,
    weighted_generalized_kendall_tau_distance,
)


class TestKendallTau:
    def test_identical_permutations(self):
        pi = Ranking.from_permutation(["A", "B", "C"])
        assert kendall_tau_distance(pi, pi) == 0

    def test_reversed_permutations(self):
        pi = Ranking.from_permutation(["A", "B", "C", "D"])
        sigma = Ranking.from_permutation(["D", "C", "B", "A"])
        assert kendall_tau_distance(pi, sigma) == 6  # all pairs inverted

    def test_single_swap(self):
        pi = Ranking.from_permutation(["A", "B", "C"])
        sigma = Ranking.from_permutation(["B", "A", "C"])
        assert kendall_tau_distance(pi, sigma) == 1

    def test_paper_permutation_example(self, permutation_example_rankings):
        """Section 2.1: S(pi*, P) = 4 for pi* = [A, D, C, B]."""
        optimal = Ranking.from_permutation(["A", "D", "C", "B"])
        total = sum(
            kendall_tau_distance(optimal, pi) for pi in permutation_example_rankings
        )
        assert total == 4

    def test_rejects_ties(self):
        tied = Ranking([["A", "B"], ["C"]])
        permutation = Ranking.from_permutation(["A", "B", "C"])
        with pytest.raises(ValueError):
            kendall_tau_distance(tied, permutation)

    def test_domain_mismatch(self):
        with pytest.raises(DomainMismatchError):
            kendall_tau_distance(
                Ranking.from_permutation(["A", "B"]),
                Ranking.from_permutation(["A", "C"]),
            )


class TestGeneralizedKendallTau:
    def test_identical_rankings(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert generalized_kendall_tau_distance(ranking, ranking) == 0

    def test_matches_kendall_tau_on_permutations(self):
        pi = Ranking.from_permutation(["A", "B", "C", "D"])
        sigma = Ranking.from_permutation(["B", "D", "A", "C"])
        assert generalized_kendall_tau_distance(pi, sigma) == kendall_tau_distance(pi, sigma)

    def test_tie_in_one_ranking_costs_one(self):
        r = Ranking([["A", "B"]])
        s = Ranking([["A"], ["B"]])
        assert generalized_kendall_tau_distance(r, s) == 1

    def test_inversion_costs_one(self):
        r = Ranking([["A"], ["B"]])
        s = Ranking([["B"], ["A"]])
        assert generalized_kendall_tau_distance(r, s) == 1

    def test_paper_example_score_components(self, paper_example_rankings, paper_example_optimal):
        """Section 2.2: the distances from r* to r1, r2, r3 sum to 5."""
        distances = [
            generalized_kendall_tau_distance(paper_example_optimal, ranking)
            for ranking in paper_example_rankings
        ]
        assert sum(distances) == 5
        assert distances[0] == 0  # r* equals r1

    def test_symmetry_small_example(self):
        r = Ranking([["A", "B"], ["C"]])
        s = Ranking([["C"], ["A"], ["B"]])
        assert generalized_kendall_tau_distance(r, s) == generalized_kendall_tau_distance(s, r)

    def test_single_element(self):
        r = Ranking([["A"]])
        assert generalized_kendall_tau_distance(r, r) == 0

    def test_domain_mismatch(self):
        with pytest.raises(DomainMismatchError):
            generalized_kendall_tau_distance(Ranking([["A"]]), Ranking([["B"]]))

    def test_all_tied_versus_permutation(self):
        tied = Ranking([["A", "B", "C", "D"]])
        permutation = Ranking.from_permutation(["A", "B", "C", "D"])
        # Every pair is tied in one ranking only: 6 disagreements.
        assert generalized_kendall_tau_distance(tied, permutation) == 6


class TestWeightedGeneralizedKendallTau:
    def test_unit_cost_matches_default(self):
        r = Ranking([["A", "B"], ["C"]])
        s = Ranking([["C"], ["A"], ["B"]])
        assert weighted_generalized_kendall_tau_distance(r, s, tie_cost=1.0) == (
            generalized_kendall_tau_distance(r, s)
        )

    def test_half_cost_for_ties(self):
        r = Ranking([["A", "B"]])
        s = Ranking([["A"], ["B"]])
        assert weighted_generalized_kendall_tau_distance(r, s, tie_cost=0.5) == 0.5

    def test_zero_tie_cost_counts_only_inversions(self):
        r = Ranking([["A", "B"], ["C"]])
        s = Ranking([["C"], ["A", "B"]])
        assert weighted_generalized_kendall_tau_distance(r, s, tie_cost=0.0) == 2.0

    def test_negative_cost_rejected(self):
        r = Ranking([["A"]])
        with pytest.raises(ValueError):
            weighted_generalized_kendall_tau_distance(r, r, tie_cost=-1.0)


class TestSpearmanFootrule:
    def test_identical(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert spearman_footrule_distance(ranking, ranking) == 0.0

    def test_simple_swap(self):
        r = Ranking.from_permutation(["A", "B"])
        s = Ranking.from_permutation(["B", "A"])
        assert spearman_footrule_distance(r, s) == 2.0

    def test_within_constant_of_kendall(self):
        """Diaconis-Graham: D <= footrule <= 2 D for permutations."""
        r = Ranking.from_permutation(["A", "B", "C", "D", "E"])
        s = Ranking.from_permutation(["C", "A", "E", "B", "D"])
        kendall = kendall_tau_distance(r, s)
        footrule = spearman_footrule_distance(r, s)
        assert kendall <= footrule <= 2 * kendall


class TestPairwiseDistanceMatrix:
    def test_matrix_shape_and_symmetry(self, paper_example_rankings):
        matrix = pairwise_distance_matrix(paper_example_rankings)
        assert matrix.shape == (3, 3)
        assert (matrix == matrix.T).all()
        assert (matrix.diagonal() == 0).all()

    def test_matrix_values(self, paper_example_rankings):
        matrix = pairwise_distance_matrix(paper_example_rankings)
        r1, r2, r3 = paper_example_rankings
        assert matrix[0, 1] == generalized_kendall_tau_distance(r1, r2)
        assert matrix[1, 2] == generalized_kendall_tau_distance(r2, r3)


# --------------------------------------------------------------------------- #
# Property-based tests: the vectorised implementation must match the
# reference implementation, and G must behave like a metric.
# --------------------------------------------------------------------------- #
@st.composite
def ranking_pair(draw, max_elements: int = 7):
    n = draw(st.integers(min_value=1, max_value=max_elements))
    elements = list(range(n))

    def draw_ranking():
        positions = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n
            )
        )
        return Ranking.from_positions(dict(zip(elements, positions)))

    return draw_ranking(), draw_ranking()


@given(ranking_pair())
@settings(max_examples=150)
def test_vectorized_matches_reference(pair):
    r, s = pair
    assert generalized_kendall_tau_distance(r, s) == (
        generalized_kendall_tau_distance_reference(r, s)
    )


@given(ranking_pair())
def test_generalized_distance_symmetry(pair):
    r, s = pair
    assert generalized_kendall_tau_distance(r, s) == generalized_kendall_tau_distance(s, r)


@given(ranking_pair())
def test_generalized_distance_identity(pair):
    r, _ = pair
    assert generalized_kendall_tau_distance(r, r) == 0


@given(ranking_pair())
def test_generalized_distance_bounded_by_pair_count(pair):
    r, s = pair
    n = len(r)
    assert 0 <= generalized_kendall_tau_distance(r, s) <= n * (n - 1) // 2


@st.composite
def ranking_triple(draw, max_elements: int = 6):
    n = draw(st.integers(min_value=1, max_value=max_elements))
    elements = list(range(n))

    def draw_ranking():
        positions = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n
            )
        )
        return Ranking.from_positions(dict(zip(elements, positions)))

    return draw_ranking(), draw_ranking(), draw_ranking()


@given(ranking_triple())
@settings(max_examples=100)
def test_generalized_distance_triangle_inequality(triple):
    r, s, t = triple
    d_rs = generalized_kendall_tau_distance(r, s)
    d_st = generalized_kendall_tau_distance(s, t)
    d_rt = generalized_kendall_tau_distance(r, t)
    assert d_rt <= d_rs + d_st
