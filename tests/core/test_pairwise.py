"""Tests for the pairwise weight matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DomainMismatchError,
    EmptyDatasetError,
    PairwiseWeights,
    Ranking,
)


class TestPairwiseWeightsConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            PairwiseWeights([])

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            PairwiseWeights([Ranking([["A"]]), Ranking([["B"]])])

    def test_basic_counts(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        assert weights.num_rankings == 3
        assert weights.num_elements == 4
        # A is before D in r1 and r2, after D in r3.
        assert weights.weight_before("A", "D") == 2
        assert weights.weight_before("D", "A") == 1
        assert weights.weight_tied("A", "D") == 0
        # B and C are tied in r1 and r2, B after C in r3.
        assert weights.weight_tied("B", "C") == 2
        assert weights.weight_before("C", "B") == 1
        assert weights.weight_before("B", "C") == 0

    def test_matrices_partition_the_rankings(self, paper_example_rankings):
        """For every pair, before + after + tied = number of rankings."""
        weights = PairwiseWeights(paper_example_rankings)
        total = weights.before_matrix + weights.before_matrix.T + weights.tied_matrix
        n = weights.num_elements
        off_diagonal = ~np.eye(n, dtype=bool)
        assert (total[off_diagonal] == weights.num_rankings).all()

    def test_tied_matrix_symmetric_zero_diagonal(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        assert (weights.tied_matrix == weights.tied_matrix.T).all()
        assert (weights.tied_matrix.diagonal() == 0).all()


class TestDerivedQuantities:
    def test_before_or_tied(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        i = weights.index_of["B"]
        j = weights.index_of["C"]
        assert weights.before_or_tied_matrix[i, j] == (
            weights.weight_before("B", "C") + weights.weight_tied("B", "C")
        )

    def test_after_matrix_is_transpose(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        assert (weights.after_matrix == weights.before_matrix.T).all()

    def test_pair_cost_before(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        # Placing A before D disagrees with r3 only (D before A there).
        assert weights.pair_cost("A", "D", "before") == 1
        assert weights.pair_cost("A", "D", "after") == 2
        assert weights.pair_cost("A", "D", "tied") == 3

    def test_pair_cost_tied_pair(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        # Tying B and C disagrees with r3 only.
        assert weights.pair_cost("B", "C", "tied") == 1
        # Placing B before C disagrees with the two rankings tying them and
        # with r3 which puts C first.
        assert weights.pair_cost("B", "C", "before") == 3

    def test_pair_cost_unknown_relation(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        with pytest.raises(ValueError):
            weights.pair_cost("A", "B", "sideways")

    def test_majority_prefers(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        assert weights.majority_prefers("A", "D")
        assert not weights.majority_prefers("D", "A")
        assert not weights.majority_prefers("B", "C")  # 0 vs 1, no majority for B

    def test_cost_matrices_match_pair_cost(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        cost_before = weights.cost_before()
        cost_tied = weights.cost_tied()
        for a in weights.elements:
            for b in weights.elements:
                if a == b:
                    continue
                i, j = weights.index_of[a], weights.index_of[b]
                assert cost_before[i, j] == weights.pair_cost(a, b, "before")
                assert cost_tied[i, j] == weights.pair_cost(a, b, "tied")


@st.composite
def random_complete_dataset(draw, max_elements: int = 6, max_rankings: int = 5):
    n = draw(st.integers(min_value=2, max_value=max_elements))
    m = draw(st.integers(min_value=1, max_value=max_rankings))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


@given(random_complete_dataset())
@settings(max_examples=80)
def test_counts_partition_rankings_property(rankings):
    weights = PairwiseWeights(rankings)
    n = weights.num_elements
    total = weights.before_matrix + weights.before_matrix.T + weights.tied_matrix
    off_diagonal = ~np.eye(n, dtype=bool)
    assert (total[off_diagonal] == len(rankings)).all()


@given(random_complete_dataset())
@settings(max_examples=80)
def test_pair_cost_relations_sum(rankings):
    """before-cost + after-cost + tied-cost counts each ranking exactly twice."""
    weights = PairwiseWeights(rankings)
    elements = weights.elements
    for a in elements[:3]:
        for b in elements[:3]:
            if a == b:
                continue
            total = (
                weights.pair_cost(a, b, "before")
                + weights.pair_cost(a, b, "after")
                + weights.pair_cost(a, b, "tied")
            )
            assert total == 2 * len(rankings)
