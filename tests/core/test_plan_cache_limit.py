"""Regression tests: the worker-local plan cache stays bounded."""

from __future__ import annotations

import pytest

from repro.core import (
    Ranking,
    cached_plan,
    clear_plan_cache,
    plan_cache_limit,
    prepare_rankings,
    rankings_fingerprint,
    set_plan_cache_limit,
    store_plan,
)
from repro.core.prepared import _DEFAULT_PLAN_CACHE_MAX, _plan_cache
from repro.telemetry import Telemetry
from repro.telemetry import runtime as telemetry_runtime


def _plan_for(seed: int):
    rankings = [Ranking([[f"e{seed}"], [f"f{seed}"]])]
    fingerprint = rankings_fingerprint(rankings)
    return fingerprint, prepare_rankings(rankings, fingerprint=fingerprint)


@pytest.fixture(autouse=True)
def _restore_cache_state():
    clear_plan_cache()
    previous = plan_cache_limit()
    yield
    set_plan_cache_limit(previous)
    clear_plan_cache()


class TestPlanCacheBound:
    def test_default_limit(self):
        assert plan_cache_limit() == _DEFAULT_PLAN_CACHE_MAX

    def test_lru_eviction_under_churn(self):
        set_plan_cache_limit(3)
        fingerprints = []
        for seed in range(6):
            fingerprint, plan = _plan_for(seed)
            fingerprints.append(fingerprint)
            store_plan(fingerprint, plan)
        assert len(_plan_cache) == 3
        # Oldest entries evicted, newest kept.
        assert all(cached_plan(fp) is None for fp in fingerprints[:3])
        assert all(cached_plan(fp) is not None for fp in fingerprints[3:])

    def test_lookup_refreshes_recency(self):
        set_plan_cache_limit(2)
        fp_a, plan_a = _plan_for(1)
        fp_b, plan_b = _plan_for(2)
        fp_c, plan_c = _plan_for(3)
        store_plan(fp_a, plan_a)
        store_plan(fp_b, plan_b)
        assert cached_plan(fp_a) is plan_a  # refresh A
        store_plan(fp_c, plan_c)            # evicts B, not A
        assert cached_plan(fp_a) is plan_a
        assert cached_plan(fp_b) is None

    def test_shrinking_limit_evicts_immediately(self):
        set_plan_cache_limit(4)
        for seed in range(4):
            store_plan(*_plan_for(seed))
        assert len(_plan_cache) == 4
        set_plan_cache_limit(1)
        assert len(_plan_cache) == 1

    def test_set_limit_returns_previous_and_validates(self):
        previous = set_plan_cache_limit(5)
        assert plan_cache_limit() == 5
        assert set_plan_cache_limit(None) == 5
        assert plan_cache_limit() == _DEFAULT_PLAN_CACHE_MAX
        with pytest.raises(ValueError, match=">= 1"):
            set_plan_cache_limit(0)
        set_plan_cache_limit(previous)

    def test_eviction_ticks_telemetry_counter(self):
        set_plan_cache_limit(1)
        telemetry = Telemetry()
        with telemetry_runtime.session(telemetry):
            for seed in range(3):
                store_plan(*_plan_for(seed))
        assert telemetry.metrics.counter("plan_cache.evict").value() == 2.0

    def test_no_telemetry_overhead_when_disabled(self):
        set_plan_cache_limit(1)
        for seed in range(3):
            store_plan(*_plan_for(seed))  # must not raise without a session
        assert len(_plan_cache) == 1
