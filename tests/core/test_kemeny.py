"""Tests for the Kemeny and generalized Kemeny scores."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PairwiseWeights,
    Ranking,
    generalized_kemeny_score,
    generalized_kemeny_score_from_weights,
    kemeny_score,
    score_of_single_bucket,
    trivial_upper_bound,
)


class TestKemenyScore:
    def test_paper_permutation_example(self, permutation_example_rankings):
        """Section 2.1: the optimal permutation consensus has score 4."""
        optimal = Ranking.from_permutation(["A", "D", "C", "B"])
        assert kemeny_score(optimal, permutation_example_rankings) == 4

    def test_score_of_input_ranking(self, permutation_example_rankings):
        first = permutation_example_rankings[0]
        score = kemeny_score(first, permutation_example_rankings)
        assert score >= 4  # cannot beat the optimum

    def test_empty_set(self):
        assert kemeny_score(Ranking.from_permutation(["A"]), []) == 0


class TestGeneralizedKemenyScore:
    def test_paper_ties_example(self, paper_example_rankings, paper_example_optimal):
        """Section 2.2: K(r*, R) = 5."""
        assert generalized_kemeny_score(paper_example_optimal, paper_example_rankings) == 5

    def test_score_against_self(self, paper_example_rankings):
        r1 = paper_example_rankings[0]
        assert generalized_kemeny_score(r1, [r1, r1]) == 0

    def test_from_weights_matches_direct(self, paper_example_rankings, paper_example_optimal):
        weights = PairwiseWeights(paper_example_rankings)
        direct = generalized_kemeny_score(paper_example_optimal, paper_example_rankings)
        from_weights = generalized_kemeny_score_from_weights(paper_example_optimal, weights)
        assert direct == from_weights == 5

    def test_single_element_dataset(self):
        ranking = Ranking([["A"]])
        weights = PairwiseWeights([ranking])
        assert generalized_kemeny_score_from_weights(ranking, weights) == 0


class TestSingleBucketScore:
    def test_all_tied_consensus_cost(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        all_tied = Ranking.single_bucket(weights.elements)
        assert score_of_single_bucket(weights) == generalized_kemeny_score(
            all_tied, paper_example_rankings
        )

    def test_single_bucket_not_better_than_optimum(self, paper_example_rankings):
        """Section 2.2 motivation: with the *generalized* distance the
        everything-tied consensus is not a free lunch."""
        weights = PairwiseWeights(paper_example_rankings)
        assert score_of_single_bucket(weights) >= 5


class TestTrivialUpperBound:
    def test_bound_is_a_valid_input_score(self, paper_example_rankings):
        bound = trivial_upper_bound(paper_example_rankings)
        scores = [
            generalized_kemeny_score(candidate, paper_example_rankings)
            for candidate in paper_example_rankings
        ]
        assert bound == min(scores)

    def test_bound_empty(self):
        assert trivial_upper_bound([]) == 0

    def test_bound_at_least_optimal(self, paper_example_rankings):
        assert trivial_upper_bound(paper_example_rankings) >= 5


# --------------------------------------------------------------------------- #
# Property: the weight-based scorer agrees with the direct scorer on random
# datasets and random candidate consensuses.
# --------------------------------------------------------------------------- #
@st.composite
def dataset_and_candidate(draw, max_elements: int = 6, max_rankings: int = 4):
    n = draw(st.integers(min_value=2, max_value=max_elements))
    m = draw(st.integers(min_value=1, max_value=max_rankings))
    elements = list(range(n))

    def draw_ranking():
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        return Ranking.from_positions(dict(zip(elements, positions)))

    rankings = [draw_ranking() for _ in range(m)]
    candidate = draw_ranking()
    return rankings, candidate


@given(dataset_and_candidate())
@settings(max_examples=100)
def test_weight_based_score_matches_direct(case):
    rankings, candidate = case
    weights = PairwiseWeights(rankings)
    assert generalized_kemeny_score(candidate, rankings) == (
        generalized_kemeny_score_from_weights(candidate, weights)
    )
