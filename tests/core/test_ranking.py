"""Tests for the Ranking and BucketVector data structures."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import BucketVector, InvalidRankingError, Ranking


class TestRankingConstruction:
    def test_basic_construction(self):
        ranking = Ranking([["A"], ["D"], ["B", "C"]])
        assert ranking.num_buckets == 3
        assert len(ranking) == 4
        assert ranking.buckets == (("A",), ("D",), ("B", "C"))

    def test_empty_ranking(self):
        ranking = Ranking([])
        assert len(ranking) == 0
        assert ranking.num_buckets == 0
        assert ranking.is_permutation

    def test_empty_bucket_rejected(self):
        with pytest.raises(InvalidRankingError):
            Ranking([["A"], []])

    def test_duplicate_element_rejected(self):
        with pytest.raises(InvalidRankingError):
            Ranking([["A"], ["A", "B"]])

    def test_duplicate_within_bucket_rejected(self):
        with pytest.raises(InvalidRankingError):
            Ranking([["A", "A"]])

    def test_from_permutation(self):
        ranking = Ranking.from_permutation(["C", "A", "B"])
        assert ranking.is_permutation
        assert ranking.position_of("C") == 0
        assert ranking.position_of("B") == 2

    def test_from_positions_compacts_gaps(self):
        ranking = Ranking.from_positions({"A": 0, "B": 5, "C": 5})
        assert ranking.buckets == (("A",), ("B", "C"))

    def test_from_positions_empty(self):
        assert len(Ranking.from_positions({})) == 0

    def test_from_scores_ascending(self):
        ranking = Ranking.from_scores({"A": 1.0, "B": 3.0, "C": 1.0})
        assert ranking.position_of("A") == 0
        assert ranking.position_of("C") == 0
        assert ranking.position_of("B") == 1

    def test_from_scores_descending(self):
        ranking = Ranking.from_scores({"A": 1.0, "B": 3.0}, reverse=True)
        assert ranking.position_of("B") == 0

    def test_from_scores_tie_tolerance(self):
        ranking = Ranking.from_scores({"A": 1.0, "B": 1.05, "C": 2.0}, tie_tolerance=0.1)
        assert ranking.tied("A", "B")
        assert not ranking.tied("B", "C")

    def test_single_bucket(self):
        ranking = Ranking.single_bucket(["A", "B", "C"])
        assert ranking.num_buckets == 1
        assert ranking.tie_count() == 3

    def test_single_bucket_empty(self):
        assert len(Ranking.single_bucket([])) == 0

    def test_integer_elements(self):
        ranking = Ranking([[1], [2, 3]])
        assert ranking.position_of(3) == 1


class TestRankingAccessors:
    def test_domain(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert ranking.domain == frozenset({"A", "B", "C"})

    def test_contains(self):
        ranking = Ranking([["A"], ["B"]])
        assert "A" in ranking
        assert "Z" not in ranking

    def test_position_of_missing_element(self):
        ranking = Ranking([["A"]])
        with pytest.raises(KeyError):
            ranking.position_of("Z")

    def test_elements_iterates_in_order(self):
        ranking = Ranking([["B"], ["A", "C"], ["D"]])
        assert list(ranking.elements())[0] == "B"
        assert list(ranking.elements())[-1] == "D"

    def test_bucket_sizes_and_max(self):
        ranking = Ranking([["A"], ["B", "C", "D"], ["E"]])
        assert ranking.bucket_sizes() == (1, 3, 1)
        assert ranking.max_bucket_size() == 3

    def test_max_bucket_size_empty(self):
        assert Ranking([]).max_bucket_size() == 0

    def test_is_permutation(self):
        assert Ranking([["A"], ["B"]]).is_permutation
        assert not Ranking([["A", "B"]]).is_permutation

    def test_tie_count(self):
        assert Ranking([["A"], ["B"]]).tie_count() == 0
        assert Ranking([["A", "B", "C"]]).tie_count() == 3
        assert Ranking([["A", "B"], ["C", "D"]]).tie_count() == 2

    def test_tie_density(self):
        assert Ranking([["A"], ["B"]]).tie_density() == 0.0
        assert Ranking([["A", "B"]]).tie_density() == 1.0
        assert Ranking([["A"]]).tie_density() == 0.0

    def test_prefers_and_tied(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert ranking.prefers("A", "B")
        assert not ranking.prefers("B", "A")
        assert ranking.tied("B", "C")
        assert not ranking.tied("A", "B")

    def test_positions_mapping(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert ranking.positions == {"A": 0, "B": 1, "C": 1}

    def test_as_position_list(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert ranking.as_position_list(["C", "A"]) == [1, 0]


class TestRankingTransformations:
    def test_restricted_to(self):
        ranking = Ranking([["A"], ["B", "C"], ["D"]])
        restricted = ranking.restricted_to({"B", "D"})
        assert restricted.buckets == (("B",), ("D",))

    def test_restricted_to_drops_empty_buckets(self):
        ranking = Ranking([["A"], ["B"], ["C"]])
        restricted = ranking.restricted_to({"A", "C"})
        assert restricted.num_buckets == 2

    def test_with_appended_bucket(self):
        ranking = Ranking([["A"], ["B"]])
        extended = ranking.with_appended_bucket(["C", "D"])
        assert extended.buckets[-1] == ("C", "D")

    def test_with_appended_bucket_skips_known_elements(self):
        ranking = Ranking([["A"], ["B"]])
        extended = ranking.with_appended_bucket(["A", "C"])
        assert extended.buckets[-1] == ("C",)

    def test_with_appended_bucket_noop(self):
        ranking = Ranking([["A"], ["B"]])
        assert ranking.with_appended_bucket(["A"]) is ranking

    def test_break_ties_default_order(self):
        ranking = Ranking([["B", "A"], ["C"]])
        permutation = ranking.break_ties()
        assert permutation.is_permutation
        assert list(permutation.elements()) == ["A", "B", "C"]

    def test_break_ties_with_explicit_order(self):
        ranking = Ranking([["A", "B"], ["C"]])
        permutation = ranking.break_ties(order=["B", "A", "C"])
        assert list(permutation.elements()) == ["B", "A", "C"]

    def test_reversed(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert ranking.reversed().buckets == (("B", "C"), ("A",))

    def test_canonical_sorts_within_buckets(self):
        assert Ranking([["C", "B"], ["A"]]).canonical().buckets == (("B", "C"), ("A",))


class TestRankingEquality:
    def test_equal_regardless_of_bucket_order_within(self):
        assert Ranking([["A", "B"], ["C"]]) == Ranking([["B", "A"], ["C"]])

    def test_not_equal_different_structure(self):
        assert Ranking([["A"], ["B"]]) != Ranking([["A", "B"]])

    def test_not_equal_different_bucket_order(self):
        assert Ranking([["A"], ["B"]]) != Ranking([["B"], ["A"]])

    def test_hash_consistent_with_equality(self):
        assert hash(Ranking([["A", "B"]])) == hash(Ranking([["B", "A"]]))

    def test_equality_with_non_ranking(self):
        assert Ranking([["A"]]) != "not a ranking"

    def test_usable_in_sets(self):
        rankings = {Ranking([["A", "B"]]), Ranking([["B", "A"]]), Ranking([["A"], ["B"]])}
        assert len(rankings) == 2

    def test_repr_roundtrip_mentions_buckets(self):
        text = repr(Ranking([["A"], ["B", "C"]]))
        assert "A" in text and "B" in text


class TestBucketVector:
    def test_roundtrip(self):
        ranking = Ranking([["A"], ["B", "C"], ["D"]])
        vector = BucketVector(ranking)
        assert vector.to_ranking() == ranking

    def test_move_to_existing_bucket(self):
        vector = BucketVector(Ranking([["A"], ["B"], ["C"]]))
        vector.move_to_existing_bucket("A", 1)
        assert vector.to_ranking() == Ranking([["A", "B"], ["C"]])

    def test_move_to_existing_bucket_removes_empty(self):
        vector = BucketVector(Ranking([["A"], ["B"], ["C"]]))
        vector.move_to_existing_bucket("B", 2)
        result = vector.to_ranking()
        assert result == Ranking([["A"], ["B", "C"]])
        assert result.num_buckets == 2

    def test_move_to_new_bucket(self):
        vector = BucketVector(Ranking([["A", "B"], ["C"]]))
        vector.move_to_new_bucket("B", 0)
        assert vector.to_ranking() == Ranking([["B"], ["A"], ["C"]])

    def test_move_to_same_bucket_is_noop(self):
        vector = BucketVector(Ranking([["A", "B"]]))
        vector.move_to_existing_bucket("A", 0)
        assert vector.to_ranking() == Ranking([["A", "B"]])

    def test_copy_is_independent(self):
        vector = BucketVector(Ranking([["A"], ["B"]]))
        clone = vector.copy()
        clone.move_to_existing_bucket("A", 1)
        assert vector.to_ranking() == Ranking([["A"], ["B"]])


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def random_buckets(draw, max_elements: int = 8):
    """Strategy generating valid bucket lists over distinct small integers."""
    n = draw(st.integers(min_value=1, max_value=max_elements))
    elements = list(range(n))
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=n - 1), max_size=n - 1, unique=True
            )
        )
    ) if n > 1 else []
    buckets = []
    previous = 0
    for boundary in boundaries + [n]:
        buckets.append(elements[previous:boundary])
        previous = boundary
    return buckets


@given(random_buckets())
def test_positions_match_buckets(buckets):
    ranking = Ranking(buckets)
    for index, bucket in enumerate(ranking.buckets):
        for element in bucket:
            assert ranking.position_of(element) == index


@given(random_buckets())
def test_break_ties_preserves_bucket_order(buckets):
    ranking = Ranking(buckets)
    permutation = ranking.break_ties()
    assert permutation.is_permutation
    assert permutation.domain == ranking.domain
    # Strict preferences of the original ranking are preserved.
    elements = list(ranking.domain)
    for a in elements:
        for b in elements:
            if ranking.prefers(a, b):
                assert permutation.prefers(a, b)


@given(random_buckets())
def test_tie_count_consistent_with_density(buckets):
    ranking = Ranking(buckets)
    n = len(ranking)
    if n >= 2:
        assert ranking.tie_density() == pytest.approx(
            ranking.tie_count() / (n * (n - 1) / 2)
        )
