"""The write-ahead journal: append/replay identity, torn tails, compaction."""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    JournalCorruptionError,
    JournalError,
    LiveDataset,
    LiveJournal,
    journal_exists,
    prepare_rankings,
    replay_journal,
)
from repro.core.journal import init_record, mutation_record, repair_record
from repro.core.ranking import Ranking
from repro.testing.faults import FaultInjector, FaultRule, TransientRunError, injected


def _rankings():
    return [
        Ranking([[1], [2, 3], [4]]),
        Ranking([[2], [1], [3, 4]]),
        Ranking([[4], [3], [2], [1]]),
    ]


def _journaled_mutations(journal, dataset, steps):
    """Apply ``steps`` mutations, journaling each like the session layer does."""
    rng = np.random.default_rng(20150813)
    elements = list(dataset.elements)
    for step in range(steps):
        kind = ("add", "update", "remove")[step % 3]
        if kind == "add" or dataset.num_rankings <= 2:
            order = rng.permutation(elements)
            ranking = Ranking([[e] for e in order.tolist()])
            index = dataset.add_ranking(ranking)
            journal.append(
                mutation_record("add", dataset.generation, index=index, ranking=ranking)
            )
        elif kind == "update":
            index = int(rng.integers(dataset.num_rankings))
            order = rng.permutation(elements)
            ranking = Ranking([order.tolist()[:2], order.tolist()[2:]])
            dataset.update_ranking(index, ranking)
            journal.append(
                mutation_record("update", dataset.generation, index=index, ranking=ranking)
            )
        else:
            index = int(rng.integers(dataset.num_rankings))
            dataset.remove_ranking(index)
            journal.append(mutation_record("remove", dataset.generation, index=index))


def _assert_weights_identical(a, b):
    wa, wb = a.weights(), b.weights()
    assert wa.before_matrix.tobytes() == wb.before_matrix.tobytes()
    assert wa.tied_matrix.tobytes() == wb.tied_matrix.tobytes()


def test_replay_matches_live_state_byte_for_byte(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path / "journal") as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        _journaled_mutations(journal, dataset, steps=25)
    result = replay_journal(tmp_path / "journal")
    assert result.generation == dataset.generation
    assert result.dataset.content_fingerprint() == dataset.content_fingerprint()
    _assert_weights_identical(result.dataset, dataset)
    # ... and byte-identical to a from-scratch prepare on the final rankings,
    # the invariant PR 8's associative deltas guarantee.
    fresh = prepare_rankings(list(dataset.rankings))
    assert (
        result.dataset.weights().before_matrix.tobytes()
        == fresh.weights.before_matrix.tobytes()
    )
    assert (
        result.dataset.weights().tied_matrix.tobytes()
        == fresh.weights.tied_matrix.tobytes()
    )


def test_replay_recovers_last_published_consensus(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        journal.append(
            repair_record(dataset.generation, Ranking([[1], [2], [3], [4]]), 11, "BioConsert")
        )
        index = dataset.add_ranking(Ranking([[4], [1, 2, 3]]))
        journal.append(
            mutation_record("add", dataset.generation, index=index, ranking=dataset[index])
        )
    result = replay_journal(tmp_path)
    assert result.consensus == Ranking([[1], [2], [3], [4]])
    assert result.score == 11
    assert result.algorithm == "BioConsert"
    assert result.repair_generation == 0
    assert result.generation == 1  # the consensus is stale by one mutation


def test_segments_rotate_and_replay_spans_them(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path, segment_max_bytes=300) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        _journaled_mutations(journal, dataset, steps=15)
        assert journal.segment_index > 1
    segments = sorted(tmp_path.glob("segment-*.log"))
    assert len(segments) > 1
    result = replay_journal(tmp_path)
    _assert_weights_identical(result.dataset, dataset)


def test_torn_tail_is_truncated_and_counted(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        _journaled_mutations(journal, dataset, steps=4)
    segment = sorted(tmp_path.glob("segment-*.log"))[-1]
    intact = segment.stat().st_size
    with open(segment, "ab") as handle:
        handle.write(b'0' * 64 + b' {"type":"add","par')  # unterminated, bad checksum
    result = replay_journal(tmp_path)
    assert result.truncated_records == 1
    assert result.generation == dataset.generation
    _assert_weights_identical(result.dataset, dataset)
    # replay physically repaired the file
    assert segment.stat().st_size == intact
    assert replay_journal(tmp_path).truncated_records == 0


def test_writer_open_truncates_torn_tail(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
    segment = sorted(tmp_path.glob("segment-*.log"))[-1]
    intact = segment.stat().st_size
    with open(segment, "ab") as handle:
        handle.write(b"garbage that never got its newline")
    with LiveJournal(tmp_path) as journal:
        assert journal.had_records
        index = dataset.add_ranking(Ranking([[3, 4], [1, 2]]))
        journal.append(
            mutation_record("add", dataset.generation, index=index, ranking=dataset[index])
        )
    assert segment.stat().st_size > intact  # appended after the repair point
    _assert_weights_identical(replay_journal(tmp_path).dataset, dataset)


def test_mid_segment_corruption_is_fatal(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        _journaled_mutations(journal, dataset, steps=6)
    segment = sorted(tmp_path.glob("segment-*.log"))[-1]
    lines = segment.read_bytes().splitlines(keepends=True)
    assert len(lines) >= 3
    lines[1] = b"0" * 64 + b" not-the-journaled-payload\n"
    segment.write_bytes(b"".join(lines))
    with pytest.raises(JournalCorruptionError, match="valid records follow"):
        replay_journal(tmp_path)


def test_snapshot_compacts_history_and_speeds_replay(tmp_path):
    dataset = LiveDataset(_rankings())
    journal = LiveJournal(tmp_path, segment_max_bytes=400)
    journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
    _journaled_mutations(journal, dataset, steps=12)
    journal.snapshot(dataset, consensus=Ranking([[1, 2], [3], [4]]), score=9, algorithm="Pick-a-Perm")
    assert journal.appended_since_snapshot == 0
    # every pre-snapshot segment is gone
    snapshot_index = int(sorted(tmp_path.glob("snapshot-*.json"))[-1].stem.split("-")[1])
    for segment in tmp_path.glob("segment-*.log"):
        assert int(segment.stem.split("-")[1]) >= snapshot_index
    _journaled_mutations(journal, dataset, steps=3)
    journal.close()
    result = replay_journal(tmp_path)
    assert result.from_snapshot
    assert result.replayed_records == 3  # only the tail, not the 12 compacted
    assert result.consensus == Ranking([[1, 2], [3], [4]])
    _assert_weights_identical(result.dataset, dataset)
    fresh = prepare_rankings(list(dataset.rankings))
    assert (
        result.dataset.weights().before_matrix.tobytes()
        == fresh.weights.before_matrix.tobytes()
    )


def test_successive_snapshots_keep_only_the_newest(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        for _ in range(3):
            _journaled_mutations(journal, dataset, steps=2)
            journal.snapshot(dataset)
    assert len(list(tmp_path.glob("snapshot-*.json"))) == 1
    result = replay_journal(tmp_path)
    assert result.replayed_records == 0
    _assert_weights_identical(result.dataset, dataset)


def test_damaged_snapshot_falls_back_to_full_replay(tmp_path):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        _journaled_mutations(journal, dataset, steps=4)
        path = journal.snapshot(dataset)
    # Corrupt the snapshot but restore the history it deleted: replay must
    # refuse (the acknowledged history is unrecoverable).
    path.write_text(json.dumps({"checksum": "0" * 64, "payload": {"type": "snapshot"}}))
    with pytest.raises(JournalCorruptionError, match="snapshot"):
        replay_journal(tmp_path)


def test_empty_directory_and_config_validation(tmp_path):
    assert not journal_exists(tmp_path)
    with pytest.raises(JournalError, match="no journal content"):
        replay_journal(tmp_path)
    with pytest.raises(JournalError, match="fsync policy"):
        LiveJournal(tmp_path, fsync="sometimes")
    with pytest.raises(JournalError, match="batch_records"):
        LiveJournal(tmp_path, batch_records=0)
    with pytest.raises(JournalError, match="unknown mutation kind"):
        mutation_record("upsert", 1)
    journal = LiveJournal(tmp_path)
    assert not journal.had_records
    journal.append(init_record("live", _rankings()))
    journal.close()
    journal.close()  # idempotent
    assert journal_exists(tmp_path)
    with pytest.raises(JournalError, match="closed"):
        journal.append(mutation_record("remove", 1, index=0))


@pytest.mark.parametrize("policy", ["always", "batch", "never"])
def test_fsync_policies_all_produce_replayable_journals(tmp_path, policy):
    dataset = LiveDataset(_rankings())
    with LiveJournal(tmp_path / policy, fsync=policy, batch_records=3) as journal:
        journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
        _journaled_mutations(journal, dataset, steps=7)
    _assert_weights_identical(replay_journal(tmp_path / policy).dataset, dataset)


def test_append_fault_site_fires_and_journal_stays_consistent(tmp_path):
    dataset = LiveDataset(_rankings())
    injector = FaultInjector(
        seed=3,
        rules=(FaultRule(site="journal.append", kind="exception", match="add"),),
    )
    journal = LiveJournal(tmp_path, name="sess")
    journal.append(init_record(dataset.name, dataset.rankings, dataset.metadata))
    with injected(injector):
        index = dataset.add_ranking(Ranking([[2, 3], [1, 4]]))
        with pytest.raises(TransientRunError):
            journal.append(
                mutation_record("add", dataset.generation, index=index, ranking=dataset[index])
            )
    # The failed append wrote nothing: replay sees only the init record.
    journal.close()
    assert replay_journal(tmp_path).generation == 0


def test_fsync_fault_site_fires(tmp_path):
    injector = FaultInjector(
        seed=3, rules=(FaultRule(site="journal.fsync", kind="exception"),)
    )
    journal = LiveJournal(tmp_path, fsync="always")
    with injected(injector):
        with pytest.raises(TransientRunError):
            journal.append(init_record("live", _rankings()))
