"""Tests for the Kendall-τ correlation and dataset similarity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EmptyDatasetError,
    Ranking,
    dataset_similarity,
    kendall_tau_correlation,
)


class TestKendallTauCorrelation:
    def test_identical_rankings(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert kendall_tau_correlation(ranking, ranking) == 1.0

    def test_reversed_permutations(self):
        r = Ranking.from_permutation(["A", "B", "C", "D"])
        s = Ranking.from_permutation(["D", "C", "B", "A"])
        assert kendall_tau_correlation(r, s) == -1.0

    def test_single_element(self):
        r = Ranking([["A"]])
        assert kendall_tau_correlation(r, r) == 1.0

    def test_half_disagreement(self):
        r = Ranking.from_permutation(["A", "B"])
        s = Ranking([["A", "B"]])
        # One pair, tied in one ranking only: tau = (1 - 2) / 1 = -1.
        assert kendall_tau_correlation(r, s) == -1.0

    def test_value_matches_equation_4(self, paper_example_rankings):
        r1, r2, _ = paper_example_rankings
        n = len(r1)
        from repro.core import generalized_kendall_tau_distance

        expected = (n * (n - 1) / 2 - 2 * generalized_kendall_tau_distance(r1, r2)) / (
            n * (n - 1) / 2
        )
        assert kendall_tau_correlation(r1, r2) == pytest.approx(expected)


class TestDatasetSimilarity:
    def test_single_ranking(self):
        assert dataset_similarity([Ranking([["A"], ["B"]])]) == 1.0

    def test_identical_rankings(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert dataset_similarity([ranking, ranking, ranking]) == 1.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            dataset_similarity([])

    def test_paper_example_similarity_in_range(self, paper_example_rankings):
        value = dataset_similarity(paper_example_rankings)
        assert -1.0 <= value <= 1.0

    def test_average_of_pairwise_correlations(self, paper_example_rankings):
        r1, r2, r3 = paper_example_rankings
        expected = (
            kendall_tau_correlation(r1, r2)
            + kendall_tau_correlation(r1, r3)
            + kendall_tau_correlation(r2, r3)
        ) / 3
        assert dataset_similarity(paper_example_rankings) == pytest.approx(expected)


@st.composite
def random_dataset(draw, max_elements: int = 6, max_rankings: int = 4):
    n = draw(st.integers(min_value=2, max_value=max_elements))
    m = draw(st.integers(min_value=2, max_value=max_rankings))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


@given(random_dataset())
@settings(max_examples=80)
def test_similarity_bounded(rankings):
    assert -1.0 <= dataset_similarity(rankings) <= 1.0


@given(random_dataset())
@settings(max_examples=80)
def test_similarity_invariant_to_order(rankings):
    assert dataset_similarity(rankings) == pytest.approx(
        dataset_similarity(list(reversed(rankings)))
    )
