"""Tests for the experiment configuration and the adaptive exact solver."""

from __future__ import annotations

import pytest

from repro.algorithms import ExactSubsetDP
from repro.experiments import SCALES, AdaptiveExact, ExperimentScale, get_scale
from repro.generators import uniform_dataset


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_get_scale_by_name(self):
        assert get_scale("smoke").name == "smoke"

    def test_get_scale_passthrough(self):
        scale = SCALES["default"]
        assert get_scale(scale) is scale

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("enormous")

    def test_paper_scale_matches_section_6(self):
        paper = get_scale("paper")
        assert paper.num_rankings == 7
        assert paper.medium_n == 35
        assert paper.similarity_steps[0] == 50
        assert paper.similarity_steps[-1] == 50000
        assert paper.unified_steps[-1] == 1_000_000
        assert paper.exact_max_elements == 60
        assert paper.time_limit_seconds == 7200.0

    def test_smoke_scale_is_small(self):
        smoke = get_scale("smoke")
        assert smoke.datasets_per_config <= 3
        assert max(smoke.small_n_values) <= 10

    def test_describe(self):
        description = get_scale("default").describe()
        assert description["name"] == "default"
        assert "small_n_values" in description

    def test_custom_scale(self):
        scale = ExperimentScale(
            name="custom",
            datasets_per_config=1,
            num_rankings=3,
            small_n_values=(5,),
            medium_n=5,
            similarity_steps=(10,),
            unified_steps=(10,),
            unified_universe=10,
            unified_top_k=4,
            scaling_n_values=(5,),
            exact_max_elements=8,
            time_limit_seconds=None,
        )
        assert get_scale(scale).name == "custom"


class TestAdaptiveExact:
    def test_small_instances_match_subset_dp(self):
        dataset = uniform_dataset(4, 7, rng=0)
        adaptive = AdaptiveExact().aggregate(dataset)
        reference = ExactSubsetDP().aggregate(dataset)
        assert adaptive.score == reference.score

    def test_dispatches_to_milp_above_dp_limit(self):
        dataset = uniform_dataset(3, 14, rng=1)
        adaptive = AdaptiveExact(dp_max_elements=8)
        result = adaptive.aggregate(dataset)
        assert result.consensus.domain == dataset.rankings[0].domain

    def test_declared_as_exact(self):
        assert AdaptiveExact().approximation == "exact"
