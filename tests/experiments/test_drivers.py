"""Smoke-scale integration tests of the per-table / per-figure drivers."""

from __future__ import annotations

import pytest

from repro.experiments import (
    GROUP_NORMALIZATIONS,
    format_figure2,
    format_figure3,
    format_figure4,
    format_figure5,
    format_figure6,
    format_table4,
    format_table5,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table4,
    run_table5,
)
from repro.experiments.report import (
    format_percentage,
    format_seconds,
    format_table,
    render_rows,
)


class TestReportFormatting:
    def test_format_percentage(self):
        assert format_percentage(0.123) == "12.3%"
        assert format_percentage(None) == "—"
        assert format_percentage(float("nan")) == "—"
        assert format_percentage(float("inf")) == "inf"

    def test_format_seconds_units(self):
        assert format_seconds(5e-4).endswith("µs")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.0).endswith("s")
        assert format_seconds(120.0).endswith("min")
        assert format_seconds(None) == "—"

    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}],
            [("a", "A"), ("b", "B")],
            title="T",
        )
        assert "T" in text
        assert "A" in text and "B" in text
        assert "22" in text

    def test_render_rows_empty(self):
        assert render_rows([], title="empty") == "empty"

    def test_render_rows_uses_keys(self):
        assert "alpha" in render_rows([{"alpha": 1}])


@pytest.fixture(scope="module")
def table5_report():
    return run_table5("smoke", seed=7)


class TestTable5:
    def test_report_covers_all_algorithms(self, table5_report):
        assert len(table5_report.algorithms()) == 13

    def test_exact_reference_available(self, table5_report):
        # smoke scale: n <= 10 <= exact_max_elements, so every dataset has an optimum.
        assert len(table5_report.optimal_scores) == len(table5_report.datasets())

    def test_bioconsert_among_best(self, table5_report):
        """The paper's headline result: BioConsert ranks at the top on
        uniformly generated datasets."""
        ranks = table5_report.algorithm_ranks()
        assert ranks["BioConsert"] <= 3

    def test_naive_baselines_rank_low(self, table5_report):
        ranks = table5_report.algorithm_ranks()
        assert ranks["RepeatChoice"] > ranks["BioConsert"]
        assert ranks["MEDRank(0.7)"] > ranks["BioConsert"]

    def test_formatting(self, table5_report):
        text = format_table5(table5_report)
        assert "Table 5" in text
        assert "BioConsert" in text


class TestTable4:
    def test_runs_and_formats(self):
        reports = run_table4(
            "smoke", seed=3, groups=("SkiCross", "BioMedical"),
            algorithm_names=("BordaCount", "BioConsert", "MEDRank(0.5)"),
        )
        assert ("SkiCross", "projection") in reports
        assert ("BioMedical", "unification") in reports
        text = format_table4(reports)
        assert "BioConsert" in text
        assert "SkiCross Proj" in text

    def test_group_normalizations_match_paper(self):
        assert GROUP_NORMALIZATIONS["BioMedical"] == ("unification",)
        assert set(GROUP_NORMALIZATIONS) == {"WebSearch", "F1", "SkiCross", "BioMedical"}


class TestFigure2:
    def test_rows_and_formatting(self):
        rows = run_figure2(
            "smoke", seed=3,
            algorithm_names=("BordaCount", "MEDRank(0.5)"),
            include_expensive=False,
            min_total_seconds=0.0,
        )
        assert {row["algorithm"] for row in rows} == {"BordaCount", "MEDRank(0.5)"}
        assert all(row["seconds"] > 0 for row in rows)
        assert "Figure 2" in format_figure2(rows)

    def test_positional_algorithms_are_fast(self):
        rows = run_figure2(
            "smoke", seed=3,
            algorithm_names=("BordaCount", "BioConsert"),
            include_expensive=False,
            min_total_seconds=0.0,
        )
        by_algorithm = {}
        for row in rows:
            by_algorithm.setdefault(row["algorithm"], []).append(row["seconds"])
        # Borda is orders of magnitude faster than the local search.
        assert max(by_algorithm["BordaCount"]) < max(by_algorithm["BioConsert"])


class TestFigure3:
    def test_groups_present(self):
        rows = run_figure3("smoke", seed=3)
        labels = {row["group"] for row in rows}
        assert "Syn. uniform" in labels
        assert any(label.startswith("SkiCross") for label in labels)
        assert "Figure 3" in format_figure3(rows)

    def test_similarity_steps_ordering(self):
        """Few Markov steps → higher similarity than many steps."""
        rows = run_figure3("smoke", seed=3)
        markov = {
            row["group"]: row["mean"]
            for row in rows
            if row["group"].startswith("Syn. w/ similarity")
        }
        values = list(markov.values())
        assert values[0] > values[-1]


class TestFigure4And5:
    def test_figure4_rows(self):
        rows, reports = run_figure4(
            "smoke", seed=3, algorithm_names=("BordaCount", "BioConsert", "KwikSort")
        )
        steps = {row["steps"] for row in rows}
        assert len(steps) == 2
        assert len(reports) == 2
        assert "Figure 4" in format_figure4(rows)

    def test_figure4_bioconsert_beats_borda(self):
        rows, _ = run_figure4(
            "smoke", seed=3, algorithm_names=("BordaCount", "BioConsert")
        )
        by_algorithm = {}
        for row in rows:
            by_algorithm.setdefault(row["algorithm"], []).append(row["average_gap"])
        assert max(by_algorithm["BioConsert"]) <= max(by_algorithm["BordaCount"]) + 1e-9

    def test_figure5_rows(self):
        rows, _ = run_figure5(
            "smoke", seed=3, algorithm_names=("BordaCount", "BioConsert", "MEDRank(0.5)")
        )
        assert {row["steps"] for row in rows} == {50, 2000}
        assert all("average_bucket_size" in row for row in rows)
        assert "Figure 5" in format_figure5(rows)


class TestFigure6:
    def test_rows_sorted_by_gap(self):
        rows, report = run_figure6(
            "smoke", seed=3, algorithm_names=("BordaCount", "BioConsert", "MEDRank(0.5)")
        )
        gaps = [row["average_gap"] for row in rows]
        assert gaps == sorted(gaps)
        assert report.runs
        assert "Figure 6" in format_figure6(rows)

    def test_bioconsert_best_gap(self):
        rows, _ = run_figure6(
            "smoke", seed=3, algorithm_names=("BordaCount", "BioConsert", "MEDRank(0.5)")
        )
        assert rows[0]["algorithm"] in {"BioConsert", "ExactAlgorithm"}
