"""Golden-file regression snapshots for the experiment and workload drivers.

Each snapshot is the deterministic part of a small, seeded run: integer
scores, budget verdicts and per-dataset optima for the table drivers, the
stripped matrix payload for the scenario grid.  Any change to the
generators, normalization, algorithms or engine that shifts a result shows
up as a diff against these files.

Refresh intentionally with::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py --update-golden
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.experiments import get_scale, run_table4, run_table5
from repro.experiments.report import report_snapshot
from repro.workloads import ScenarioMatrix, deterministic_payload, get_scenario_scale

GOLDEN_DIR = Path(__file__).parent / "golden"

# Small deterministic configs: seconds each, stable across machines.  The
# per-run time budget is disabled: a budget verdict depends on the wall
# clock of the run, and a golden file must never encode one.
GOLDEN_SEED = 2015
GOLDEN_TABLE_SCALE = dataclasses.replace(get_scale("smoke"), time_limit_seconds=None)
GOLDEN_MATRIX_SCALE = dataclasses.replace(
    get_scenario_scale("smoke"), time_limit_seconds=None
)
TABLE5_ALGORITHMS = ("BioConsert", "BordaCount", "CopelandMethod", "Pick-a-Perm")
TABLE4_ALGORITHMS = ("BioConsert", "BordaCount", "Pick-a-Perm")
TABLE4_GROUPS = ("F1", "BioMedical")
MATRIX_SCENARIOS = ("uniform-ties", "mallows-ties-diffuse", "near-total-ties")
MATRIX_ALGORITHMS = ("BordaCount", "Pick-a-Perm")


def _check_golden(name: str, payload: dict, update: bool) -> None:
    path = GOLDEN_DIR / name
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden file {path}; generate it with `pytest "
        f"tests/experiments/test_golden.py --update-golden`"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert payload == expected, (
        f"golden snapshot {name} drifted; if the change is intentional, "
        f"refresh with --update-golden"
    )


def test_table5_golden(update_golden):
    report = run_table5(
        GOLDEN_TABLE_SCALE, seed=GOLDEN_SEED, algorithm_names=TABLE5_ALGORITHMS
    )
    _check_golden("table5_smoke.json", report_snapshot(report), update_golden)


def test_table4_golden(update_golden):
    reports = run_table4(
        GOLDEN_TABLE_SCALE,
        seed=GOLDEN_SEED,
        algorithm_names=TABLE4_ALGORITHMS,
        groups=TABLE4_GROUPS,
    )
    payload = {
        f"{group}/{normalization}": report_snapshot(report)
        for (group, normalization), report in reports.items()
    }
    _check_golden("table4_smoke.json", payload, update_golden)


def test_scenario_matrix_golden(update_golden):
    report = ScenarioMatrix(
        scenarios=MATRIX_SCENARIOS,
        algorithms=MATRIX_ALGORITHMS,
        scale=GOLDEN_MATRIX_SCALE,
        seed=GOLDEN_SEED,
    ).run()
    _check_golden(
        "scenario_matrix_smoke.json",
        deterministic_payload(report.to_payload()),
        update_golden,
    )
