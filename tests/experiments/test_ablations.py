"""Tests for the ablation experiment drivers (Sections 7.1.1 and 8)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    format_chaining_ablation,
    format_medrank_ablation,
    format_normalization_ablation,
    run_chaining_ablation,
    run_medrank_threshold_ablation,
    run_normalization_ablation,
)


class TestMedrankThresholdAblation:
    @pytest.fixture(scope="class")
    def rows_and_report(self):
        return run_medrank_threshold_ablation(
            "smoke", seed=5, thresholds=(0.3, 0.5, 0.8)
        )

    def test_one_row_per_threshold(self, rows_and_report):
        rows, _ = rows_and_report
        assert [row["threshold"] for row in rows] == [0.3, 0.5, 0.8]

    def test_gaps_are_non_negative(self, rows_and_report):
        rows, _ = rows_and_report
        assert all(row["average_gap"] >= 0.0 for row in rows)

    def test_default_threshold_not_dominated_by_higher(self, rows_and_report):
        rows, _ = rows_and_report
        gaps = {row["threshold"]: row["average_gap"] for row in rows}
        assert gaps[0.8] >= gaps[0.5] - 0.05

    def test_formatting(self, rows_and_report):
        rows, _ = rows_and_report
        text = format_medrank_ablation(rows)
        assert "MEDRank threshold" in text
        assert "0.5" in text


class TestChainingAblation:
    @pytest.fixture(scope="class")
    def rows_and_report(self):
        return run_chaining_ablation("smoke", seed=5)

    def test_all_variants_present(self, rows_and_report):
        rows, _ = rows_and_report
        names = {row["algorithm"] for row in rows}
        assert "BordaCount" in names
        assert "Chained(Borda→BioConsert)" in names
        assert "SimulatedAnnealing" in names

    def test_chaining_never_degrades_the_first_stage(self, rows_and_report):
        rows, _ = rows_and_report
        gaps = {row["algorithm"]: row["average_gap"] for row in rows}
        assert gaps["Chained(Borda→BioConsert)"] <= gaps["BordaCount"] + 1e-9
        assert gaps["Chained(MEDRank→BioConsert)"] <= gaps["MEDRank(0.5)"] + 1e-9

    def test_rows_sorted_by_gap(self, rows_and_report):
        rows, _ = rows_and_report
        gaps = [row["average_gap"] for row in rows]
        assert gaps == sorted(gaps)

    def test_formatting(self, rows_and_report):
        rows, _ = rows_and_report
        assert "chaining" in format_chaining_ablation(rows).lower()


class TestNormalizationAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_normalization_ablation(
            "smoke", seed=5, num_races=6, num_pilots=14, top_relevant=5
        )

    def test_one_row_per_k(self, rows):
        assert [row["k"] for row in rows] == list(range(1, 7))

    def test_elements_kept_decreases_with_k(self, rows):
        kept = [row["elements_kept"] for row in rows]
        assert all(kept[i] >= kept[i + 1] for i in range(len(kept) - 1))

    def test_unification_keeps_every_top_pilot(self, rows):
        assert rows[0]["top_pilots_kept"] == rows[0]["top_pilots_total"]

    def test_top_pilots_never_increase_with_k(self, rows):
        top = [row["top_pilots_kept"] for row in rows]
        assert all(top[i] >= top[i + 1] for i in range(len(top) - 1))

    def test_formatting(self, rows):
        text = format_normalization_ablation(rows)
        assert "threshold normalization" in text.lower()
        assert "Elements kept" in text
