"""Metrics instruments: counters, gauges, histograms, registry, merging."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("cache.lookup")
        counter.inc(tier="memory")
        counter.inc(2.0, tier="memory")
        counter.inc(tier="disk")
        assert counter.value(tier="memory") == 3.0
        assert counter.value(tier="disk") == 1.0
        assert counter.value(tier="absent") == 0.0

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0


class TestGauge:
    def test_set_is_last_write_wins(self):
        gauge = Gauge("queue.depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2.0


class TestHistogram:
    def test_observe_counts_and_sums(self):
        histogram = Histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(6.05)

    def test_percentile_interpolates(self):
        histogram = Histogram("latency", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            histogram.observe(1.5)
        p50 = histogram.percentile(0.50)
        assert 1.0 <= p50 <= 2.0

    def test_percentile_inf_bucket_reports_max(self):
        histogram = Histogram("latency", buckets=(0.001,))
        histogram.observe(7.5)
        assert histogram.percentile(0.99) == 7.5

    def test_empty_percentile_is_zero(self):
        assert Histogram("latency").percentile(0.95) == 0.0

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", buckets=(1.0, 1.0))

    def test_default_buckets(self):
        assert Histogram("latency").buckets == DEFAULT_LATENCY_BUCKETS


class TestMetricsRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("hits")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("hits")

    def test_payload_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        names = [item["name"] for item in registry.to_payload()]
        assert names == ["alpha", "zeta"]

    def test_merge_payload_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("runs").inc(3.0, backend="process")
        worker.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)
        worker.gauge("depth").set(7.0)

        driver = MetricsRegistry()
        driver.counter("runs").inc(1.0, backend="process")
        driver.histogram("latency", buckets=(0.1, 1.0)).observe(0.5)

        driver.merge_payload(worker.to_payload())
        assert driver.counter("runs").value(backend="process") == 4.0
        assert driver.histogram("latency").count() == 2
        assert driver.gauge("depth").value() == 7.0

    def test_merge_rejects_incompatible_buckets(self):
        worker = MetricsRegistry()
        worker.histogram("latency", buckets=(0.1,)).observe(0.05)
        driver = MetricsRegistry()
        driver.histogram("latency", buckets=(0.1, 1.0)).observe(0.5)
        with pytest.raises(ValueError, match="incompatible bucket layout"):
            driver.merge_payload(worker.to_payload())
