"""Exporters: bundle round-trip, Chrome trace, Prometheus, span trees."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    Telemetry,
    load_bundle,
    runtime,
    save_bundle,
    span_tree,
    summarize_bundle,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def _no_ambient_session():
    assert runtime.get_active() is None
    yield
    runtime.disable()


@pytest.fixture
def bundle():
    """A representative bundle: nested spans, metrics, one convergence curve."""
    with runtime.session() as active:
        with runtime.span("aggregate", algorithm="Borda"):
            with runtime.span("aggregate.solve"):
                pass
        runtime.count("cache.lookup", tier="memory", outcome="hit")
        runtime.observe("aggregate.seconds", 0.02, algorithm="Borda")
        stream = runtime.convergence_stream("Chanas", dataset="demo")
        stream.record(1, 100, 0.01)
        stream.record(2, 90, 0.02)
    return active.to_payload()


class TestBundleIO:
    def test_save_load_round_trip(self, bundle, tmp_path):
        path = save_bundle(bundle, tmp_path / "deep" / "bundle.json")
        assert load_bundle(path) == json.loads(json.dumps(bundle))

    def test_load_rejects_non_bundle(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{\"foo\": 1}")
        with pytest.raises(ValueError, match="not a telemetry bundle"):
            load_bundle(path)


class TestJsonl:
    def test_every_entry_tagged(self, bundle):
        lines = [json.loads(line) for line in to_jsonl(bundle).splitlines()]
        types = sorted({line["type"] for line in lines})
        assert types == ["convergence", "metric", "span"]
        assert len([line for line in lines if line["type"] == "span"]) == 2

    def test_empty_bundle_renders_empty(self):
        assert to_jsonl(Telemetry().to_payload()) == ""


class TestChromeTrace:
    def test_trace_validates(self, bundle):
        trace = to_chrome_trace(bundle)
        assert validate_chrome_trace(trace) == []

    def test_span_events_carry_ids(self, bundle):
        trace = to_chrome_trace(bundle)
        complete = [event for event in trace["traceEvents"] if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {
            "aggregate",
            "aggregate.solve",
        }
        for event in complete:
            assert event["args"]["span_id"]

    def test_convergence_becomes_counter_track(self, bundle):
        trace = to_chrome_trace(bundle)
        counters = [event for event in trace["traceEvents"] if event["ph"] == "C"]
        assert len(counters) == 2
        assert counters[0]["name"] == "convergence:Chanas:demo"
        assert counters[0]["args"]["best_score"] == 100

    def test_timestamps_relative_to_origin(self, bundle):
        trace = to_chrome_trace(bundle)
        timestamps = [
            event["ts"] for event in trace["traceEvents"] if event["ph"] == "X"
        ]
        assert min(timestamps) == 0.0

    def test_validator_flags_bad_traces(self):
        assert validate_chrome_trace({}) == ["trace has no 'traceEvents' list"]
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "", "ph": "X", "ts": -1, "pid": "x", "tid": 0},
                    {"name": "ok", "ph": "??", "ts": 0, "pid": 0, "tid": 0},
                ]
            }
        )
        assert len(problems) == 5


class TestPrometheus:
    def test_counter_and_histogram_series(self, bundle):
        text = to_prometheus(bundle)
        assert (
            'cache_lookup{outcome="hit",tier="memory"} 1' in text
            or 'cache_lookup{tier="memory",outcome="hit"} 1' in text
        )
        assert "# TYPE aggregate_seconds histogram" in text
        assert 'aggregate_seconds_bucket{algorithm="Borda",le="+Inf"} 1' in text
        assert 'aggregate_seconds_count{algorithm="Borda"} 1' in text


class TestSpanTree:
    def test_nesting(self, bundle):
        (tree,) = span_tree(bundle["spans"])
        assert tree["name"] == "aggregate"
        assert [child["name"] for child in tree["children"]] == ["aggregate.solve"]

    def test_subtree_by_root_id(self, bundle):
        solve = next(
            span for span in bundle["spans"] if span["name"] == "aggregate.solve"
        )
        (tree,) = span_tree(bundle["spans"], root_id=solve["span_id"])
        assert tree["name"] == "aggregate.solve"
        assert tree["children"] == []

    def test_unknown_root_is_empty(self, bundle):
        assert span_tree(bundle["spans"], root_id="nope") == []


class TestSummarize:
    def test_summary_rows(self, bundle):
        summary = summarize_bundle(bundle)
        assert summary["num_spans"] == 2
        assert summary["num_convergence_streams"] == 1
        names = [row["name"] for row in summary["spans_by_name"]]
        assert set(names) == {"aggregate", "aggregate.solve"}
        (stream,) = summary["convergence"]
        assert stream["final_score"] == 90
        assert stream["events"] == 2
