"""Tracer behaviour: nesting, propagation, ingestion, payload round-trip."""

from __future__ import annotations

import pytest

from repro.telemetry import Span, Telemetry, Tracer
from repro.telemetry import runtime


@pytest.fixture(autouse=True)
def _no_ambient_session():
    """Tests must never leak an active session into each other."""
    assert runtime.get_active() is None
    yield
    runtime.disable()


class TestTracer:
    def test_span_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("work") as handle:
            assert len(tracer) == 0  # not recorded until closed
            assert handle.span_id
        spans = tracer.finished_spans()
        assert [span.name for span in spans] == ["work"]
        assert spans[0].parent_id is None
        assert spans[0].duration_seconds >= 0.0

    def test_nested_spans_parent_via_contextvar(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        by_name = {span.name: span for span in tracer.finished_spans()}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["outer"].parent_id is None
        assert inner.span_id != outer.span_id

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {span.name: span for span in tracer.finished_spans()}
        assert by_name["a"].parent_id == parent.span_id
        assert by_name["b"].parent_id == parent.span_id

    def test_span_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("work", algorithm="Borda") as handle:
            handle.set(score=42, stage="solve")
        (span,) = tracer.finished_spans()
        assert span.attributes == {"algorithm": "Borda", "score": 42, "stage": "solve"}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.finished_spans()
        assert span.attributes["error"] == "RuntimeError"

    def test_attach_reparents_new_spans(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        with tracer.attach(root.span_id):
            with tracer.span("adopted"):
                pass
        with tracer.span("orphan"):
            pass
        by_name = {span.name: span for span in tracer.finished_spans()}
        assert by_name["adopted"].parent_id == root.span_id
        assert by_name["orphan"].parent_id is None

    def test_span_payload_round_trip(self):
        tracer = Tracer()
        with tracer.span("work", n=3):
            pass
        payload = tracer.to_payload()[0]
        restored = Span.from_payload(payload)
        assert restored.name == "work"
        assert restored.attributes == {"n": 3}
        assert restored.span_id == payload["span_id"]
        assert restored.trace_id == tracer.trace_id

    def test_ingest_reparents_shipped_roots(self):
        driver = Tracer()
        worker = Tracer(driver.trace_id)
        with worker.span("worker.root"):
            with worker.span("worker.child"):
                pass
        with driver.span("fanout") as fanout:
            driver.ingest(worker.finished_spans(), parent_id=fanout.span_id)
        by_name = {span.name: span for span in driver.finished_spans()}
        assert by_name["worker.root"].parent_id == fanout.span_id
        # Non-root shipped spans keep their original parent links.
        assert by_name["worker.child"].parent_id == by_name["worker.root"].span_id
        assert all(
            span.trace_id == driver.trace_id for span in driver.finished_spans()
        )


class TestTelemetrySession:
    def test_session_enables_and_restores(self):
        assert not runtime.is_enabled()
        with runtime.session() as active:
            assert runtime.is_enabled()
            assert runtime.get_active() is active
        assert not runtime.is_enabled()

    def test_sessions_nest(self):
        with runtime.session() as outer:
            with runtime.session() as inner:
                assert runtime.get_active() is inner
            assert runtime.get_active() is outer

    def test_entry_count_probe(self):
        with runtime.session() as active:
            assert active.entry_count() == 0
            with runtime.span("work"):
                pass
            runtime.count("hits")
            stream = runtime.convergence_stream("Algo", dataset="ds")
            stream.record(1, 10.0, 0.01)
            assert active.entry_count() == 3

    def test_bundle_payload_shape(self):
        with runtime.session() as active:
            with runtime.span("work"):
                pass
        bundle = active.to_payload()
        assert bundle["telemetry"] == "bundle"
        assert bundle["version"] == 1
        assert bundle["trace_id"] == active.tracer.trace_id
        assert len(bundle["spans"]) == 1

    def test_merge_payload_combines_sessions(self):
        worker = Telemetry()
        with runtime.session(worker):
            with runtime.span("worker.work"):
                pass
            runtime.count("worker.calls", 2.0)
        driver = Telemetry()
        driver.merge_payload(worker.to_payload())
        assert len(driver.tracer) == 1
        assert driver.metrics.counter("worker.calls").value() == 2.0
