"""Convergence streams: recording, anytime integration, merging."""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.datasets import ensure_complete, websearch_like_dataset
from repro.telemetry import ConvergenceLog, runtime


@pytest.fixture(autouse=True)
def _no_ambient_session():
    assert runtime.get_active() is None
    yield
    runtime.disable()


@pytest.fixture
def dataset():
    return ensure_complete(
        websearch_like_dataset(
            num_engines=4, universe_size=24, results_per_engine=16, rng=7, name="ws"
        )
    )


class TestConvergenceLog:
    def test_stream_records_events(self):
        log = ConvergenceLog()
        stream = log.stream("Chanas", "demo")
        stream.record(1, 100, 0.01)
        stream.record(2, 90, 0.02)
        assert len(stream) == 2
        assert stream.final_score == 90
        assert stream.events[0].step == 1

    def test_stream_ids_disambiguate(self):
        log = ConvergenceLog()
        first = log.stream("Chanas", "demo")
        second = log.stream("Chanas", "demo")
        assert first.stream_id != second.stream_id

    def test_payload_round_trip_via_merge(self):
        log = ConvergenceLog()
        stream = log.stream("Chanas", "demo")
        stream.record(1, 100, 0.01)

        restored = ConvergenceLog()
        restored.merge_payload(log.to_payload())
        (merged,) = restored.streams()
        assert merged.algorithm == "Chanas"
        assert merged.dataset == "demo"
        assert merged.start_unix == stream.start_unix
        assert merged.events[0].best_score == 100


class TestAnytimeIntegration:
    def test_controller_records_curve_when_enabled(self, dataset):
        algorithm = make_algorithm("ChanasBoth", seed=0)
        with runtime.session() as active:
            controller = algorithm.begin_anytime(dataset)
            controller.run_to_completion()
        (stream,) = active.convergence.streams()
        assert stream.algorithm == "ChanasBoth"
        assert stream.dataset == "ws"
        assert len(stream.events) == controller.steps
        # The recorded best scores must be monotone non-increasing and end
        # at the controller's final best.
        scores = [event.best_score for event in stream.events]
        assert scores == sorted(scores, reverse=True)
        assert scores[-1] == controller.best_score
        # Elapsed offsets are monotone non-decreasing along the curve.
        elapsed = [event.elapsed_seconds for event in stream.events]
        assert elapsed == sorted(elapsed)

    def test_controller_records_nothing_when_disabled(self, dataset):
        algorithm = make_algorithm("ChanasBoth", seed=0)
        controller = algorithm.begin_anytime(dataset)
        controller.run_to_completion()
        assert controller._stream is None

    def test_portfolio_race_emits_streams(self, dataset):
        from repro.service import PortfolioScheduler

        scheduler = PortfolioScheduler(
            budget_seconds=None,
            algorithms=["BordaCount", "ChanasBoth"],
            seed=0,
        )
        with runtime.session() as active:
            scheduler.run(dataset)
        streams = active.convergence.streams()
        assert [stream.algorithm for stream in streams] == ["ChanasBoth"]
        assert streams[0].dataset == "ws"
        assert len(streams[0].events) >= 1
