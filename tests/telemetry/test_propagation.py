"""Cross-backend propagation and the zero-overhead-when-disabled guard."""

from __future__ import annotations

import os

import pytest

from repro.algorithms import BordaCount, ChanasBoth
from repro.engine import BatchJob, ExecutionEngine, ResultCache, make_backend
from repro.generators import uniform_dataset
from repro.telemetry import ConvergenceLog, Histogram, Tracer, runtime
from repro.telemetry.metrics import Counter
from repro.telemetry.propagation import ShippedResult, TracedCall, traced_map


@pytest.fixture(autouse=True)
def _no_ambient_session():
    assert runtime.get_active() is None
    yield
    runtime.disable()


def _traced_square(value):
    """Top-level so the process backend can pickle it."""
    with runtime.span("unit", value=value):
        pass
    return value * value


def _worker_identity(value):
    return value, os.getpid()


def _run_batch(tmp_path, backend_name):
    datasets = [uniform_dataset(4, 6, rng=seed, name=f"d{seed}") for seed in range(2)]
    engine = ExecutionEngine(
        cache=ResultCache(tmp_path / "cache"),
        backend=make_backend(backend_name, workers=2),
    )
    job = BatchJob.from_algorithms(
        datasets, {"BordaCount": BordaCount(), "ChanasBoth": ChanasBoth()}
    )
    return engine.run(job)


class TestTracedMap:
    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    def test_results_match_plain_map(self, backend_name):
        backend = make_backend(backend_name, workers=2)
        items = list(range(6))
        with runtime.session():
            assert traced_map(backend, _traced_square, items) == [
                value * value for value in items
            ]

    def test_disabled_is_plain_map(self):
        backend = make_backend("serial")
        assert traced_map(backend, _traced_square, [2, 3]) == [4, 9]

    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    def test_one_connected_trace(self, backend_name):
        backend = make_backend(backend_name, workers=2)
        with runtime.session() as active:
            traced_map(backend, _traced_square, [1, 2, 3], span_name="fanout")
        spans = active.tracer.finished_spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        (fanout,) = by_name["fanout"]
        assert fanout.attributes["items"] == 3
        units = by_name["unit"]
        assert len(units) == 3
        assert all(span.parent_id == fanout.span_id for span in units)
        assert all(span.trace_id == active.tracer.trace_id for span in spans)

    def test_process_workers_run_out_of_process(self):
        backend = make_backend("process", workers=2)
        with runtime.session():
            pairs = traced_map(backend, _worker_identity, [1, 2, 3, 4])
        assert [value for value, _ in pairs] == [1, 2, 3, 4]
        assert all(pid != os.getpid() for _, pid in pairs)


class TestTracedCall:
    def test_foreign_session_ships_a_bundle(self):
        """A call whose trace context is not the active one ships its spans."""
        call = TracedCall(_traced_square, trace_id="other-trace", parent_id=None)
        with runtime.session():
            outcome = call(3)
        assert isinstance(outcome, ShippedResult)
        assert outcome.result == 9
        assert outcome.bundle["trace_id"] == "other-trace"
        assert [span["name"] for span in outcome.bundle["spans"]] == ["unit"]

    def test_forked_copy_is_not_same_process(self):
        """Matching trace id alone must not count as the driver's process.

        Fork-started workers inherit the driver's module-global session, so
        the pid check is what keeps their spans from recording into a
        discarded copy of the tracer.
        """
        with runtime.session() as active:
            call = TracedCall(
                _traced_square, trace_id=active.tracer.trace_id, parent_id=None
            )
            call.origin_pid = os.getpid() + 1  # simulate the forked child
            outcome = call(2)
        assert isinstance(outcome, ShippedResult)
        assert [span["name"] for span in outcome.bundle["spans"]] == ["unit"]
        # The driver tracer saw nothing directly; the bundle is the only copy.
        assert active.tracer.finished_spans() == []


class TestEngineBatchTrace:
    def test_process_batch_is_one_connected_trace(self, tmp_path):
        with runtime.session() as active:
            report = _run_batch(tmp_path, "process")
        assert report.execution_summary()["executed_runs"] == 4

        spans = active.tracer.finished_spans()
        assert all(span.trace_id == active.tracer.trace_id for span in spans)
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        (batch,) = by_name["engine.batch"]
        (fanout,) = by_name["engine.fanout"]
        assert fanout.parent_id == batch.span_id
        runs = by_name["engine.run"]
        assert len(runs) == 4
        assert all(span.parent_id == fanout.span_id for span in runs)
        # Every run produced the aggregate-stage spans inside its worker,
        # and they shipped back parented under their engine.run span.
        aggregates = by_name["aggregate"]
        assert len(aggregates) == 4
        run_ids = {span.span_id for span in runs}
        assert all(span.parent_id in run_ids for span in aggregates)
        # Driver-side cache counters saw every run miss.
        misses = active.metrics.counter("engine.cache.miss")
        assert misses.value(algorithm="BordaCount") == 2.0
        assert misses.value(algorithm="ChanasBoth") == 2.0

    def test_serial_and_process_traces_have_same_shape(self, tmp_path):
        shapes = {}
        for backend_name in ("serial", "process"):
            with runtime.session() as active:
                _run_batch(tmp_path / backend_name, backend_name)
            names = sorted(span.name for span in active.tracer.finished_spans())
            shapes[backend_name] = names
        assert shapes["serial"] == shapes["process"]


class TestZeroOverheadWhenDisabled:
    def test_disabled_batch_touches_no_instruments(self, tmp_path, monkeypatch):
        """With no session, the hot path must never reach a telemetry object."""
        calls = {"count": 0}

        def probe(*args, **kwargs):
            calls["count"] += 1
            raise AssertionError("telemetry instrument touched while disabled")

        monkeypatch.setattr(Tracer, "span", probe)
        monkeypatch.setattr(Tracer, "attach", probe)
        monkeypatch.setattr(Counter, "inc", probe)
        monkeypatch.setattr(Histogram, "observe", probe)
        monkeypatch.setattr(ConvergenceLog, "stream", probe)

        report = _run_batch(tmp_path, "serial")
        assert report.execution_summary()["executed_runs"] == 4
        assert calls["count"] == 0

    def test_enabled_session_starts_empty(self, tmp_path):
        """A fresh session records nothing until instrumented code runs."""
        with runtime.session() as active:
            assert active.entry_count() == 0
        _run_batch(tmp_path, "serial")  # disabled again: still nothing
        with runtime.session() as active:
            assert active.entry_count() == 0
