"""CLI telemetry: ``--trace-out`` / ``--telemetry-out`` and the ``telemetry`` command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets import save_dataset
from repro.generators import uniform_dataset
from repro.telemetry import runtime, validate_chrome_trace


@pytest.fixture(autouse=True)
def _no_ambient_session():
    assert runtime.get_active() is None
    yield
    runtime.disable()


@pytest.fixture
def dataset_file(tmp_path):
    return save_dataset(uniform_dataset(4, 6, rng=3), tmp_path / "dataset.txt")


@pytest.fixture
def bundle_file(tmp_path, dataset_file):
    """A bundle written by an actual traced CLI run."""
    path = tmp_path / "bundle.json"
    assert main(
        [
            "portfolio", str(dataset_file), "--budget", "1.0",
            "--algorithms", "BordaCount", "Chanas", "--seed", "1",
            "--telemetry-out", str(path),
        ]
    ) == 0
    return path


class TestCaptureFlags:
    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, dataset_file, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            [
                "portfolio", str(dataset_file), "--budget", "1.0",
                "--algorithms", "BordaCount", "Chanas", "--seed", "1",
                "--trace-out", str(trace_path),
            ]
        ) == 0
        assert f"wrote Chrome trace to {trace_path}" in capsys.readouterr().out
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        names = {event["name"] for event in trace["traceEvents"]}
        assert "portfolio.run" in names
        assert "portfolio.member" in names

    def test_telemetry_out_writes_bundle(self, bundle_file):
        bundle = json.loads(bundle_file.read_text())
        assert bundle["telemetry"] == "bundle"
        assert any(span["name"] == "portfolio.run" for span in bundle["spans"])

    def test_no_flags_leaves_telemetry_disabled(self, dataset_file, capsys):
        assert main(
            ["portfolio", str(dataset_file), "--budget", "1.0",
             "--algorithms", "BordaCount", "Chanas", "--seed", "1"]
        ) == 0
        assert "wrote" not in capsys.readouterr().out.lower()
        assert runtime.get_active() is None

    def test_serve_trace_covers_requests(self, tmp_path, dataset_file, capsys):
        trace_path = tmp_path / "serve_trace.json"
        assert main(
            [
                "serve", "--scenario", "mallows-ties-diffuse", "--requests", "6",
                "--budget", "0.1", "--seed", "3",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace-out", str(trace_path),
            ]
        ) == 0
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        requests = [
            event
            for event in trace["traceEvents"]
            if event.get("name") == "service.request"
        ]
        assert len(requests) >= 1


class TestTelemetryCommand:
    def test_summary(self, bundle_file, capsys):
        assert main(["telemetry", "summary", str(bundle_file)]) == 0
        output = capsys.readouterr().out
        assert "trace:" in output
        assert "spans by name:" in output
        assert "portfolio.run" in output

    def test_top_respects_limit(self, bundle_file, capsys):
        assert main(["telemetry", "top", str(bundle_file), "--limit", "1"]) == 0
        output = capsys.readouterr().out
        assert output.count("count=") == 1

    def test_export_chrome_round_trips(self, bundle_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            [
                "telemetry",
                "export",
                str(bundle_file),
                "--format",
                "chrome",
                "--output",
                str(out),
            ]
        ) == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_export_jsonl_to_stdout(self, bundle_file, capsys):
        assert main(["telemetry", "export", str(bundle_file), "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        assert all(json.loads(line)["type"] for line in lines)

    def test_export_prometheus(self, bundle_file, capsys):
        assert main(
            ["telemetry", "export", str(bundle_file), "--format", "prometheus"]
        ) == 0
        output = capsys.readouterr().out
        assert "# TYPE" in output

    def test_missing_bundle_exits_nonzero(self, tmp_path, capsys):
        assert main(["telemetry", "summary", str(tmp_path / "absent.json")]) == 1
        assert "cannot load telemetry bundle" in capsys.readouterr().err

    def test_non_bundle_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text("{}")
        assert main(["telemetry", "summary", str(path)]) == 1
        assert "cannot load telemetry bundle" in capsys.readouterr().err
