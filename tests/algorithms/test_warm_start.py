"""Warm-start (`initial=`) contract across the anytime family."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    BioConsert,
    BordaCount,
    ChainedAggregator,
    Chanas,
    ChanasBoth,
    SimulatedAnnealing,
)
from repro.algorithms.anytime import run_anytime
from repro.core import Ranking
from repro.core.kemeny import generalized_kemeny_score_from_weights
from repro.datasets import Dataset
from repro.generators import uniform_dataset

ANYTIME_FAMILY = [
    BioConsert(),
    BioConsert(kernel="reference"),
    Chanas(),
    ChanasBoth(),
    SimulatedAnnealing(seed=7),
    ChainedAggregator(BordaCount(), BioConsert()),
]


@pytest.fixture(scope="module")
def dataset():
    return uniform_dataset(6, 9, rng=41, name="warm")


@pytest.fixture(scope="module")
def perturbed(dataset):
    rankings = list(dataset.rankings)
    rankings[0] = rankings[-1]
    return Dataset(rankings, name="warm-perturbed")


@pytest.mark.parametrize(
    "algorithm", ANYTIME_FAMILY, ids=lambda a: f"{a.name}-{getattr(a, '_kernel', '')}"
)
class TestWarmStart:
    def test_warm_never_worse_than_cold(self, algorithm, dataset):
        cold = run_anytime(algorithm, dataset, None)
        warm = run_anytime(algorithm, dataset, None, initial=cold.consensus)
        assert warm.score <= cold.score
        assert warm.details["warm_start"] is True
        assert cold.details["warm_start"] is False

    def test_warm_never_worse_than_initial(self, algorithm, dataset, perturbed):
        """Repairing after a mutation can only improve on the stale consensus."""
        stale = run_anytime(algorithm, dataset, None).consensus
        warm = run_anytime(algorithm, perturbed, None, initial=stale)
        stale_score = generalized_kemeny_score_from_weights(
            stale, perturbed.pairwise_weights()
        )
        assert warm.score <= stale_score

    def test_first_step_yields_valid_consensus(self, algorithm, dataset):
        initial = BordaCount().aggregate(dataset).consensus
        controller = algorithm.begin_anytime(dataset, initial=initial)
        assert controller.step()
        best = controller.best_so_far()
        assert best is not None
        assert best.domain == dataset.universe()


class TestWarmStartSemantics:
    def test_bioconsert_warm_trajectory_runs_first(self, dataset):
        """The warm start is the first trajectory: one step scores it."""
        algorithm = BioConsert()
        initial = BordaCount().aggregate(dataset).consensus
        controller = algorithm.begin_anytime(dataset, initial=initial)
        controller.step()
        expected = generalized_kemeny_score_from_weights(
            initial, dataset.pairwise_weights()
        )
        assert controller.best_score == expected

    def test_chanas_breaks_ties_in_initial(self, dataset):
        tied = Ranking([sorted(dataset.universe())])  # everything tied
        warm = run_anytime(Chanas(), dataset, None, initial=tied)
        assert warm.consensus.is_permutation

    def test_run_anytime_budget_with_warm_start(self, dataset):
        initial = BordaCount().aggregate(dataset).consensus
        result = run_anytime(BioConsert(), dataset, 0.0, initial=initial)
        assert result.details["steps"] >= 1
        assert result.consensus is not None
