"""Anytime-protocol semantics of the local-search family.

The contract (see :mod:`repro.algorithms.anytime`): a deadline-bounded run
always returns a valid consensus, the best score is monotone
non-increasing across ``step()`` calls, and a search run to completion
matches the batch ``aggregate()`` result exactly.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    BioConsert,
    BordaCount,
    ChainedAggregator,
    Chanas,
    ChanasBoth,
    SimulatedAnnealing,
    run_anytime,
    supports_anytime,
)
from repro.core.kemeny import generalized_kemeny_score
from repro.generators import uniform_dataset

ANYTIME_FACTORIES = {
    "BioConsert": lambda: BioConsert(),
    "BioConsert(reference)": lambda: BioConsert(kernel="reference"),
    "Chanas": lambda: Chanas(),
    "ChanasBoth": lambda: ChanasBoth(),
    "Chained(Borda→BioConsert)": lambda: ChainedAggregator(BordaCount(), BioConsert()),
    "Chained(Borda→SA)": lambda: ChainedAggregator(
        BordaCount(), SimulatedAnnealing(seed=3, max_moves=2000)
    ),
    "SimulatedAnnealing": lambda: SimulatedAnnealing(seed=3, max_moves=2000),
}


@pytest.fixture(scope="module")
def dataset():
    return uniform_dataset(6, 12, 97)


class TestProtocol:
    def test_local_search_family_supports_anytime(self):
        for factory in ANYTIME_FACTORIES.values():
            assert supports_anytime(factory())

    def test_positional_algorithms_do_not(self):
        assert not supports_anytime(BordaCount())

    def test_run_anytime_rejects_unsupported(self, dataset):
        with pytest.raises(TypeError, match="anytime"):
            run_anytime(BordaCount(), dataset, 1.0)


@pytest.mark.parametrize("name", sorted(ANYTIME_FACTORIES))
class TestAnytimeSemantics:
    def test_score_monotone_non_increasing(self, name, dataset):
        controller = ANYTIME_FACTORIES[name]().begin_anytime(dataset)
        scores = []
        while controller.step():
            scores.append(controller.best_score)
        assert scores, "search yielded no candidate"
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_completed_search_matches_batch_aggregate(self, name, dataset):
        algorithm = ANYTIME_FACTORIES[name]()
        batch = algorithm.aggregate(dataset)
        controller = ANYTIME_FACTORIES[name]().begin_anytime(dataset)
        best = controller.run_to_completion()
        assert controller.best_score == batch.score
        assert generalized_kemeny_score(best, list(dataset.rankings)) == batch.score

    def test_expired_deadline_still_returns_valid_consensus(self, name, dataset):
        result = run_anytime(ANYTIME_FACTORIES[name](), dataset, 0.0)
        assert result.consensus.domain == dataset.universe()
        assert result.details["steps"] >= 1
        assert result.details["anytime"] is True
        assert result.score == generalized_kemeny_score(
            result.consensus, list(dataset.rankings)
        )

    def test_deadline_result_never_worse_than_more_budget(self, name, dataset):
        # More steps can only improve (or keep) the best score.
        tight = run_anytime(ANYTIME_FACTORIES[name](), dataset, 0.0)
        generous = run_anytime(ANYTIME_FACTORIES[name](), dataset, None)
        assert generous.score <= tight.score


class TestControllerBookkeeping:
    def test_finished_controller_steps_are_noops(self, dataset):
        controller = BioConsert().begin_anytime(dataset)
        controller.run_to_completion()
        assert controller.finished
        steps = controller.steps
        assert controller.step() is False
        assert controller.steps == steps

    def test_result_before_first_step_raises(self, dataset):
        controller = BioConsert().begin_anytime(dataset)
        with pytest.raises(RuntimeError, match="no candidate"):
            controller.result()

    def test_kernel_equivalence_of_anytime_trajectories(self, dataset):
        arrays = BioConsert().begin_anytime(dataset)
        reference = BioConsert(kernel="reference").begin_anytime(dataset)
        while True:
            advanced_arrays = arrays.step()
            advanced_reference = reference.step()
            assert advanced_arrays == advanced_reference
            assert arrays.best_score == reference.best_score
            if not advanced_arrays:
                break
        assert arrays.best_so_far() == reference.best_so_far()
