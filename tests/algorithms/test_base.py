"""Tests for the RankAggregator base class contract."""

from __future__ import annotations

import pytest

from repro.algorithms import BordaCount
from repro.core import DomainMismatchError, EmptyDatasetError, Ranking
from repro.datasets import Dataset


class TestValidation:
    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            BordaCount().aggregate([])

    def test_empty_dataset_object_rejected(self):
        with pytest.raises(EmptyDatasetError):
            BordaCount().aggregate(Dataset([], name="empty"))

    def test_incomplete_dataset_rejected(self):
        with pytest.raises(DomainMismatchError):
            BordaCount().aggregate([Ranking([["A"]]), Ranking([["B"]])])

    def test_accepts_dataset_and_sequence(self, paper_example_rankings, paper_example_dataset):
        from_sequence = BordaCount().aggregate(paper_example_rankings)
        from_dataset = BordaCount().aggregate(paper_example_dataset)
        assert from_sequence.consensus == from_dataset.consensus


class TestResult:
    def test_result_fields(self, paper_example_rankings):
        result = BordaCount().aggregate(paper_example_rankings)
        assert result.algorithm == "BordaCount"
        assert result.score >= 5  # cannot beat the optimum of 5
        assert result.elapsed_seconds >= 0.0
        assert isinstance(result.details, dict)
        assert "BordaCount" in repr(result)

    def test_consensus_shortcut(self, paper_example_rankings):
        consensus = BordaCount().consensus(paper_example_rankings)
        assert consensus.domain == paper_example_rankings[0].domain

    def test_score_matches_consensus(self, paper_example_rankings):
        from repro.core import generalized_kemeny_score

        result = BordaCount().aggregate(paper_example_rankings)
        assert result.score == generalized_kemeny_score(
            result.consensus, paper_example_rankings
        )


class TestDescribe:
    def test_describe_contains_table1_fields(self):
        description = BordaCount().describe()
        assert description["name"] == "BordaCount"
        assert description["family"] == "P"
        assert description["produces_ties"] is True
        assert description["accounts_for_tie_cost"] is False

    def test_repr(self):
        assert "BordaCount" in repr(BordaCount())
