"""Tests for the exact solvers: the LPB integer program and the subset DP oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BioConsert,
    BordaCount,
    ExactAlgorithm,
    ExactSubsetDP,
    KwikSort,
    build_lpb_program,
)
from repro.core import (
    AlgorithmNotApplicableError,
    PairwiseWeights,
    Ranking,
    generalized_kemeny_score,
)
from repro.generators import uniform_dataset


class TestExactSubsetDP:
    def test_paper_example(self, paper_example_rankings, paper_example_optimal):
        result = ExactSubsetDP().aggregate(paper_example_rankings)
        assert result.score == 5
        assert result.consensus == paper_example_optimal

    def test_permutation_example_allows_ties_but_finds_4(self, permutation_example_rankings):
        """For permutation inputs the ties-aware optimum equals the
        permutation optimum (Section 4: the optimal consensus of a set of
        permutations has only singleton buckets)."""
        result = ExactSubsetDP().aggregate(permutation_example_rankings)
        assert result.score == 4
        assert result.consensus.is_permutation

    def test_identical_inputs(self):
        ranking = Ranking([["A"], ["B", "C"]])
        result = ExactSubsetDP().aggregate([ranking, ranking])
        assert result.score == 0
        assert result.consensus == ranking

    def test_refuses_large_instances(self):
        dataset = uniform_dataset(3, 20, rng=0)
        with pytest.raises(ValueError):
            ExactSubsetDP().aggregate(dataset)

    def test_single_element(self):
        assert ExactSubsetDP().consensus([Ranking([["A"]])]) == Ranking([["A"]])

    def test_details_record_score(self, paper_example_rankings):
        algorithm = ExactSubsetDP()
        result = algorithm.aggregate(paper_example_rankings)
        assert result.details["optimal_score"] == 5


class TestLPBProgram:
    def test_program_dimensions(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        program = build_lpb_program(weights)
        n = weights.num_elements
        num_pairs = n * (n - 1) // 2
        assert program.num_variables == 3 * num_pairs
        assert program.equality.shape == (num_pairs, program.num_variables)
        # Constraint (2): n(n-1)(n-2) ordered triples; constraint (3): one per
        # middle element and unordered extreme pair.
        expected_ineq = n * (n - 1) * (n - 2) + n * ((n - 1) * (n - 2) // 2)
        assert program.inequality.shape[0] == expected_ineq

    def test_objective_matches_pair_costs(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        program = build_lpb_program(weights)
        elements = weights.elements
        for (i, j), position in program.pair_index.items():
            base = 3 * position
            a, b = elements[i], elements[j]
            assert program.objective[base + 0] == weights.pair_cost(a, b, "before")
            assert program.objective[base + 1] == weights.pair_cost(a, b, "after")
            assert program.objective[base + 2] == weights.pair_cost(a, b, "tied")


class TestExactAlgorithm:
    def test_paper_example(self, paper_example_rankings, paper_example_optimal):
        result = ExactAlgorithm().aggregate(paper_example_rankings)
        assert result.score == 5
        assert result.consensus == paper_example_optimal
        assert result.details["proved_optimal"] is True

    def test_permutation_example(self, permutation_example_rankings):
        result = ExactAlgorithm().aggregate(permutation_example_rankings)
        assert result.score == 4

    def test_objective_value_matches_score(self, paper_example_rankings):
        algorithm = ExactAlgorithm()
        result = algorithm.aggregate(paper_example_rankings)
        assert result.details["objective_value"] == pytest.approx(result.score)

    def test_max_elements_guard(self):
        dataset = uniform_dataset(3, 8, rng=0)
        with pytest.raises(AlgorithmNotApplicableError):
            ExactAlgorithm(max_elements=5).aggregate(dataset)

    def test_single_element(self):
        assert ExactAlgorithm().consensus([Ranking([["A"]])]) == Ranking([["A"]])

    def test_agrees_with_subset_dp_on_uniform_datasets(self):
        """The two independent exact solvers must report the same optimal
        score on every dataset (the consensus itself may differ when several
        optima exist)."""
        for seed in range(5):
            dataset = uniform_dataset(4, 7, rng=seed)
            milp_score = ExactAlgorithm().aggregate(dataset).score
            dp_score = ExactSubsetDP().aggregate(dataset).score
            assert milp_score == dp_score

    def test_never_beaten_by_heuristics(self):
        for seed in range(3):
            dataset = uniform_dataset(5, 8, rng=seed)
            optimal = ExactAlgorithm().aggregate(dataset).score
            for heuristic in (BioConsert(), BordaCount(), KwikSort(seed=seed)):
                assert heuristic.aggregate(dataset).score >= optimal


@st.composite
def tiny_dataset(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    m = draw(st.integers(min_value=1, max_value=4))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


@given(tiny_dataset())
@settings(max_examples=20, deadline=None)
def test_exact_solvers_agree_property(rankings):
    milp = ExactAlgorithm().aggregate(rankings)
    dp = ExactSubsetDP().aggregate(rankings)
    assert milp.score == dp.score
    # Both consensuses achieve the optimal score they report.
    assert generalized_kemeny_score(milp.consensus, rankings) == milp.score
    assert generalized_kemeny_score(dp.consensus, rankings) == dp.score


@given(tiny_dataset())
@settings(max_examples=20, deadline=None)
def test_optimum_no_worse_than_any_input(rankings):
    optimal = ExactSubsetDP().aggregate(rankings).score
    for candidate in rankings:
        assert optimal <= generalized_kemeny_score(candidate, rankings)
