"""Tests for the positional algorithms: BordaCount, CopelandMethod, MEDRank, MC4."""

from __future__ import annotations

import pytest

from repro.algorithms import MC4, BordaCount, CopelandMethod, MEDRank
from repro.algorithms.borda import borda_scores
from repro.algorithms.copeland import copeland_scores
from repro.core import Ranking


class TestBordaScores:
    def test_position_is_elements_before_plus_one(self):
        """Section 3.3: the position of an element is the number of elements
        placed before it, plus one — ties share the same position."""
        ranking = Ranking([["A"], ["B", "C"], ["D"]])
        scores = borda_scores([ranking])
        assert scores["A"] == 1
        assert scores["B"] == 2
        assert scores["C"] == 2
        assert scores["D"] == 4

    def test_scores_sum_over_rankings(self, paper_example_rankings):
        scores = borda_scores(paper_example_rankings)
        # A: positions 1, 1, 2 -> 4.
        assert scores["A"] == 4
        # D: positions 2, 4, 1 -> 7.
        assert scores["D"] == 7


class TestBordaCount:
    def test_clear_winner_ranked_first(self):
        rankings = [
            Ranking.from_permutation(["A", "B", "C"]),
            Ranking.from_permutation(["A", "C", "B"]),
            Ranking.from_permutation(["B", "A", "C"]),
        ]
        consensus = BordaCount().consensus(rankings)
        assert consensus.position_of("A") == 0

    def test_equal_scores_are_tied(self):
        rankings = [
            Ranking.from_permutation(["A", "B"]),
            Ranking.from_permutation(["B", "A"]),
        ]
        consensus = BordaCount().consensus(rankings)
        assert consensus.tied("A", "B")

    def test_permutation_output_mode(self):
        rankings = [
            Ranking.from_permutation(["A", "B"]),
            Ranking.from_permutation(["B", "A"]),
        ]
        consensus = BordaCount(tie_equal_scores=False).consensus(rankings)
        assert consensus.is_permutation

    def test_cannot_account_for_tie_cost(self):
        """Section 4.1.3: one untied input ranking is enough to untie a pair
        in the consensus even if every other ranking ties it."""
        rankings = [
            Ranking([["X", "Y"], ["Z"]]),
            Ranking([["X", "Y"], ["Z"]]),
            Ranking([["X", "Y"], ["Z"]]),
            Ranking([["X"], ["Y"], ["Z"]]),
        ]
        consensus = BordaCount().consensus(rankings)
        assert not consensus.tied("X", "Y")


class TestCopeland:
    def test_scores_count_elements_after(self):
        ranking = Ranking([["A"], ["B", "C"], ["D"]])
        scores = copeland_scores([ranking])
        assert scores["A"] == 3
        assert scores["B"] == 1
        assert scores["C"] == 1
        assert scores["D"] == 0

    def test_clear_winner(self, paper_example_rankings):
        consensus = CopelandMethod().consensus(paper_example_rankings)
        assert consensus.position_of("A") == 0

    def test_pairwise_variant(self, paper_example_rankings):
        consensus = CopelandMethod(pairwise_victories=True).consensus(
            paper_example_rankings
        )
        assert consensus.position_of("A") == 0

    def test_permutation_output_mode(self):
        rankings = [
            Ranking.from_permutation(["A", "B"]),
            Ranking.from_permutation(["B", "A"]),
        ]
        assert CopelandMethod(tie_equal_scores=False).consensus(rankings).is_permutation

    def test_agrees_with_borda_on_projected_style_data(self):
        """On permutation inputs the two positional scores are affinely
        related, so the consensus orders coincide."""
        rankings = [
            Ranking.from_permutation(["A", "B", "C", "D"]),
            Ranking.from_permutation(["B", "A", "C", "D"]),
            Ranking.from_permutation(["A", "C", "B", "D"]),
        ]
        assert BordaCount().consensus(rankings) == CopelandMethod().consensus(rankings)


class TestMEDRank:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            MEDRank(0.0)
        with pytest.raises(ValueError):
            MEDRank(1.5)

    def test_name_includes_threshold(self):
        assert MEDRank(0.7).name == "MEDRank(0.7)"

    def test_majority_element_emitted_first(self):
        rankings = [
            Ranking.from_permutation(["A", "B", "C"]),
            Ranking.from_permutation(["A", "C", "B"]),
            Ranking.from_permutation(["B", "A", "C"]),
        ]
        consensus = MEDRank(0.5).consensus(rankings)
        assert consensus.position_of("A") == 0

    def test_elements_crossing_threshold_together_are_tied(self):
        rankings = [
            Ranking([["A", "B"], ["C"]]),
            Ranking([["A", "B"], ["C"]]),
            Ranking([["C"], ["A", "B"]]),
        ]
        consensus = MEDRank(0.5).consensus(rankings)
        assert consensus.tied("A", "B")

    def test_all_elements_present_in_output(self, paper_example_rankings):
        consensus = MEDRank(0.5).consensus(paper_example_rankings)
        assert consensus.domain == paper_example_rankings[0].domain

    def test_high_threshold_still_covers_domain(self, paper_example_rankings):
        consensus = MEDRank(1.0).consensus(paper_example_rankings)
        assert consensus.domain == paper_example_rankings[0].domain


class TestMC4:
    def test_condorcet_winner_ranked_first(self):
        rankings = [
            Ranking.from_permutation(["A", "B", "C", "D"]),
            Ranking.from_permutation(["A", "C", "B", "D"]),
            Ranking.from_permutation(["B", "A", "C", "D"]),
        ]
        consensus = MC4().consensus(rankings)
        assert consensus.position_of("A") == 0

    def test_single_element(self):
        assert MC4().consensus([Ranking([["A"]])]) == Ranking([["A"]])

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            MC4(damping=0.0)

    def test_details_report_iterations(self, paper_example_rankings):
        algorithm = MC4()
        result = algorithm.aggregate(paper_example_rankings)
        assert result.details["power_iterations"] >= 1

    def test_reasonable_quality_on_paper_example(self, paper_example_rankings):
        result = MC4().aggregate(paper_example_rankings)
        assert result.score <= 8
