"""Tests for the Section 8 extensions: simulated annealing and chaining."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BioConsert,
    BordaCount,
    ChainedAggregator,
    ExactSubsetDP,
    MEDRank,
    SimulatedAnnealing,
    make_algorithm,
)
from repro.core import PairwiseWeights, Ranking, generalized_kemeny_score
from repro.generators import uniform_dataset


class TestSimulatedAnnealing:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(initial_temperature=0.0)

    def test_finds_optimum_on_paper_example(self, paper_example_rankings):
        result = SimulatedAnnealing(seed=0).aggregate(paper_example_rankings)
        assert result.score == 5

    def test_output_covers_domain(self, paper_example_rankings):
        consensus = SimulatedAnnealing(seed=1).consensus(paper_example_rankings)
        assert consensus.domain == paper_example_rankings[0].domain

    def test_refine_never_degrades(self, paper_example_rankings):
        weights = PairwiseWeights(paper_example_rankings)
        start = BordaCount()._aggregate(paper_example_rankings, weights)
        start_score = generalized_kemeny_score(start, paper_example_rankings)
        refined = SimulatedAnnealing(seed=2).refine_from(start, weights)
        refined_score = generalized_kemeny_score(refined, paper_example_rankings)
        assert refined_score <= start_score

    def test_details_report_moves(self, paper_example_rankings):
        algorithm = SimulatedAnnealing(seed=0, max_moves=500)
        result = algorithm.aggregate(paper_example_rankings)
        assert result.details["moves_proposed"] <= 500
        assert 0 <= result.details["moves_accepted"] <= result.details["moves_proposed"]

    def test_single_element(self):
        assert SimulatedAnnealing(seed=0).consensus([Ranking([["A"]])]) == Ranking([["A"]])

    def test_deterministic_given_seed(self, paper_example_rankings):
        first = SimulatedAnnealing(seed=9).consensus(paper_example_rankings)
        second = SimulatedAnnealing(seed=9).consensus(paper_example_rankings)
        assert first == second

    def test_near_optimal_on_small_uniform_datasets(self):
        exact = ExactSubsetDP()
        for seed in range(3):
            dataset = uniform_dataset(4, 7, rng=seed)
            optimal = exact.aggregate(dataset).score
            annealed = SimulatedAnnealing(seed=seed).aggregate(dataset).score
            assert optimal <= annealed <= 2 * max(optimal, 1)


class TestChainedAggregator:
    def test_rejects_non_refiner(self):
        with pytest.raises(TypeError):
            ChainedAggregator(BordaCount(), BordaCount())

    def test_name_mentions_both_stages(self):
        chained = ChainedAggregator(BordaCount(), BioConsert())
        assert "BordaCount" in chained.name
        assert "BioConsert" in chained.name

    def test_never_worse_than_initial(self, paper_example_rankings):
        initial = BordaCount().aggregate(paper_example_rankings)
        chained = ChainedAggregator(BordaCount(), BioConsert()).aggregate(
            paper_example_rankings
        )
        assert chained.score <= initial.score

    def test_chained_with_annealing(self, paper_example_rankings):
        chained = ChainedAggregator(
            MEDRank(0.5), SimulatedAnnealing(seed=0)
        ).aggregate(paper_example_rankings)
        initial = MEDRank(0.5).aggregate(paper_example_rankings)
        assert chained.score <= initial.score

    def test_details_report_improvement(self, paper_example_rankings):
        algorithm = ChainedAggregator(BordaCount(), BioConsert())
        result = algorithm.aggregate(paper_example_rankings)
        details = result.details
        assert details["initial_score"] >= details["refined_score"]
        assert details["improvement"] == details["initial_score"] - details["refined_score"]

    def test_registered_variants(self, paper_example_rankings):
        for name in (
            "SimulatedAnnealing",
            "Chained(Borda→BioConsert)",
            "Chained(Borda→SA)",
            "Chained(MEDRank→BioConsert)",
        ):
            algorithm = make_algorithm(name, seed=0)
            result = algorithm.aggregate(paper_example_rankings)
            assert result.score >= 5

    def test_chained_finds_optimum_on_paper_example(self, paper_example_rankings):
        result = make_algorithm("Chained(Borda→BioConsert)", seed=0).aggregate(
            paper_example_rankings
        )
        assert result.score == 5


@st.composite
def small_dataset(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=4))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


@given(small_dataset())
@settings(max_examples=20, deadline=None)
def test_chaining_never_degrades_property(rankings):
    weights = PairwiseWeights(rankings)
    initial_consensus = BordaCount()._aggregate(rankings, weights)
    initial_score = generalized_kemeny_score(initial_consensus, rankings)
    chained = ChainedAggregator(BordaCount(), BioConsert()).aggregate(rankings)
    assert chained.score <= initial_score


@given(small_dataset())
@settings(max_examples=15, deadline=None)
def test_annealing_respects_optimum_property(rankings):
    optimal = ExactSubsetDP().aggregate(rankings).score
    annealed = SimulatedAnnealing(seed=0, max_moves=2000).aggregate(rankings).score
    assert annealed >= optimal
