"""Prepared vs. unprepared equivalence, registry-wide, plus kernel twins.

The shared-plan PR rewired ``RankAggregator.aggregate`` to consume a
:class:`~repro.core.prepared.PreparedDataset` (memoized, shareable) and
moved the positional / pivot / subset-DP algorithms onto dense kernels.
The contract is *identical results*: for every registered algorithm, the
three entry paths — plain rankings (plan built on the spot), dataset
(memoized plan) and an explicitly shared plan — must return the same
consensus, score and diagnostics, and every new dense kernel must follow
its reference twin move for move on random tied datasets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    AilonThreeHalves,
    BordaCount,
    CopelandMethod,
    ExactSubsetDP,
    KwikSort,
    MEDRank,
    RepeatChoice,
)
from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.core import Ranking, prepare_rankings
from repro.datasets import Dataset

SEED = 20150731


def make_rankings(n: int, m: int, seed: int) -> list[Ranking]:
    """Random complete dataset with ties (mirrors the kernel-equivalence suite)."""
    rng = np.random.default_rng(seed)
    rankings = []
    for _ in range(m):
        if rng.random() < 0.25:
            order = rng.permutation(n)
            positions = {int(element): int(rank) for rank, element in enumerate(order)}
        else:
            buckets = rng.integers(0, rng.integers(1, n + 1), size=n)
            positions = dict(enumerate(buckets.tolist()))
        rankings.append(Ranking.from_positions(positions))
    return rankings


def _comparable(result):
    """The result fields that must be identical across entry paths."""
    details = {k: v for k, v in result.details.items() if k != "prepare_seconds"}
    return result.consensus, result.score, details


# --------------------------------------------------------------------------- #
# Registry-wide: prepared vs unprepared
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", available_algorithms())
@pytest.mark.parametrize("case", [(6, 4, 1), (9, 5, 2), (7, 3, 3)])
def test_prepared_paths_are_equivalent_registry_wide(name, case):
    n, m, seed = case
    rankings = make_rankings(n, m, seed)
    dataset = Dataset(rankings, name=f"prepared-eq-{n}-{m}-{seed}")

    unprepared = make_algorithm(name, seed=SEED).aggregate(list(rankings))
    via_dataset = make_algorithm(name, seed=SEED).aggregate(dataset)
    plan = prepare_rankings(rankings)
    via_plan = make_algorithm(name, seed=SEED).aggregate(rankings, prepared=plan)

    assert _comparable(via_dataset) == _comparable(unprepared)
    assert _comparable(via_plan) == _comparable(unprepared)
    # Every path reports the preparation share explicitly.
    for result in (unprepared, via_dataset, via_plan):
        assert result.details["prepare_seconds"] >= 0.0
        assert result.elapsed_seconds >= result.details["prepare_seconds"]


def test_foreign_plan_is_rejected():
    rankings = make_rankings(6, 4, 1)
    foreign = prepare_rankings(make_rankings(5, 4, 2))
    with pytest.raises(ValueError, match="does not describe"):
        BordaCount().aggregate(rankings, prepared=foreign)


# --------------------------------------------------------------------------- #
# New dense kernels vs their reference twins
# --------------------------------------------------------------------------- #
dataset_params = st.tuples(
    st.integers(min_value=2, max_value=40),   # n elements
    st.integers(min_value=1, max_value=12),   # m rankings
    st.integers(min_value=0, max_value=2**32 - 1),  # rng seed
)


def _pairs(params, arrays_factory, reference_factory):
    n, m, seed = params
    rankings = make_rankings(n, m, seed)
    return (
        arrays_factory().aggregate(rankings),
        reference_factory().aggregate(rankings),
    )


@given(dataset_params)
@settings(max_examples=25, deadline=None)
def test_borda_kernels_identical(params):
    arrays, reference = _pairs(
        params, lambda: BordaCount(), lambda: BordaCount(kernel="reference")
    )
    assert arrays.consensus.buckets == reference.consensus.buckets
    assert arrays.score == reference.score


@given(dataset_params)
@settings(max_examples=25, deadline=None)
def test_copeland_kernels_identical(params):
    arrays, reference = _pairs(
        params, lambda: CopelandMethod(), lambda: CopelandMethod(kernel="reference")
    )
    assert arrays.consensus.buckets == reference.consensus.buckets
    assert arrays.score == reference.score


@given(dataset_params, st.sampled_from([0.3, 0.5, 0.7, 1.0]))
@settings(max_examples=25, deadline=None)
def test_medrank_kernels_identical(params, threshold):
    arrays, reference = _pairs(
        params,
        lambda: MEDRank(threshold),
        lambda: MEDRank(threshold, kernel="reference"),
    )
    assert arrays.consensus.buckets == reference.consensus.buckets
    assert arrays.score == reference.score


@given(dataset_params)
@settings(max_examples=20, deadline=None)
def test_repeat_choice_kernels_equal_per_seeded_run(params):
    n, m, seed = params
    rankings = make_rankings(n, m, seed)
    arrays = RepeatChoice(seed=SEED, num_repeats=3).aggregate(rankings)
    reference = RepeatChoice(seed=SEED, num_repeats=3, kernel="reference").aggregate(
        rankings
    )
    # Same refinement keys → same bucket partition and order; the reference
    # kernel's within-bucket order follows set iteration, so compare the
    # (order-insensitive) rankings and the scores.
    assert arrays.consensus == reference.consensus
    assert arrays.score == reference.score


@given(dataset_params, st.booleans())
@settings(max_examples=20, deadline=None)
def test_kwiksort_kernels_follow_identical_trajectories(params, allow_ties):
    n, m, seed = params
    rankings = make_rankings(n, m, seed)
    arrays = KwikSort(seed=SEED, allow_ties=allow_ties, num_repeats=2).aggregate(
        rankings
    )
    reference = KwikSort(
        seed=SEED, allow_ties=allow_ties, num_repeats=2, kernel="reference"
    ).aggregate(rankings)
    assert arrays.consensus.buckets == reference.consensus.buckets
    assert arrays.score == reference.score


@given(
    st.tuples(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
)
@settings(max_examples=15, deadline=None)
def test_exact_dp_kernels_identical(params):
    n, m, seed = params
    rankings = make_rankings(n, m, seed)
    bitmask = ExactSubsetDP().aggregate(rankings)
    reference = ExactSubsetDP(kernel="reference").aggregate(rankings)
    # Bit-identical reconstruction: same bucket sequence, same tie-breaking.
    assert bitmask.consensus.buckets == reference.consensus.buckets
    assert bitmask.score == reference.score
    assert (
        bitmask.details["optimal_score"] == reference.details["optimal_score"]
    )
    assert bitmask.score == bitmask.details["optimal_score"]


def test_ailon_rounding_kernels_identical():
    pytest.importorskip("scipy")
    for seed in range(4):
        rankings = make_rankings(7, 4, seed)
        arrays = AilonThreeHalves(seed=SEED).aggregate(rankings)
        reference = AilonThreeHalves(seed=SEED, kernel="reference").aggregate(rankings)
        assert arrays.consensus.buckets == reference.consensus.buckets
        assert arrays.score == reference.score
