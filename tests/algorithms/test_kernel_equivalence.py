"""Property-based equivalence of the array kernels and the seed references.

The PR that introduced :mod:`repro.core.arrays` rewrote the hot paths —
``PairwiseWeights``, ``pairwise_distance_matrix``, the BioConsert and
Chanas local searches — on dense bucket-id vectors and batched tensor ops.
The contract is *identical outputs*: the array kernels must follow the same
move selection and tie-breaking as the retained reference implementations
on any dataset.  This suite drives both paths over random datasets with
ties (n up to ~60 elements, m up to ~15 rankings) and asserts equality.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BioConsert, Chanas, ChanasBoth
from repro.core import (
    PairwiseWeights,
    Ranking,
    generalized_kemeny_score,
    generalized_kendall_tau_distance,
    generalized_kendall_tau_distance_reference,
    pairwise_distance_matrix,
    pairwise_distance_matrix_reference,
)

# Small sizes shrink well; the dedicated @settings below push to the
# n ≈ 60 / m ≈ 15 region with fewer examples to keep the suite fast.
dataset_params = st.tuples(
    st.integers(min_value=2, max_value=60),   # n elements
    st.integers(min_value=1, max_value=15),   # m rankings
    st.integers(min_value=0, max_value=2**32 - 1),  # rng seed
)


def make_dataset(params: tuple[int, int, int]) -> list[Ranking]:
    """Random complete dataset with ties from drawn (n, m, seed)."""
    n, m, seed = params
    rng = np.random.default_rng(seed)
    rankings = []
    for _ in range(m):
        if rng.random() < 0.25:  # mix in tie-free permutations
            order = rng.permutation(n)
            positions = {int(element): int(rank) for rank, element in enumerate(order)}
        else:
            buckets = rng.integers(0, rng.integers(1, n + 1), size=n)
            positions = dict(enumerate(buckets.tolist()))
        rankings.append(Ranking.from_positions(positions))
    return rankings


def naive_pairwise_weights(rankings: list[Ranking]) -> tuple[list, np.ndarray, np.ndarray]:
    """Per-element reimplementation of the seed PairwiseWeights build."""
    elements = sorted(rankings[0].domain, key=lambda e: (type(e).__name__, repr(e)))
    n = len(elements)
    before = np.zeros((n, n), dtype=np.int64)
    tied = np.zeros((n, n), dtype=np.int64)
    for ranking in rankings:
        positions = np.fromiter(
            (ranking.position_of(element) for element in elements),
            dtype=np.int64,
            count=n,
        )
        before += positions[:, None] < positions[None, :]
        tied += positions[:, None] == positions[None, :]
    np.fill_diagonal(tied, 0)
    return elements, before, tied


@given(dataset_params)
@settings(max_examples=40, deadline=None)
def test_pairwise_weights_match_naive_build(params):
    rankings = make_dataset(params)
    weights = PairwiseWeights(rankings)
    elements, before, tied = naive_pairwise_weights(rankings)
    assert weights.elements == elements
    assert (weights.before_matrix == before).all()
    assert (weights.tied_matrix == tied).all()


@given(dataset_params)
@settings(max_examples=40, deadline=None)
def test_pairwise_distance_matrix_matches_reference(params):
    rankings = make_dataset(params)
    assert (
        pairwise_distance_matrix(rankings)
        == pairwise_distance_matrix_reference(rankings)
    ).all()


@given(dataset_params)
@settings(max_examples=40, deadline=None)
def test_single_pair_distance_matches_reference(params):
    rankings = make_dataset(params)
    r, s = rankings[0], rankings[-1]
    assert generalized_kendall_tau_distance(
        r, s
    ) == generalized_kendall_tau_distance_reference(r, s)


@given(dataset_params)
@settings(max_examples=25, deadline=None)
def test_batched_kemeny_score_matches_per_pair_sum(params):
    rankings = make_dataset(params)
    candidate = rankings[0]
    per_pair = sum(
        generalized_kendall_tau_distance_reference(candidate, s) for s in rankings
    )
    assert generalized_kemeny_score(candidate, rankings) == per_pair


@given(dataset_params)
@settings(max_examples=12, deadline=None)
def test_bioconsert_kernels_follow_identical_trajectories(params):
    rankings = make_dataset(params)
    arrays = BioConsert(kernel="arrays")
    reference = BioConsert(kernel="reference")
    result_arrays = arrays.aggregate(rankings)
    result_reference = reference.aggregate(rankings)
    # Byte-identical, not merely equal: same bucket sequence AND the same
    # element order inside every bucket (what the CLI prints / IO writes).
    assert result_arrays.consensus.buckets == result_reference.consensus.buckets
    assert result_arrays.score == result_reference.score
    # details match except the wall-clock preparation timing.
    details_arrays = {k: v for k, v in result_arrays.details.items() if k != "prepare_seconds"}
    details_reference = {
        k: v for k, v in result_reference.details.items() if k != "prepare_seconds"
    }
    assert details_arrays == details_reference


@given(dataset_params)
@settings(max_examples=12, deadline=None)
def test_bioconsert_kernels_agree_with_borda_start(params):
    rankings = make_dataset(params)
    result_arrays = BioConsert(kernel="arrays", include_borda_start=True).aggregate(
        rankings
    )
    result_reference = BioConsert(
        kernel="reference", include_borda_start=True
    ).aggregate(rankings)
    assert result_arrays.consensus == result_reference.consensus
    assert result_arrays.score == result_reference.score


@given(dataset_params)
@settings(max_examples=15, deadline=None)
def test_chanas_kernels_follow_identical_trajectories(params):
    rankings = make_dataset(params)
    result_arrays = Chanas(kernel="arrays").aggregate(rankings)
    result_reference = Chanas(kernel="reference").aggregate(rankings)
    assert result_arrays.consensus == result_reference.consensus
    assert result_arrays.score == result_reference.score


@given(dataset_params)
@settings(max_examples=8, deadline=None)
def test_chanas_both_kernels_follow_identical_trajectories(params):
    rankings = make_dataset(params)
    result_arrays = ChanasBoth(kernel="arrays").aggregate(rankings)
    result_reference = ChanasBoth(kernel="reference").aggregate(rankings)
    assert result_arrays.consensus == result_reference.consensus
    assert result_arrays.score == result_reference.score
