"""Tests for the BioConsert local-search algorithm."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BioConsert, ExactSubsetDP, PickAPerm
from repro.core import Ranking, generalized_kemeny_score
from repro.generators import uniform_dataset


class TestBioConsert:
    def test_finds_optimum_on_paper_example(self, paper_example_rankings, paper_example_optimal):
        result = BioConsert().aggregate(paper_example_rankings)
        assert result.score == 5
        assert result.consensus == paper_example_optimal

    def test_identical_inputs(self):
        ranking = Ranking([["A"], ["B", "C"], ["D"]])
        result = BioConsert().aggregate([ranking, ranking])
        assert result.score == 0
        assert result.consensus == ranking

    def test_never_worse_than_best_input(self, paper_example_rankings):
        """The local search starts from each input ranking, so the result is
        at least as good as Pick-a-Perm."""
        bioconsert = BioConsert().aggregate(paper_example_rankings)
        pick = PickAPerm().aggregate(paper_example_rankings)
        assert bioconsert.score <= pick.score

    def test_with_borda_start(self, paper_example_rankings):
        result = BioConsert(include_borda_start=True).aggregate(paper_example_rankings)
        assert result.score == 5

    def test_details_report_sweeps_and_starts(self, paper_example_rankings):
        algorithm = BioConsert()
        result = algorithm.aggregate(paper_example_rankings)
        assert result.details["sweeps"] >= 1
        assert result.details["starting_points"] == 3

    def test_output_covers_domain(self, paper_example_rankings):
        consensus = BioConsert().consensus(paper_example_rankings)
        assert consensus.domain == paper_example_rankings[0].domain

    def test_single_element(self):
        assert BioConsert().consensus([Ranking([["A"]])]) == Ranking([["A"]])

    def test_two_elements_majority_tie(self):
        rankings = [
            Ranking([["A", "B"]]),
            Ranking([["A", "B"]]),
            Ranking([["A"], ["B"]]),
        ]
        consensus = BioConsert().consensus(rankings)
        assert consensus.tied("A", "B")

    def test_score_reported_matches_consensus(self, paper_example_rankings):
        result = BioConsert().aggregate(paper_example_rankings)
        assert result.score == generalized_kemeny_score(
            result.consensus, paper_example_rankings
        )

    def test_matches_exact_on_small_uniform_datasets(self):
        """BioConsert finds the optimum on most small datasets (Section 7.1.1
        reports 68% of them); over several seeds it must find it at least once
        and never beat it."""
        exact = ExactSubsetDP()
        found_optimal = 0
        for seed in range(6):
            dataset = uniform_dataset(4, 7, rng=seed)
            optimal = exact.aggregate(dataset).score
            heuristic = BioConsert().aggregate(dataset).score
            assert heuristic >= optimal
            if heuristic == optimal:
                found_optimal += 1
        assert found_optimal >= 4


@st.composite
def small_dataset(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=4))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


@given(small_dataset())
@settings(max_examples=40, deadline=None)
def test_bioconsert_never_worse_than_inputs(rankings):
    result = BioConsert().aggregate(rankings)
    best_input = min(
        generalized_kemeny_score(candidate, rankings) for candidate in rankings
    )
    assert result.score <= best_input


@given(small_dataset())
@settings(max_examples=25, deadline=None)
def test_bioconsert_matches_exact_or_stays_close(rankings):
    """On tiny instances the local search must stay within a small factor of
    the optimum (it is a 2-approximation in the worst case)."""
    optimal = ExactSubsetDP().aggregate(rankings).score
    heuristic = BioConsert().aggregate(rankings).score
    assert optimal <= heuristic <= max(2 * optimal, optimal)
