"""Cross-cutting optimality-bound tests tying the solvers together.

These tests exercise relationships between the different exact and
approximate components that must hold on *every* dataset:

* the LP relaxation's objective value (Ailon 3/2) is a lower bound on the
  integer optimum of the LPB program;
* the exact optimum lies between that LP bound and the best-input upper
  bound (Pick-a-Perm / ``trivial_upper_bound``);
* the branch-and-bound optimum over permutations is never better than the
  ties-aware optimum (Section 4: permutations are a special case).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    AilonThreeHalves,
    BranchAndBound,
    ExactSubsetDP,
    PickAPerm,
)
from repro.core import Ranking, trivial_upper_bound
from repro.generators import uniform_dataset


@st.composite
def tiny_dataset(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    m = draw(st.integers(min_value=1, max_value=4))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


class TestLPRelaxationBound:
    def test_lp_objective_lower_bounds_optimum_paper_example(self, paper_example_rankings):
        ailon = AilonThreeHalves(seed=0)
        result = ailon.aggregate(paper_example_rankings)
        lp_value = result.details["lp_objective"]
        optimum = ExactSubsetDP().aggregate(paper_example_rankings).score
        assert lp_value <= optimum + 1e-6
        # The rounded consensus cannot beat the optimum either.
        assert result.score >= optimum

    def test_lp_objective_lower_bounds_optimum_uniform(self):
        for seed in range(3):
            dataset = uniform_dataset(4, 7, rng=seed)
            ailon = AilonThreeHalves(seed=seed)
            result = ailon.aggregate(dataset)
            optimum = ExactSubsetDP().aggregate(dataset).score
            assert result.details["lp_objective"] <= optimum + 1e-6

    def test_rounding_within_approximation_band(self, paper_example_rankings):
        """The 3/2 guarantee holds against the exact optimum (with slack for
        the pivot-rounding randomness on tiny instances)."""
        result = AilonThreeHalves(seed=1, num_repeats=5).aggregate(paper_example_rankings)
        optimum = ExactSubsetDP().aggregate(paper_example_rankings).score
        assert result.score <= 2 * optimum


class TestOptimumBrackets:
    @given(tiny_dataset())
    @settings(max_examples=25, deadline=None)
    def test_optimum_bracketed_by_trivial_bounds(self, rankings):
        optimum = ExactSubsetDP().aggregate(rankings).score
        upper = trivial_upper_bound(rankings)
        assert 0 <= optimum <= upper

    @given(tiny_dataset())
    @settings(max_examples=20, deadline=None)
    def test_permutation_optimum_never_beats_ties_optimum(self, rankings):
        ties_optimum = ExactSubsetDP().aggregate(rankings).score
        permutation_optimum = BranchAndBound().aggregate(rankings).score
        assert permutation_optimum >= ties_optimum

    def test_pick_a_perm_achieves_the_trivial_bound(self, paper_example_rankings):
        assert PickAPerm().aggregate(paper_example_rankings).score == (
            trivial_upper_bound(paper_example_rankings)
        )

    def test_two_approximation_of_best_input(self):
        """Best-input is a 2-approximation under the generalized distance,
        so the optimum is at least half of it (metric triangle inequality)."""
        for seed in range(4):
            dataset = uniform_dataset(4, 7, rng=seed)
            optimum = ExactSubsetDP().aggregate(dataset).score
            best_input = trivial_upper_bound(list(dataset.rankings))
            assert best_input <= 2 * max(optimum, 1)
