"""Tests for the algorithm registry and Table 1 catalogue."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    EVALUATED_ALGORITHMS,
    SCALABLE_ALGORITHMS,
    available_algorithms,
    make_algorithm,
    make_evaluated_suite,
    table1_catalogue,
)


class TestRegistry:
    def test_all_names_instantiable(self):
        for name in available_algorithms():
            algorithm = make_algorithm(name)
            assert algorithm is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_algorithm("DoesNotExist")

    def test_min_variants_configured(self):
        assert make_algorithm("KwikSortMin").name == "KwikSortMin"
        assert make_algorithm("RepeatChoiceMin").name == "RepeatChoiceMin"

    def test_medrank_thresholds(self):
        assert make_algorithm("MEDRank(0.5)").name == "MEDRank(0.5)"
        assert make_algorithm("MEDRank(0.7)").name == "MEDRank(0.7)"

    def test_evaluated_algorithms_are_registered(self):
        for name in EVALUATED_ALGORITHMS:
            assert name in available_algorithms()

    def test_scalable_subset_of_evaluated(self):
        assert set(SCALABLE_ALGORITHMS) <= set(EVALUATED_ALGORITHMS)

    def test_evaluated_suite_default(self):
        suite = make_evaluated_suite(seed=1)
        assert set(suite) == set(EVALUATED_ALGORITHMS)

    def test_evaluated_suite_with_exact(self):
        suite = make_evaluated_suite(seed=1, include_exact=True)
        assert "ExactAlgorithm" in suite

    def test_evaluated_suite_with_subset(self):
        suite = make_evaluated_suite(names=["BordaCount", "BioConsert"])
        assert set(suite) == {"BordaCount", "BioConsert"}

    def test_suite_runs_on_paper_example(self, paper_example_rankings):
        suite = make_evaluated_suite(seed=0, names=["BordaCount", "KwikSort", "BioConsert"])
        for algorithm in suite.values():
            result = algorithm.aggregate(paper_example_rankings)
            assert result.score >= 5


class TestTable1Catalogue:
    def test_catalogue_covers_paper_rows(self):
        rows = table1_catalogue()
        names = {row["name"] for row in rows}
        for expected in (
            "Ailon3/2",
            "BioConsert",
            "BordaCount",
            "Chanas",
            "ChanasBoth",
            "BnB",
            "CopelandMethod",
            "ExactAlgorithm",
            "KwikSort",
            "MC4",
            "Pick-a-Perm",
            "RepeatChoice",
        ):
            assert expected in names

    def test_families_match_paper(self):
        rows = {row["name"]: row for row in table1_catalogue()}
        assert rows["BioConsert"]["family"] == "G"
        assert rows["FaginSmall"]["family"] == "G"
        assert rows["KwikSort"]["family"] == "K"
        assert rows["Chanas"]["family"] == "K"
        assert rows["BordaCount"]["family"] == "P"
        assert rows["MC4"]["family"] == "P"

    def test_ties_capabilities_match_paper(self):
        rows = {row["name"]: row for row in table1_catalogue()}
        # Natively ties-aware approaches.
        assert rows["BioConsert"]["produces_ties"] and rows["BioConsert"]["accounts_for_tie_cost"]
        assert rows["FaginSmall"]["produces_ties"] and rows["FaginSmall"]["accounts_for_tie_cost"]
        # Permutation-only approaches.
        assert not rows["Chanas"]["produces_ties"]
        assert not rows["BnB"]["produces_ties"]
        # Positional approaches handle ties but not their cost.
        assert rows["BordaCount"]["produces_ties"]
        assert not rows["BordaCount"]["accounts_for_tie_cost"]

    def test_exact_algorithms_flagged(self):
        rows = {row["name"]: row for row in table1_catalogue()}
        assert rows["ExactAlgorithm"]["approximation"] == "exact"
        assert rows["BnB"]["approximation"] == "exact"

    def test_references_present(self):
        rows = {row["name"]: row for row in table1_catalogue()}
        assert rows["BioConsert"]["reference"] == "[12]"
        assert rows["KwikSort"]["reference"] == "[2]"

    def test_custom_selection(self):
        rows = table1_catalogue(["BordaCount"])
        assert len(rows) == 1
        assert rows[0]["name"] == "BordaCount"
