"""Cross-algorithm property-based tests.

Every algorithm of the evaluated suite must, on any valid complete dataset:

* return a consensus over exactly the input domain;
* report a score equal to the generalized Kemeny score of that consensus;
* never beat the exact optimum;
* respect its declared output type (permutation-only algorithms must return
  permutations).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    EVALUATED_ALGORITHMS,
    ExactSubsetDP,
    make_algorithm,
)
from repro.core import Ranking, generalized_kemeny_score

# Ailon 3/2 is excluded from the per-example sweep: solving an LP for every
# hypothesis example is disproportionately slow; it has its own tests.
_PROPERTY_ALGORITHMS = tuple(
    name for name in EVALUATED_ALGORITHMS if name != "Ailon3/2"
)


@st.composite
def small_dataset(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=4))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


@given(small_dataset())
@settings(max_examples=25, deadline=None)
def test_all_algorithms_return_valid_consensus(rankings):
    domain = rankings[0].domain
    for name in _PROPERTY_ALGORITHMS:
        algorithm = make_algorithm(name, seed=0)
        result = algorithm.aggregate(rankings)
        assert result.consensus.domain == domain, name
        assert result.score == generalized_kemeny_score(result.consensus, rankings), name


@given(small_dataset())
@settings(max_examples=15, deadline=None)
def test_no_algorithm_beats_the_optimum(rankings):
    optimal = ExactSubsetDP().aggregate(rankings).score
    for name in _PROPERTY_ALGORITHMS:
        algorithm = make_algorithm(name, seed=0)
        assert algorithm.aggregate(rankings).score >= optimal, name


@given(small_dataset())
@settings(max_examples=15, deadline=None)
def test_identical_inputs_have_zero_score_consensus(rankings):
    """When every input ranking is the same, algorithms that can express
    ties must return a zero-disagreement consensus."""
    reference = rankings[0]
    duplicated = [reference, reference, reference]
    for name in ("BioConsert", "FaginSmall", "FaginLarge", "KwikSort", "Pick-a-Perm"):
        algorithm = make_algorithm(name, seed=0)
        result = algorithm.aggregate(duplicated)
        assert result.score == 0, name


@pytest.mark.parametrize("name", sorted(_PROPERTY_ALGORITHMS))
def test_paper_example_scores_are_reasonable(name, paper_example_rankings):
    """Every evaluated algorithm stays within 3x of the optimum (5) on the
    paper's worked example — a loose sanity band that catches sign errors
    and inverted orders."""
    algorithm = make_algorithm(name, seed=0)
    result = algorithm.aggregate(paper_example_rankings)
    assert 5 <= result.score <= 15


@pytest.mark.parametrize("name", sorted(EVALUATED_ALGORITHMS))
def test_declared_tie_capability_is_honoured(name):
    """Algorithms declaring produces_ties=False must output permutations on
    a dataset whose optimum contains ties."""
    algorithm = make_algorithm(name, seed=0)
    rankings = [
        Ranking([["A", "B"], ["C"]]),
        Ranking([["A", "B"], ["C"]]),
        Ranking([["C"], ["A", "B"]]),
    ]
    result = algorithm.aggregate(rankings)
    if not type(algorithm).produces_ties:
        assert result.consensus.is_permutation
