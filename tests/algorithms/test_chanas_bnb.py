"""Tests for the permutation-only algorithms: Chanas, ChanasBoth, branch-and-bound."""

from __future__ import annotations

import pytest

from repro.algorithms import BranchAndBound, Chanas, ChanasBoth, PickAPerm
from repro.core import Ranking, kemeny_score


class TestChanas:
    def test_output_is_permutation(self, paper_example_rankings):
        consensus = Chanas().consensus(paper_example_rankings)
        assert consensus.is_permutation
        assert consensus.domain == paper_example_rankings[0].domain

    def test_optimal_on_permutation_example(self, permutation_example_rankings):
        """Section 2.1 example: the optimal permutation consensus has score 4."""
        result = Chanas().aggregate(permutation_example_rankings)
        assert result.score == 4

    def test_identical_inputs(self):
        ranking = Ranking.from_permutation(["A", "B", "C"])
        assert Chanas().consensus([ranking, ranking]) == ranking

    def test_single_element(self):
        assert Chanas().consensus([Ranking([["A"]])]) == Ranking([["A"]])


class TestChanasBoth:
    def test_never_worse_than_plain_chanas(self, permutation_example_rankings):
        plain = Chanas().aggregate(permutation_example_rankings)
        both = ChanasBoth().aggregate(permutation_example_rankings)
        assert both.score <= plain.score

    def test_output_is_permutation(self, paper_example_rankings):
        assert ChanasBoth().consensus(paper_example_rankings).is_permutation

    def test_never_worse_than_best_input_on_permutations(self, permutation_example_rankings):
        both = ChanasBoth().aggregate(permutation_example_rankings)
        pick = PickAPerm().aggregate(permutation_example_rankings)
        assert both.score <= pick.score


class TestBranchAndBound:
    def test_invalid_beam_width(self):
        with pytest.raises(ValueError):
            BranchAndBound(beam_width=0)

    def test_exact_on_permutation_example(self, permutation_example_rankings):
        result = BranchAndBound().aggregate(permutation_example_rankings)
        assert result.score == 4
        assert result.details["proved_optimal"] is True

    def test_optimal_among_permutations_with_ties_input(self, paper_example_rankings):
        """The optimal consensus of the paper's ties example has score 5 with
        ties; the best *permutation* has score 6 — BnB must find it."""
        result = BranchAndBound().aggregate(paper_example_rankings)
        assert result.consensus.is_permutation
        assert result.score == 6

    def test_matches_brute_force_on_small_instances(self):
        from itertools import permutations as iter_permutations

        rankings = [
            Ranking.from_permutation(["A", "C", "B", "D"]),
            Ranking.from_permutation(["B", "A", "D", "C"]),
            Ranking.from_permutation(["C", "B", "A", "D"]),
        ]
        brute_force = min(
            kemeny_score(Ranking.from_permutation(order), rankings)
            for order in iter_permutations(["A", "B", "C", "D"])
        )
        assert BranchAndBound().aggregate(rankings).score == brute_force

    def test_beam_search_returns_valid_permutation(self, permutation_example_rankings):
        result = BranchAndBound(beam_width=2).aggregate(permutation_example_rankings)
        assert result.consensus.is_permutation
        assert result.details["proved_optimal"] is False

    def test_beam_search_quality_close_to_exact(self, permutation_example_rankings):
        exact = BranchAndBound().aggregate(permutation_example_rankings)
        beam = BranchAndBound(beam_width=8).aggregate(permutation_example_rankings)
        assert beam.score >= exact.score
        assert beam.score <= exact.score + 2

    def test_node_cap_still_returns_valid_permutation(self, permutation_example_rankings):
        """With an aggressive node cap the search may stop early, but it must
        still return a valid permutation no worse than its Borda incumbent."""
        result = BranchAndBound(max_nodes=1).aggregate(permutation_example_rankings)
        assert result.consensus.is_permutation
        assert result.consensus.domain == permutation_example_rankings[0].domain
        assert result.score >= 4

    def test_nodes_expanded_reported(self, permutation_example_rankings):
        algorithm = BranchAndBound()
        result = algorithm.aggregate(permutation_example_rankings)
        assert result.details["nodes_expanded"] >= 1
