"""Tests for the ties-adapted KwikSort algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms import KwikSort
from repro.core import Ranking, generalized_kemeny_score


class TestKwikSort:
    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            KwikSort(num_repeats=0)

    def test_min_variant_name(self):
        assert KwikSort(num_repeats=10).name == "KwikSortMin"
        assert KwikSort().name == "KwikSort"

    def test_output_covers_domain(self, paper_example_rankings):
        consensus = KwikSort(seed=0).consensus(paper_example_rankings)
        assert consensus.domain == paper_example_rankings[0].domain

    def test_finds_optimum_on_paper_example(self, paper_example_rankings):
        result = KwikSort(num_repeats=10, seed=0).aggregate(paper_example_rankings)
        assert result.score == 5

    def test_identical_inputs_returned_verbatim(self):
        ranking = Ranking([["A"], ["B", "C"], ["D"]])
        consensus = KwikSort(seed=1).consensus([ranking, ranking, ranking])
        assert consensus == ranking

    def test_can_tie_elements_with_pivot(self):
        """With every input tying A and B, the ties-adapted placement must
        keep them tied."""
        rankings = [Ranking([["A", "B"], ["C"]]) for _ in range(3)]
        consensus = KwikSort(seed=2).consensus(rankings)
        assert consensus.tied("A", "B")

    def test_no_ties_mode_outputs_permutation(self):
        rankings = [Ranking([["A", "B"], ["C"]]) for _ in range(3)]
        consensus = KwikSort(allow_ties=False, seed=2).consensus(rankings)
        assert consensus.is_permutation

    def test_min_variant_never_worse(self, paper_example_rankings):
        single = KwikSort(seed=11).aggregate(paper_example_rankings)
        repeated = KwikSort(num_repeats=15, seed=11).aggregate(paper_example_rankings)
        assert repeated.score <= single.score

    def test_deterministic_given_seed(self, paper_example_rankings):
        first = KwikSort(seed=9).consensus(paper_example_rankings)
        second = KwikSort(seed=9).consensus(paper_example_rankings)
        assert first == second

    def test_score_reported_matches_consensus(self, paper_example_rankings):
        result = KwikSort(seed=4).aggregate(paper_example_rankings)
        assert result.score == generalized_kemeny_score(
            result.consensus, paper_example_rankings
        )

    def test_single_element(self):
        assert KwikSort(seed=0).consensus([Ranking([["A"]])]) == Ranking([["A"]])

    def test_permutation_inputs_agree_with_majority(self):
        rankings = [
            Ranking.from_permutation(["A", "B", "C"]),
            Ranking.from_permutation(["A", "B", "C"]),
            Ranking.from_permutation(["C", "B", "A"]),
        ]
        consensus = KwikSort(num_repeats=10, seed=0).consensus(rankings)
        assert consensus.prefers("A", "C")
