"""Tests for the Pick-a-Perm and RepeatChoice baselines."""

from __future__ import annotations

import pytest

from repro.algorithms import PickAPerm, RepeatChoice
from repro.core import Ranking, generalized_kemeny_score


class TestPickAPerm:
    def test_derandomized_returns_best_input(self, paper_example_rankings):
        result = PickAPerm().aggregate(paper_example_rankings)
        scores = [
            generalized_kemeny_score(candidate, paper_example_rankings)
            for candidate in paper_example_rankings
        ]
        assert result.score == min(scores)
        assert result.consensus in paper_example_rankings

    def test_randomized_returns_an_input(self, paper_example_rankings):
        result = PickAPerm(derandomized=False, seed=3).aggregate(paper_example_rankings)
        assert result.consensus in paper_example_rankings

    def test_details_record_chosen_index(self, paper_example_rankings):
        algorithm = PickAPerm()
        result = algorithm.aggregate(paper_example_rankings)
        index = result.details["chosen_input_index"]
        assert paper_example_rankings[index] == result.consensus

    def test_two_approximation_bound(self, paper_example_rankings):
        """Pick-a-Perm is a 2-approximation: its score is at most twice the
        optimal score (5 on the paper's example)."""
        result = PickAPerm().aggregate(paper_example_rankings)
        assert result.score <= 2 * 5

    def test_single_input(self):
        ranking = Ranking([["A"], ["B", "C"]])
        assert PickAPerm().consensus([ranking]) == ranking


class TestRepeatChoice:
    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            RepeatChoice(num_repeats=0)

    def test_min_variant_name(self):
        assert RepeatChoice(num_repeats=5).name == "RepeatChoiceMin"
        assert RepeatChoice().name == "RepeatChoice"

    def test_output_covers_domain(self, paper_example_rankings):
        consensus = RepeatChoice(seed=1).consensus(paper_example_rankings)
        assert consensus.domain == paper_example_rankings[0].domain

    def test_keep_ties_preserves_universally_tied_pairs(self):
        """Pairs tied in every input ranking stay tied in the ties-preserving
        adaptation (Section 4.1.2)."""
        rankings = [
            Ranking([["A", "B"], ["C"]]),
            Ranking([["C"], ["A", "B"]]),
        ]
        consensus = RepeatChoice(seed=0).consensus(rankings)
        assert consensus.tied("A", "B")

    def test_permutation_mode_breaks_all_ties(self):
        rankings = [
            Ranking([["A", "B"], ["C"]]),
            Ranking([["C"], ["A", "B"]]),
        ]
        consensus = RepeatChoice(keep_ties=False, seed=0).consensus(rankings)
        assert consensus.is_permutation

    def test_refinement_respects_start_ranking_order(self):
        """Elements strictly ordered in every ranking keep that order."""
        rankings = [
            Ranking([["A"], ["B"], ["C"]]),
            Ranking([["A"], ["B"], ["C"]]),
        ]
        consensus = RepeatChoice(seed=5).consensus(rankings)
        assert list(consensus.elements()) == ["A", "B", "C"]

    def test_min_variant_never_worse_than_single_run(self, paper_example_rankings):
        single = RepeatChoice(seed=7).aggregate(paper_example_rankings)
        repeated = RepeatChoice(num_repeats=10, seed=7).aggregate(paper_example_rankings)
        assert repeated.score <= single.score

    def test_two_approximation_bound(self, paper_example_rankings):
        result = RepeatChoice(num_repeats=10, seed=1).aggregate(paper_example_rankings)
        assert result.score <= 2 * 5
