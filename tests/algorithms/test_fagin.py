"""Tests for the FaginDyn dynamic-programming algorithm and its variants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BordaCount, FaginDyn, FaginLarge, FaginSmall
from repro.core import Ranking, generalized_kemeny_score


class TestFaginDyn:
    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            FaginDyn(prefer="medium")

    def test_variant_names(self):
        assert FaginSmall().name == "FaginSmall"
        assert FaginLarge().name == "FaginLarge"
        assert FaginDyn(prefer="large").name == "FaginLarge"

    def test_identical_inputs_recovered(self):
        ranking = Ranking([["A"], ["B", "C"], ["D"]])
        assert FaginSmall().consensus([ranking, ranking]) == ranking
        assert FaginLarge().consensus([ranking, ranking]) == ranking

    def test_output_covers_domain(self, paper_example_rankings):
        for algorithm in (FaginSmall(), FaginLarge()):
            consensus = algorithm.consensus(paper_example_rankings)
            assert consensus.domain == paper_example_rankings[0].domain

    def test_single_element(self):
        assert FaginSmall().consensus([Ranking([["A"]])]) == Ranking([["A"]])

    def test_all_tied_inputs_stay_tied(self):
        rankings = [Ranking([["A", "B", "C"]]) for _ in range(3)]
        consensus = FaginLarge().consensus(rankings)
        assert consensus.num_buckets == 1

    def test_variants_differ_on_cost_ties(self):
        """When bucketing decisions are cost-neutral, FaginSmall prefers more
        buckets than FaginLarge."""
        rankings = [
            Ranking([["A", "B"]]),
            Ranking([["A"], ["B"]]),
            Ranking([["B"], ["A"]]),
        ]
        small = FaginSmall().consensus(rankings)
        large = FaginLarge().consensus(rankings)
        assert small.num_buckets >= large.num_buckets

    def test_never_worse_than_borda_on_its_own_order(self):
        """FaginDyn buckets the Borda order optimally, so it can only improve
        on the all-singletons bucketing of that same order."""
        rankings = [
            Ranking([["A", "B"], ["C"], ["D"]]),
            Ranking([["B"], ["A", "C"], ["D"]]),
            Ranking([["A"], ["B"], ["D", "C"]]),
        ]
        fagin_score = FaginSmall().aggregate(rankings).score
        borda_permutation = BordaCount(tie_equal_scores=False).consensus(rankings)
        borda_score = generalized_kemeny_score(borda_permutation, rankings)
        assert fagin_score <= borda_score

    def test_reported_score_matches_consensus(self, paper_example_rankings):
        result = FaginLarge().aggregate(paper_example_rankings)
        assert result.score == generalized_kemeny_score(
            result.consensus, paper_example_rankings
        )


@st.composite
def small_dataset(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m = draw(st.integers(min_value=1, max_value=4))
    elements = list(range(n))
    rankings = []
    for _ in range(m):
        positions = draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
        )
        rankings.append(Ranking.from_positions(dict(zip(elements, positions))))
    return rankings


@given(small_dataset())
@settings(max_examples=40, deadline=None)
def test_fagin_small_never_worse_than_borda_permutation(rankings):
    """Bucketing the Borda order can only reduce the generalized Kemeny score
    compared to keeping every element in its own bucket along that order."""
    fagin_score = FaginSmall().aggregate(rankings).score
    borda_permutation = BordaCount(tie_equal_scores=False).consensus(rankings)
    assert fagin_score <= generalized_kemeny_score(borda_permutation, rankings)


@given(small_dataset())
@settings(max_examples=40, deadline=None)
def test_fagin_variants_equal_cost(rankings):
    """FaginSmall and FaginLarge explore the same DP: their consensus scores
    must be identical (only the bucket-size tie-break differs)."""
    assert FaginSmall().aggregate(rankings).score == FaginLarge().aggregate(rankings).score
