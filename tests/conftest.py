"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ranking
from repro.datasets import Dataset


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden regression snapshots instead of comparing",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden files instead of asserting."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def paper_example_rankings() -> list[Ranking]:
    """The worked example of Section 2.2 of the paper.

    R = {r1, r2, r3} whose optimal consensus is [{A}, {D}, {B, C}] with a
    generalized Kemeny score of 5.
    """
    return [
        Ranking([["A"], ["D"], ["B", "C"]]),
        Ranking([["A"], ["B", "C"], ["D"]]),
        Ranking([["D"], ["A", "C"], ["B"]]),
    ]


@pytest.fixture
def paper_example_dataset(paper_example_rankings) -> Dataset:
    return Dataset(paper_example_rankings, name="paper-example")


@pytest.fixture
def paper_example_optimal() -> Ranking:
    return Ranking([["A"], ["D"], ["B", "C"]])


@pytest.fixture
def permutation_example_rankings() -> list[Ranking]:
    """The permutation example of Section 2.1.

    P = {pi1, pi2, pi3}, optimal consensus [A, D, C, B] with Kemeny score 4.
    """
    return [
        Ranking.from_permutation(["A", "D", "B", "C"]),
        Ranking.from_permutation(["A", "C", "B", "D"]),
        Ranking.from_permutation(["D", "A", "C", "B"]),
    ]


@pytest.fixture
def raw_table3_dataset() -> Dataset:
    """The raw dataset dr of Table 3 (normalization example)."""
    return Dataset(
        [
            Ranking([["A"], ["D"], ["B"]]),
            Ranking([["B"], ["E", "A"]]),
            Ranking([["D"], ["A", "B"], ["C"]]),
        ],
        name="table3-raw",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
