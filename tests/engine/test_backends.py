"""Tests for the execution backends and backend equivalence."""

from __future__ import annotations

import pytest

from repro.algorithms import BioConsert, BordaCount, ExactSubsetDP, KwikSort
from repro.engine import (
    ExecutionEngine,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.evaluation import evaluate_algorithms
from repro.experiments import format_table5
from repro.generators import uniform_dataset


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


class TestMapContract:
    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(3), ProcessPoolBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_ordered_results(self, backend):
        assert backend.map(_square, list(range(7))) == [i * i for i in range(7)]

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(3), ProcessPoolBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_empty_items(self, backend):
        assert backend.map(_square, []) == []

    def test_single_item_avoids_pool(self):
        assert ProcessPoolBackend(4).map(_square, [3]) == [9]


class TestMakeBackend:
    def test_by_name(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("thread", workers=2).max_workers == 2
        assert make_backend("process", workers=3).max_workers == 3

    def test_default_workers_positive(self):
        assert make_backend("thread").max_workers >= 1

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")


@pytest.fixture(scope="module")
def equivalence_workload():
    datasets = [uniform_dataset(4, 6, rng=seed, name=f"d{seed}") for seed in range(3)]
    suite = {
        "BordaCount": BordaCount(),
        "BioConsert": BioConsert(),
        "KwikSortMin": KwikSort(num_repeats=5, seed=11),
    }
    return datasets, suite


def _run(backend, equivalence_workload):
    datasets, suite = equivalence_workload
    return evaluate_algorithms(
        datasets,
        suite,
        exact_algorithm=ExactSubsetDP(),
        exact_max_elements=10,
        engine=ExecutionEngine(backend=backend),
    )


class TestBackendEquivalence:
    """All three backends produce identical reports for a fixed seed."""

    @pytest.fixture(scope="class")
    def reports(self, equivalence_workload):
        return {
            "serial": _run(SerialBackend(), equivalence_workload),
            "thread": _run(ThreadBackend(4), equivalence_workload),
            "process": _run(ProcessPoolBackend(4), equivalence_workload),
        }

    def test_result_fingerprints_identical(self, reports):
        fingerprints = {report.result_fingerprint() for report in reports.values()}
        assert len(fingerprints) == 1

    def test_tables_byte_identical(self, reports):
        tables = {format_table5(report) for report in reports.values()}
        assert len(tables) == 1

    def test_optimal_scores_identical(self, reports):
        optima = [report.optimal_scores for report in reports.values()]
        assert optima[0] == optima[1] == optima[2]

    def test_run_order_preserved(self, reports):
        orders = [
            [(run.algorithm, run.dataset) for run in report.runs]
            for report in reports.values()
        ]
        assert orders[0] == orders[1] == orders[2]

    def test_backend_recorded(self, reports):
        assert {report.backend for report in reports.values()} == {
            "serial",
            "thread",
            "process",
        }
