"""The in-memory LRU tier and the tiered (memory + disk) result cache."""

from __future__ import annotations

import pytest

from repro.engine import MemoryCacheTier, ResultCache, TieredResultCache


class TestMemoryCacheTier:
    def test_lookup_miss_then_hit(self):
        tier = MemoryCacheTier(4)
        assert tier.lookup("a") is None
        tier.store("a", {"score": 1})
        assert tier.lookup("a") == {"score": 1}
        assert tier.hits == 1 and tier.misses == 1

    def test_lru_eviction_order(self):
        tier = MemoryCacheTier(2)
        tier.store("a", {"v": 1})
        tier.store("b", {"v": 2})
        tier.lookup("a")  # refresh a; b becomes LRU
        tier.store("c", {"v": 3})
        assert "b" not in tier
        assert "a" in tier and "c" in tier
        assert tier.evictions == 1

    def test_store_existing_key_refreshes_recency(self):
        tier = MemoryCacheTier(2)
        tier.store("a", {"v": 1})
        tier.store("b", {"v": 2})
        tier.store("a", {"v": 10})  # refresh + overwrite; b becomes LRU
        tier.store("c", {"v": 3})
        assert "b" not in tier
        assert tier.lookup("a") == {"v": 10}

    def test_invalidate_and_clear(self):
        tier = MemoryCacheTier(4)
        tier.store("a", {})
        assert tier.invalidate("a") is True
        assert tier.invalidate("a") is False
        tier.store("x", {})
        tier.store("y", {})
        assert tier.clear() == 2
        assert len(tier) == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            MemoryCacheTier(0)


class TestTieredResultCache:
    def test_store_writes_through_both_tiers(self, tmp_path):
        cache = TieredResultCache(tmp_path / "cache")
        cache.store("k1", {"score": 5})
        assert cache.memory.lookup("k1") == {"score": 5}
        assert cache.disk.lookup("k1")["score"] == 5

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        disk = ResultCache(tmp_path / "cache")
        disk.store("k1", {"score": 7})
        cache = TieredResultCache(disk, memory_entries=8)
        assert "k1" not in cache.memory
        record = cache.lookup("k1")
        assert record["score"] == 7
        assert "k1" in cache.memory  # promoted
        # Second lookup is served by memory (disk counters unchanged).
        disk_hits = cache.disk.stats().hits
        assert cache.lookup("k1")["score"] == 7
        assert cache.disk.stats().hits == disk_hits

    def test_memory_tier_survives_independent_of_disk_eviction(self, tmp_path):
        cache = TieredResultCache(tmp_path / "cache", memory_entries=1)
        cache.store("a", {"v": 1})
        cache.store("b", {"v": 2})  # evicts a from memory, not from disk
        assert "a" not in cache.memory
        assert cache.lookup("a")["v"] == 1  # served by the disk tier

    def test_clear_and_invalidate_propagate(self, tmp_path):
        cache = TieredResultCache(tmp_path / "cache")
        cache.store("a", {"algorithm": "X"})
        cache.store("b", {"algorithm": "Y"})
        removed = cache.invalidate(algorithm="X")
        assert removed == 1
        assert len(cache.memory) == 0  # memory cleared wholesale
        assert cache.lookup("b")["algorithm"] == "Y"
        assert cache.clear() >= 1
        assert cache.lookup("b") is None

    def test_contains_checks_both_tiers(self, tmp_path):
        disk = ResultCache(tmp_path / "cache")
        disk.store("only-disk", {})
        cache = TieredResultCache(disk)
        assert "only-disk" in cache
        cache.memory.store("only-memory", {})
        assert "only-memory" in cache
        assert "absent" not in cache

    def test_stats_combines_tiers(self, tmp_path):
        cache = TieredResultCache(tmp_path / "cache", memory_entries=16)
        cache.store("a", {})
        cache.lookup("a")
        cache.lookup("missing")
        stats = cache.stats()
        assert stats.memory_entries == 1
        assert stats.memory_hits == 1
        assert stats.disk.entries == 1
        assert stats.total_hits == stats.memory_hits + stats.disk.hits
        payload = stats.describe()
        assert payload["memory_max_entries"] == 16
        assert "disk" in payload
