"""Tests for the disk-backed result cache."""

from __future__ import annotations

import json

import pytest

from repro.engine import ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _record(algorithm="BioConsert", dataset_fingerprint="d" * 64, score=5):
    return {
        "kind": "algorithm",
        "algorithm": algorithm,
        "dataset_name": "d",
        "dataset_fingerprint": dataset_fingerprint,
        "score": score,
        "elapsed_seconds": 0.01,
        "within_budget": True,
        "error": None,
    }


class TestLookupStore:
    def test_miss_then_hit(self, cache):
        key = "a" * 64
        assert cache.lookup(key) is None
        cache.store(key, _record())
        record = cache.lookup(key)
        assert record is not None
        assert record["score"] == 5
        assert record["key"] == key
        assert "created_at" in record

    def test_contains_and_len(self, cache):
        assert "a" * 64 not in cache
        cache.store("a" * 64, _record())
        cache.store("b" * 64, _record())
        assert "a" * 64 in cache
        assert len(cache) == 2

    def test_corrupted_record_is_a_miss(self, cache):
        key = "a" * 64
        cache.store(key, _record())
        path = cache._path(key)
        path.write_text("{not json", encoding="utf-8")
        assert cache.lookup(key) is None

    def test_hit_miss_counters(self, cache):
        cache.lookup("a" * 64)
        cache.store("a" * 64, _record())
        cache.lookup("a" * 64)
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_store_is_atomic_json(self, cache):
        cache.store("a" * 64, _record())
        path = cache._path("a" * 64)
        assert json.loads(path.read_text(encoding="utf-8"))["algorithm"] == "BioConsert"
        # No temp files left behind.
        assert not list(cache.directory.glob("**/.tmp-*"))


class TestInvalidation:
    def test_invalidate_by_algorithm(self, cache):
        cache.store("a" * 64, _record(algorithm="BioConsert"))
        cache.store("b" * 64, _record(algorithm="BordaCount"))
        removed = cache.invalidate(algorithm="BioConsert")
        assert removed == 1
        assert cache.lookup("a" * 64) is None
        assert cache.lookup("b" * 64) is not None

    def test_invalidate_by_dataset_fingerprint(self, cache):
        cache.store("a" * 64, _record(dataset_fingerprint="x" * 64))
        cache.store("b" * 64, _record(dataset_fingerprint="y" * 64))
        assert cache.invalidate(dataset_fingerprint="x" * 64) == 1
        assert len(cache) == 1

    def test_invalidate_without_criteria_clears(self, cache):
        cache.store("a" * 64, _record())
        cache.store("b" * 64, _record())
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_clear(self, cache):
        cache.store("a" * 64, _record())
        assert cache.clear() == 1
        assert cache.stats().entries == 0


class TestStats:
    def test_stats_counts_entries_and_bytes(self, cache):
        assert cache.stats().entries == 0
        cache.store("a" * 64, _record())
        cache.store("b" * 64, _record())
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.size_bytes > 0
        assert stats.directory == str(cache.directory)

    def test_describe_keys(self, cache):
        description = cache.stats().describe()
        assert {"directory", "entries", "size_bytes", "hits", "misses", "hit_rate"} <= set(
            description
        )

    def test_iter_records(self, cache):
        cache.store("a" * 64, _record(algorithm="X"))
        cache.store("b" * 64, _record(algorithm="Y"))
        assert {record["algorithm"] for record in cache.iter_records()} == {"X", "Y"}
