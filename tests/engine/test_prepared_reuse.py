"""One preparation plan per dataset: engine batches, portfolio races, service.

The plan layer's whole point is build-once/reuse-everywhere; these tests
pin the reuse quantitatively with the build counter of
:mod:`repro.core.prepared` — a regression that silently reintroduces
per-run rebuilds fails here, not in a benchmark.
"""

from __future__ import annotations

import pytest

from repro.algorithms import BioConsert, BordaCount, KwikSort, MEDRank
from repro.algorithms.exact_dp import ExactSubsetDP
from repro.core.prepared import clear_plan_cache, plan_build_count
from repro.engine import BatchJob, ExecutionEngine, ThreadBackend
from repro.generators.uniform import uniform_dataset
from repro.service import PortfolioScheduler, ServiceFrontend, ServiceRequest


@pytest.fixture(autouse=True)
def _fresh_worker_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _suite():
    return {
        "BordaCount": BordaCount(),
        "MEDRank(0.5)": MEDRank(0.5),
        "KwikSort": KwikSort(seed=11),
        "BioConsert": BioConsert(),
    }


def _datasets(count=3):
    return [
        uniform_dataset(4, 10, rng=seed, name=f"reuse{seed}") for seed in range(count)
    ]


class TestEngineReuse:
    def test_serial_batch_builds_one_plan_per_dataset(self):
        datasets = _datasets()
        job = BatchJob.from_algorithms(
            datasets, _suite(), exact_algorithm=ExactSubsetDP(), exact_max_elements=10
        )
        before = plan_build_count()
        report = ExecutionEngine().run(job)
        assert plan_build_count() - before == len(datasets)
        assert report.executed_runs == len(datasets) * (len(_suite()) + 1)
        assert all(run.succeeded for run in report.runs)

    def test_thread_batch_builds_one_plan_per_dataset(self):
        datasets = _datasets()
        job = BatchJob.from_algorithms(datasets, _suite())
        before = plan_build_count()
        backend = ThreadBackend(max_workers=4)
        try:
            ExecutionEngine(backend).run(job)
        finally:
            backend.shutdown()
        assert plan_build_count() - before == len(datasets)

    def test_serial_equals_thread_report(self):
        datasets = _datasets()
        serial = ExecutionEngine().run(BatchJob.from_algorithms(datasets, _suite()))
        backend = ThreadBackend(max_workers=4)
        try:
            threaded = ExecutionEngine(backend).run(
                BatchJob.from_algorithms(datasets, _suite())
            )
        finally:
            backend.shutdown()
        assert serial.result_fingerprint() == threaded.result_fingerprint()

    def test_repeat_batches_reuse_instance_plans(self):
        datasets = _datasets()
        engine = ExecutionEngine()
        engine.run(BatchJob.from_algorithms(datasets, _suite()))
        before = plan_build_count()
        engine.run(BatchJob.from_algorithms(datasets, _suite()))
        assert plan_build_count() == before  # same instances, memoized plans

    def test_incomplete_dataset_still_reports_per_run_errors(self):
        from repro.core import Ranking
        from repro.datasets import Dataset

        broken = Dataset(
            [Ranking([["A"], ["B"]]), Ranking([["A"], ["C"]])], name="broken"
        )
        report = ExecutionEngine().run(BatchJob.from_algorithms([broken], _suite()))
        assert all(not run.succeeded for run in report.runs)
        assert all(run.error for run in report.runs)


class TestPortfolioReuse:
    def test_portfolio_builds_one_plan(self):
        dataset = uniform_dataset(5, 12, rng=3, name="portfolio-reuse")
        scheduler = PortfolioScheduler(budget_seconds=None, seed=5)
        before = plan_build_count()
        result = scheduler.run(dataset)
        assert plan_build_count() - before == 1
        assert result.score >= 0
        assert any(member.status == "finished" for member in result.members)

    def test_portfolio_matches_prior_behaviour(self):
        dataset = uniform_dataset(5, 10, rng=4, name="portfolio-eq")
        shared = PortfolioScheduler(
            budget_seconds=None, seed=5, algorithms=["BordaCount", "KwikSort", "BioConsert"]
        ).run(dataset)
        # Same candidates, each aggregated standalone: the racing outcome
        # must equal the best standalone member.
        from repro.algorithms.registry import make_algorithm

        standalone = min(
            int(make_algorithm(name, seed=5).aggregate(dataset).score)
            for name in ("BordaCount", "KwikSort", "BioConsert")
        )
        assert shared.score == standalone


class TestServiceReuse:
    def test_pinned_request_builds_one_plan(self):
        frontend = ServiceFrontend(cache=None, default_budget_seconds=None)
        dataset = uniform_dataset(4, 10, rng=6, name="service-reuse")
        before = plan_build_count()
        response = frontend.submit(
            ServiceRequest(dataset=dataset, algorithm="BordaCount")
        )
        assert plan_build_count() - before == 1
        assert response.source == "computed"
