"""Tests for the content-addressed fingerprints of the result cache."""

from __future__ import annotations

from repro.algorithms import BioConsert, KwikSort, MEDRank
from repro.datasets import Dataset
from repro.engine import (
    algorithm_parameters,
    dataset_fingerprint,
    parameter_hash,
    run_key,
)
from repro.experiments import AdaptiveExact
from repro.generators import uniform_dataset


class TestDatasetFingerprint:
    def test_content_addressed_ignores_name_and_metadata(self, paper_example_rankings):
        a = Dataset(paper_example_rankings, name="a")
        b = Dataset(paper_example_rankings, name="b", metadata={"source": "x"})
        assert dataset_fingerprint(a) == dataset_fingerprint(b)

    def test_different_content_differs(self):
        a = uniform_dataset(3, 6, rng=1, name="d")
        b = uniform_dataset(3, 6, rng=2, name="d")
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_ranking_order_matters(self, paper_example_rankings):
        a = Dataset(paper_example_rankings)
        b = Dataset(list(reversed(paper_example_rankings)))
        assert dataset_fingerprint(a) != dataset_fingerprint(b)


class TestParameterHash:
    def test_identical_configuration_matches(self):
        assert parameter_hash(MEDRank(0.5)) == parameter_hash(MEDRank(0.5))

    def test_changed_parameter_differs(self):
        assert parameter_hash(MEDRank(0.5)) != parameter_hash(MEDRank(0.7))

    def test_changed_seed_differs(self):
        assert parameter_hash(KwikSort(seed=1)) != parameter_hash(KwikSort(seed=2))

    def test_repeat_count_differs(self):
        assert parameter_hash(KwikSort(num_repeats=1)) != parameter_hash(
            KwikSort(num_repeats=20)
        )

    def test_nested_aggregators_covered(self):
        """Composite solvers fingerprint their inner configuration too."""
        a = AdaptiveExact(dp_max_elements=10)
        b = AdaptiveExact(dp_max_elements=12)
        assert parameter_hash(a) != parameter_hash(b)

    def test_parameters_include_class(self):
        payload = algorithm_parameters(BioConsert())
        assert "BioConsert" in payload["__class__"]


class TestRunKey:
    def _key(self, **overrides):
        base = dict(
            dataset_fingerprint="d" * 64,
            algorithm_name="BioConsert",
            parameters={"seed": 1},
            kind="algorithm",
            time_limit=None,
            version="1.0.0",
        )
        base.update(overrides)
        return run_key(**base)

    def test_stable(self):
        assert self._key() == self._key()

    def test_version_busts(self):
        assert self._key() != self._key(version="1.0.1")

    def test_time_limit_busts(self):
        assert self._key() != self._key(time_limit=60.0)

    def test_kind_distinguishes_optimal_runs(self):
        assert self._key() != self._key(kind="optimal")

    def test_dataset_and_algorithm_bust(self):
        assert self._key() != self._key(dataset_fingerprint="e" * 64)
        assert self._key() != self._key(algorithm_name="BordaCount")
        assert self._key() != self._key(parameters={"seed": 2})
