"""Tests for the execution engine: batching, caching, invalidation."""

from __future__ import annotations

import pytest

from repro.algorithms import BioConsert, BordaCount, ExactSubsetDP, MEDRank
from repro.engine import (
    BatchJob,
    EngineReport,
    ExecutionEngine,
    ResultCache,
    SerialBackend,
    dataset_fingerprint,
)
from repro.evaluation import EvaluationReport, evaluate_algorithms
from repro.experiments import format_table5, run_table5
from repro.generators import uniform_dataset


@pytest.fixture
def datasets():
    return [uniform_dataset(4, 6, rng=seed, name=f"d{seed}") for seed in range(2)]


def _suite():
    return {"BordaCount": BordaCount(), "BioConsert": BioConsert()}


def _engine(tmp_path):
    return ExecutionEngine(cache=ResultCache(tmp_path / "cache"))


class TestBatchJob:
    def test_specs_order_and_count(self, datasets):
        job = BatchJob.from_algorithms(
            datasets, _suite(), exact_algorithm=ExactSubsetDP(), exact_max_elements=10
        )
        specs = job.specs()
        assert len(specs) == job.num_runs == 2 * (1 + 2)
        # Per dataset: optimal first, then the suite in insertion order.
        assert [spec.kind for spec in specs[:3]] == ["optimal", "algorithm", "algorithm"]
        assert [spec.algorithm_name for spec in specs[:3]] == [
            "ExactSubsetDP",
            "BordaCount",
            "BioConsert",
        ]
        assert [spec.index for spec in specs] == list(range(len(specs)))

    def test_specs_copy_algorithms(self, datasets):
        suite = _suite()
        job = BatchJob.from_algorithms(datasets, suite)
        specs = job.specs()
        instances = [id(spec.algorithm) for spec in specs]
        assert len(set(instances)) == len(instances)
        assert id(suite["BordaCount"]) not in instances

    def test_exact_gated_by_max_elements(self, datasets):
        job = BatchJob.from_algorithms(
            datasets, _suite(), exact_algorithm=ExactSubsetDP(), exact_max_elements=2
        )
        assert all(spec.kind == "algorithm" for spec in job.specs())


class TestEngineReport:
    def test_is_an_evaluation_report(self, datasets):
        report = evaluate_algorithms(datasets, _suite())
        assert isinstance(report, EngineReport)
        assert isinstance(report, EvaluationReport)
        assert report.summary_rows()  # formatters keep working

    def test_execution_summary(self, datasets):
        report = evaluate_algorithms(datasets, _suite())
        summary = report.execution_summary()
        assert summary["executed_runs"] == 4
        assert summary["cached_runs"] == 0
        assert summary["backend"] == "serial"
        assert summary["wall_seconds"] > 0

    def test_fingerprint_ignores_timing(self, datasets):
        first = evaluate_algorithms(datasets, _suite())
        second = evaluate_algorithms(datasets, _suite())
        assert first.result_fingerprint() == second.result_fingerprint()


class TestCachingBehaviour:
    def test_warm_run_executes_nothing(self, datasets, tmp_path):
        kwargs = dict(exact_algorithm=ExactSubsetDP(), exact_max_elements=10)
        cold = evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path), **kwargs)
        warm = evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path), **kwargs)
        assert cold.executed_runs == 6 and cold.cached_runs == 0
        assert warm.executed_runs == 0 and warm.cached_runs == 6
        assert warm.result_fingerprint() == cold.result_fingerprint()
        assert all(run.cached for run in warm.runs)
        assert not any(run.cached for run in cold.runs)

    def test_changed_dataset_content_busts_cache(self, tmp_path):
        a = [uniform_dataset(3, 6, rng=1, name="d")]
        b = [uniform_dataset(3, 6, rng=2, name="d")]  # same name, new content
        evaluate_algorithms(a, _suite(), engine=_engine(tmp_path))
        report = evaluate_algorithms(b, _suite(), engine=_engine(tmp_path))
        assert report.executed_runs == 2
        assert report.cached_runs == 0

    def test_changed_algorithm_parameter_busts_cache(self, datasets, tmp_path):
        evaluate_algorithms(datasets, {"MEDRank": MEDRank(0.5)}, engine=_engine(tmp_path))
        report = evaluate_algorithms(
            datasets, {"MEDRank": MEDRank(0.7)}, engine=_engine(tmp_path)
        )
        assert report.executed_runs == len(datasets)

    def test_changed_seed_busts_cache(self, datasets, tmp_path):
        evaluate_algorithms(
            datasets, {"BioConsert": BioConsert(seed=1)}, engine=_engine(tmp_path)
        )
        report = evaluate_algorithms(
            datasets, {"BioConsert": BioConsert(seed=2)}, engine=_engine(tmp_path)
        )
        assert report.executed_runs == len(datasets)

    def test_changed_time_limit_busts_cache(self, datasets, tmp_path):
        evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path))
        report = evaluate_algorithms(
            datasets, _suite(), time_limit=120.0, engine=_engine(tmp_path)
        )
        assert report.executed_runs == 4

    def test_library_version_busts_cache(self, datasets, tmp_path, monkeypatch):
        evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path))
        import repro.engine.fingerprint as fingerprint_module

        monkeypatch.setattr(fingerprint_module, "__version__", "999.0.0")
        report = evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path))
        assert report.executed_runs == 4

    def test_explicit_invalidation_forces_reexecution(self, datasets, tmp_path):
        evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path))
        cache = ResultCache(tmp_path / "cache")
        removed = cache.invalidate(algorithm="BioConsert")
        assert removed == len(datasets)
        report = evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path))
        assert report.executed_runs == len(datasets)  # only BioConsert re-ran
        assert report.cached_runs == len(datasets)

    def test_invalidate_one_dataset(self, datasets, tmp_path):
        evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path))
        cache = ResultCache(tmp_path / "cache")
        assert cache.invalidate(
            dataset_fingerprint=dataset_fingerprint(datasets[0])
        ) == 2
        report = evaluate_algorithms(datasets, _suite(), engine=_engine(tmp_path))
        assert report.executed_runs == 2

    def test_over_budget_runs_are_not_cached(self, datasets, tmp_path):
        """Budget verdicts depend on this run's wall clock — never cache them."""
        report = evaluate_algorithms(
            datasets, _suite(), time_limit=0.0, engine=_engine(tmp_path)
        )
        assert all(not run.within_budget for run in report.runs)
        assert ResultCache(tmp_path / "cache").stats().entries == 0
        rerun = evaluate_algorithms(
            datasets, _suite(), time_limit=0.0, engine=_engine(tmp_path)
        )
        assert rerun.executed_runs == 4  # everything re-executes

    def test_exact_reference_errors_propagate(self, tmp_path):
        """A broken gap reference must fail loudly, not degrade to m-gaps."""
        big = [uniform_dataset(3, 18, rng=0, name="big")]
        with pytest.raises(Exception, match="at most"):
            evaluate_algorithms(
                big,
                _suite(),
                exact_algorithm=ExactSubsetDP(),
                exact_max_elements=None,
                engine=_engine(tmp_path),
            )

    def test_failed_runs_are_cached_too(self, tmp_path):
        """Deterministic library errors (size guards) are cache content."""
        big = [uniform_dataset(3, 18, rng=0, name="big")]
        suite = {"ExactSubsetDP": ExactSubsetDP()}
        cold = evaluate_algorithms(big, suite, engine=_engine(tmp_path))
        warm = evaluate_algorithms(big, suite, engine=_engine(tmp_path))
        assert not cold.runs[0].succeeded and cold.runs[0].error
        assert warm.executed_runs == 0
        assert warm.runs[0].error == cold.runs[0].error

    def test_session_counters_accumulate(self, datasets, tmp_path):
        engine = _engine(tmp_path)
        evaluate_algorithms(datasets, _suite(), engine=engine)
        evaluate_algorithms(datasets, _suite(), engine=engine)
        summary = engine.execution_summary()
        assert summary["executed_runs"] == 4
        assert summary["cached_runs"] == 4
        assert summary["cache_hit_rate"] == pytest.approx(0.5)


class TestExperimentIntegration:
    def test_table5_warm_rerun_is_byte_identical_with_zero_executions(self, tmp_path):
        names = ("BordaCount", "BioConsert", "MEDRank(0.5)")
        cold_engine = _engine(tmp_path)
        cold = run_table5("smoke", seed=7, algorithm_names=names, engine=cold_engine)
        warm_engine = _engine(tmp_path)
        warm = run_table5("smoke", seed=7, algorithm_names=names, engine=warm_engine)
        assert warm_engine.total_executed == 0
        assert warm_engine.total_cached == cold_engine.total_executed
        assert format_table5(warm) == format_table5(cold)

    def test_engine_map_bypasses_cache_but_counts_work(self, tmp_path):
        engine = _engine(tmp_path)
        assert engine.map(len, ["ab", "c"]) == [2, 1]
        assert engine.cache.stats().entries == 0
        assert engine.total_executed == 2  # figure2 batches are not "0 runs"
