"""The documentation builder: cross-reference checks and site rendering."""

from __future__ import annotations

import importlib.util
import shutil
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"


@pytest.fixture(scope="module")
def build_docs():
    spec = importlib.util.spec_from_file_location(
        "build_docs", DOCS_DIR / "build_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCrossReferences:
    def test_docs_tree_has_zero_problems(self, build_docs):
        assert build_docs.check(DOCS_DIR) == []

    def test_nav_covers_all_four_subsystems(self, build_docs):
        titles = " ".join(title for _, title in build_docs.NAV).lower()
        for subsystem in ("core", "engine", "workload", "serving"):
            assert subsystem in titles

    def test_broken_link_is_reported(self, build_docs, tmp_path):
        copy = tmp_path / "docs"
        shutil.copytree(DOCS_DIR, copy)
        page = copy / "index.md"
        page.write_text(
            page.read_text() + "\n\nSee [nowhere](missing-page.md).\n"
        )
        problems = build_docs.check(copy)
        assert any("missing-page.md" in problem for problem in problems)

    def test_broken_anchor_is_reported(self, build_docs, tmp_path):
        copy = tmp_path / "docs"
        shutil.copytree(DOCS_DIR, copy)
        page = copy / "index.md"
        page.write_text(
            page.read_text() + "\n\nSee [bad](architecture.md#no-such-heading).\n"
        )
        problems = build_docs.check(copy)
        assert any("no-such-heading" in problem for problem in problems)

    def test_stale_api_reference_is_reported(self, build_docs, tmp_path):
        copy = tmp_path / "docs"
        shutil.copytree(DOCS_DIR, copy)
        page = copy / "index.md"
        page.write_text(
            page.read_text() + "\n\nUses `repro.engine.NoSuchThing`.\n"
        )
        problems = build_docs.check(copy)
        assert any("NoSuchThing" in problem for problem in problems)

    def test_api_reference_resolution(self, build_docs):
        assert build_docs._resolvable("repro.engine.TieredResultCache")
        assert build_docs._resolvable("repro.service.ServiceFrontend.submit_batch")
        assert not build_docs._resolvable("repro.engine.DoesNotExist")


class TestSiteBuild:
    def test_build_renders_every_nav_page(self, build_docs, tmp_path):
        site = build_docs.build(DOCS_DIR, tmp_path / "site")
        for path, _ in build_docs.NAV:
            rendered = site / (path[: -len(".md")] + ".html")
            assert rendered.is_file(), rendered
            text = rendered.read_text()
            assert "<nav>" in text and 'class="current"' in text

    def test_build_emits_module_diagram(self, build_docs, tmp_path):
        import xml.dom.minidom

        site = build_docs.build(DOCS_DIR, tmp_path / "site")
        svg = (site / "assets" / "architecture.svg").read_text()
        xml.dom.minidom.parseString(svg)  # well-formed
        for subsystem in ("repro.core", "repro.engine", "repro.workloads", "repro.service"):
            assert subsystem in svg

    def test_markdown_links_rewritten_to_html(self, build_docs, tmp_path):
        site = build_docs.build(DOCS_DIR, tmp_path / "site")
        index = (site / "index.html").read_text()
        assert 'href="architecture.html"' in index
        assert ".md" not in index.split("<main>")[1].replace("index.md", "")

    def test_renderer_handles_tables_and_code(self, build_docs):
        body = build_docs.render_markdown(
            "# Title\n\n| A | B |\n| --- | --- |\n| 1 | 2 |\n\n```python\nx = 1\n```\n"
        )
        assert '<h1 id="title">' in body
        assert "<table>" in body and "<td>1</td>" in body
        assert '<code class="language-python">' in body
