"""Client resilience: transparent reconnect across a server restart.

The :class:`AsyncHttpClient` contract split in two observable behaviours:

* **transport retry** (always on) — a request written to a keep-alive
  connection the server has since closed is replayed once on a fresh
  connection;
* **connect retry** (opt-in via ``connect_retries``) — a refused
  connection is retried with exponential backoff, long enough to bridge
  the window where a supervisor is restarting the server.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.generators import uniform_dataset
from repro.service.http import AsyncHttpClient, HttpAggregationServer


def _server(tmp_path, *, port=0):
    return HttpAggregationServer(
        str(tmp_path / "cache"),
        shards=1,
        seed=11,
        default_budget_seconds=0.05,
        port=port,
    )


def test_transport_retry_rides_through_server_restart(tmp_path):
    async def scenario():
        dataset = uniform_dataset(4, 6, 31)
        first = _server(tmp_path)
        await first.start()
        port = first.port
        client = AsyncHttpClient(first.host, port)
        try:
            code, payload = await client.aggregate(dataset)
            assert code == 200 and payload["status"] == "ok"
            # The client still holds the keep-alive connection when the
            # server goes away and a new one binds the same port.
            await first.drain()
            second = _server(tmp_path, port=port)
            await second.start()
            try:
                code, payload = await client.aggregate(dataset)
                assert code == 200 and payload["status"] == "ok"
                assert client.retries == 1  # one transparent transport retry
            finally:
                await second.drain()
        finally:
            await client.close()

    asyncio.run(scenario())


def test_connect_retries_bridge_a_restart_gap(tmp_path):
    async def scenario():
        dataset = uniform_dataset(4, 6, 32)
        first = _server(tmp_path)
        await first.start()
        port = first.port
        await first.drain()  # the port is now refused

        async def restart_later():
            await asyncio.sleep(0.2)
            server = _server(tmp_path, port=port)
            await server.start()
            return server

        revival = asyncio.create_task(restart_later())
        client = AsyncHttpClient(
            "127.0.0.1", port, connect_retries=8, connect_backoff_seconds=0.05
        )
        try:
            # Refused now; the backoff loop must outlast the restart gap.
            code, payload = await client.aggregate(dataset)
            assert code == 200 and payload["status"] == "ok"
            assert client.retries >= 1
        finally:
            await client.close()
            server = await revival
            await server.drain()

    asyncio.run(scenario())


def test_zero_connect_retries_fails_fast(tmp_path):
    async def scenario():
        server = _server(tmp_path)
        await server.start()
        port = server.port
        await server.drain()
        client = AsyncHttpClient("127.0.0.1", port)
        with pytest.raises(ConnectionRefusedError):
            await client.healthz()
        assert client.retries == 0

    asyncio.run(scenario())
