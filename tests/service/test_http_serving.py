"""Socket-path serving tests: an in-process server on an ephemeral port.

Every test starts a real :class:`~repro.service.http.HttpAggregationServer`
on ``127.0.0.1:0`` (the kernel picks a free port) and drives it through
real connections with :class:`~repro.service.http.AsyncHttpClient` — the
full wire path, no mocked transport.

Timing-sensitive behaviours (coalescing, deadline expiry, admission
refusal, the drain window) are made deterministic by wrapping a shard
frontend's ``submit`` in a fixed sleep: the shard is then *known* to be
busy when the next request arrives, instead of hoping a real compute is
slow enough.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.datasets.io import dumps, format_ranking
from repro.generators import uniform_dataset
from repro.service.http import AsyncHttpClient, HttpAggregationServer


def _slow_down(server: HttpAggregationServer, shard: str, delay: float) -> None:
    """Make one shard's submit path take at least ``delay`` seconds."""
    frontend = server.pool.frontend_of(shard)
    original = frontend.submit

    def slow_submit(request, **kwargs):
        time.sleep(delay)
        return original(request, **kwargs)

    frontend.submit = slow_submit


async def _start(tmp_path, **kwargs) -> tuple[HttpAggregationServer, AsyncHttpClient]:
    defaults = dict(shards=2, seed=11, default_budget_seconds=0.05)
    defaults.update(kwargs)
    server = HttpAggregationServer(str(tmp_path / "cache"), **defaults)
    await server.start()
    return server, AsyncHttpClient(server.host, server.port)


def test_requests_route_by_dataset_fingerprint(tmp_path):
    async def scenario():
        server, client = await _start(tmp_path, shards=3)
        try:
            for index in range(6):
                dataset = uniform_dataset(4, 6, 100 + index)
                expected = server.pool.route(dataset.content_fingerprint())
                first = second = None
                for attempt in range(2):
                    code, payload = await client.aggregate(dataset)
                    assert code == 200 and payload["status"] == "ok"
                    if attempt == 0:
                        first = payload["shard"]
                    else:
                        second = payload["shard"]
                # Same fingerprint → same shard, and the shard the ring
                # predicts: routing is a pure function of content.
                assert first == second == expected
        finally:
            await client.close()
            await server.drain()

    asyncio.run(scenario())


def test_identical_requests_coalesce_across_connections(tmp_path):
    async def scenario():
        server, leader_client = await _start(tmp_path, shards=1)
        follower_client = AsyncHttpClient(server.host, server.port)
        try:
            _slow_down(server, "shard-0", 0.3)
            dataset = uniform_dataset(4, 6, 7)
            leader_task = asyncio.create_task(leader_client.aggregate(dataset))
            await asyncio.sleep(0.05)  # leader is now inside its 0.3s submit
            follower_code, follower = await follower_client.aggregate(dataset)
            leader_code, leader = await leader_task
            assert leader_code == follower_code == 200
            assert leader["source"] == "computed"
            assert follower["source"] == "coalesced"
            # The follower shares the leader's answer verbatim.
            assert follower["consensus"] == leader["consensus"]
            assert follower["score"] == leader["score"]
            assert follower["execution_seconds"] == 0.0
            # And both are accounted in the shard frontend's registry.
            stats = server.pool.frontend_of("shard-0").describe()
            assert stats["requests"] == 2
        finally:
            await leader_client.close()
            await follower_client.close()
            await server.drain()

    asyncio.run(scenario())


def test_deadline_expires_in_shard_queue(tmp_path):
    async def scenario():
        server, blocker_client = await _start(tmp_path, shards=1)
        late_client = AsyncHttpClient(server.host, server.port)
        try:
            _slow_down(server, "shard-0", 0.3)
            blocker_task = asyncio.create_task(
                blocker_client.aggregate(uniform_dataset(4, 6, 1))
            )
            await asyncio.sleep(0.05)
            # A *different* dataset (no coalescing) with a deadline far
            # shorter than the 0.3s the shard will stay busy.
            code, payload = await late_client.aggregate(
                uniform_dataset(4, 6, 2), deadline_seconds=0.05
            )
            assert code == 504
            assert payload["status"] == "deadline"
            assert payload["consensus"] is None
            assert "deadline" in payload["error"]
            blocker_code, blocker = await blocker_task
            assert blocker_code == 200 and blocker["status"] == "ok"
            # The expiry is accounted in the shard frontend's registry.
            assert (
                server.pool.frontend_of("shard-0").describe()["deadline_misses"]
                == 1
            )
            assert server.stats.deadline_expired == 1
        finally:
            await blocker_client.close()
            await late_client.close()
            await server.drain()

    asyncio.run(scenario())


def test_full_queue_answers_structured_overloaded(tmp_path):
    async def scenario():
        server, blocker_client = await _start(tmp_path, shards=1, max_pending=1)
        burst_client = AsyncHttpClient(server.host, server.port)
        try:
            _slow_down(server, "shard-0", 0.3)
            blocker_task = asyncio.create_task(
                blocker_client.aggregate(uniform_dataset(4, 6, 1))
            )
            await asyncio.sleep(0.05)  # the one admission slot is taken
            code, payload = await burst_client.aggregate(uniform_dataset(4, 6, 2))
            assert code == 503
            assert payload["status"] == "overloaded"
            assert payload["source"] == "rejected"
            assert "max_pending=1" in payload["error"]
            blocker_code, _ = await blocker_task
            assert blocker_code == 200
            assert server.stats.rejected == 1
            assert server.pool.frontend_of("shard-0").describe()["rejected"] == 1
        finally:
            await blocker_client.close()
            await burst_client.close()
            await server.drain()

    asyncio.run(scenario())


def test_live_mutate_repair_republish_round_trip(tmp_path):
    async def scenario():
        server, client = await _start(tmp_path)
        try:
            dataset = uniform_dataset(5, 8, 3)
            text = dumps(dataset, include_header=False)
            code, opened = await client.request(
                "POST",
                "/live/rt/open",
                {"dataset": text, "budget_seconds": 0.05},
            )
            assert code == 200 and opened["num_rankings"] == 5

            line = format_ranking(dataset.rankings[0])
            code, mutated = await client.request(
                "POST", "/live/rt/mutate", {"op": "add", "ranking": line}
            )
            assert code == 200
            assert mutated["generation"] == 1
            assert mutated["num_rankings"] == 6
            assert mutated["stale"] is True

            code, repaired = await client.request("POST", "/live/rt/repair", {})
            assert code == 200
            assert repaired["generation"] == 1
            assert repaired["consensus"]

            # Re-publish contract: a request for the *mutated* content,
            # pinned to the session's algorithm and budget, must be a
            # cache hit on its shard — the repair already paid for it.
            from repro.core.live import LiveDataset

            live = LiveDataset(dataset.rankings, name="rt")
            live.add_ranking(dataset.rankings[0])
            code, served = await client.aggregate(
                live.snapshot(), algorithm="BioConsert", budget_seconds=0.05
            )
            assert code == 200
            assert served["source"] in ("disk", "memory"), served["source"]
            assert served["score"] == repaired["score"]

            # The serve endpoint agrees the session is fresh again.
            code, current = await client.request("GET", "/live/rt")
            assert code == 200
            assert current["generation"] == 1
            assert current["score"] == repaired["score"]
        finally:
            await client.close()
            await server.drain()

    asyncio.run(scenario())


def test_graceful_drain_completes_inflight_requests(tmp_path):
    async def scenario():
        server, slow_client = await _start(tmp_path, shards=1)
        bystander = AsyncHttpClient(server.host, server.port)
        try:
            code, _ = await bystander.healthz()  # establish the connection
            assert code == 200
            _slow_down(server, "shard-0", 0.3)
            inflight_task = asyncio.create_task(
                slow_client.aggregate(uniform_dataset(4, 6, 1))
            )
            await asyncio.sleep(0.05)
            drain_task = asyncio.create_task(server.drain())
            await asyncio.sleep(0.05)
            # New connections are refused: the listener is closed.
            with pytest.raises(OSError):
                probe = AsyncHttpClient(server.host, server.port)
                await probe.healthz()
            # The kept-alive connection gets a structured draining answer.
            code, payload = await bystander.aggregate(uniform_dataset(4, 6, 2))
            assert code == 503
            assert payload["status"] == "draining"
            # The request that was already executing completes normally.
            code, payload = await inflight_task
            assert code == 200
            assert payload["status"] == "ok"
            assert payload["consensus"] is not None
            await drain_task
            assert server.draining
            assert server.stats.rejected == 1
        finally:
            await slow_client.close()
            await bystander.close()

    asyncio.run(scenario())


def test_process_mode_serves_and_caches(tmp_path):
    async def scenario():
        server, client = await _start(tmp_path, shards=2, mode="process")
        try:
            dataset = uniform_dataset(4, 6, 9)
            code, first = await client.aggregate(dataset)
            assert code == 200 and first["source"] == "computed"
            code, second = await client.aggregate(dataset)
            assert code == 200 and second["source"] in ("memory", "disk")
            assert second["score"] == first["score"]
            # /stats reaches across the process boundary for accounting.
            code, stats = await client.server_stats()
            frontends = stats["pool"]["by_shard"]
            assert sum(entry["frontend"]["requests"] for entry in frontends.values()) == 2
        finally:
            await client.close()
            await server.drain()

    asyncio.run(scenario())


def test_malformed_bodies_answer_structured_400(tmp_path):
    async def scenario():
        server, client = await _start(tmp_path)
        try:
            code, payload = await client.request("POST", "/aggregate", {})
            assert code == 400 and "dataset" in payload["error"]
            code, payload = await client.request(
                "POST", "/aggregate", {"dataset": "[[A],[B]]", "priority": "bogus"}
            )
            assert code == 400 and "priority" in payload["error"]
            code, payload = await client.request("GET", "/nowhere")
            assert code == 404
            assert server.stats.bad_requests == 2
        finally:
            await client.close()
            await server.drain()

    asyncio.run(scenario())


def test_oversized_body_answers_structured_413(tmp_path):
    async def scenario():
        server, client = await _start(tmp_path)
        try:
            # Declare a body beyond the cap; the server must refuse on the
            # headers alone — reading 64 MiB it will then throw away would
            # be a memory-pressure attack surface.
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            declared = 64 * 1024 * 1024 + 1
            writer.write(
                (
                    "POST /aggregate HTTP/1.1\r\n"
                    f"Host: {server.host}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {declared}\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            assert b"413" in status_line
            headers = {}
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            # The connection is poisoned (unread body bytes may follow),
            # so the server closes it after answering.
            assert headers.get("connection", "").lower() == "close"
            body = await reader.readexactly(int(headers["content-length"]))
            import json as _json

            payload = _json.loads(body)
            assert payload["status"] == "too_large"
            writer.close()
            assert server.stats.too_large == 1
            # The server stays healthy for well-formed traffic.
            code, payload = await client.aggregate(uniform_dataset(4, 6, 41))
            assert code == 200 and payload["status"] == "ok"
        finally:
            await client.close()
            await server.drain()

    asyncio.run(scenario())


def test_stale_unix_socket_is_replaced_and_cleaned_up(tmp_path):
    async def scenario():
        socket_path = tmp_path / "repro.sock"
        # A crashed prior run left a dead socket file behind.
        socket_path.touch()
        server = HttpAggregationServer(
            str(tmp_path / "cache"),
            shards=1,
            seed=11,
            default_budget_seconds=0.05,
            unix_socket=socket_path,
        )
        await server.start()
        client = AsyncHttpClient(unix_socket=str(socket_path))
        try:
            code, payload = await client.healthz()
            assert code == 200 and payload["status"] == "ok"
            # A second server must refuse the *live* socket, not steal it.
            squatter = HttpAggregationServer(
                str(tmp_path / "cache2"),
                shards=1,
                seed=11,
                unix_socket=socket_path,
            )
            with pytest.raises(OSError, match="live server"):
                await squatter.start()
            await squatter.drain()
        finally:
            await client.close()
            await server.drain()
        # A clean shutdown removes its socket file.
        assert not socket_path.exists()

    asyncio.run(scenario())
