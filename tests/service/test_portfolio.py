"""PortfolioScheduler: budget honouring, winner selection, cancellation."""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.core.kemeny import generalized_kemeny_score
from repro.generators import uniform_dataset
from repro.service import PortfolioScheduler


@pytest.fixture(scope="module")
def small_dataset():
    return uniform_dataset(5, 10, 13)


@pytest.fixture(scope="module")
def medium_dataset():
    return uniform_dataset(7, 20, 13)


class TestCandidateSelection:
    def test_guidance_candidates_include_floor(self, small_dataset):
        scheduler = PortfolioScheduler(budget_seconds=1.0)
        names = scheduler.candidates(small_dataset)
        assert "BordaCount" in names
        assert names[0] == "BioConsert"  # guidance primary for balanced

    def test_explicit_candidates_bypass_guidance(self, small_dataset):
        scheduler = PortfolioScheduler(
            budget_seconds=1.0, algorithms=["KwikSort"], include_floor=False
        )
        assert scheduler.candidates(small_dataset) == ["KwikSort"]

    def test_optimality_priority_includes_exact_on_small_datasets(self, small_dataset):
        scheduler = PortfolioScheduler(budget_seconds=10.0, priority="optimality")
        assert "ExactAlgorithm" in scheduler.candidates(small_dataset)

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            PortfolioScheduler(budget_seconds=-1.0)


class TestBudgetedRuns:
    def test_tight_budget_returns_valid_consensus(self, medium_dataset):
        result = PortfolioScheduler(budget_seconds=0.05, seed=1).run(medium_dataset)
        assert result.consensus.domain == medium_dataset.universe()
        assert result.score == generalized_kemeny_score(
            result.consensus, list(medium_dataset.rankings)
        )

    def test_zero_budget_still_answers(self, medium_dataset):
        result = PortfolioScheduler(budget_seconds=0.0, seed=1).run(medium_dataset)
        assert result.consensus.domain == medium_dataset.universe()
        # The one-shot floor is skipped at zero budget, but every anytime
        # racer takes its guaranteed first increment.
        anytime = [m for m in result.members if m.mode == "anytime"]
        assert anytime and all(m.steps >= 1 for m in anytime)

    def test_zero_budget_with_only_one_shot_members_still_answers(self, small_dataset):
        # No anytime racer and an exhausted budget: the floor algorithm is
        # force-run so the contract "a deadline always yields a valid
        # consensus" holds.
        result = PortfolioScheduler(
            budget_seconds=0.0, algorithms=["BordaCount"], seed=1
        ).run(small_dataset)
        assert result.consensus.domain == small_dataset.universe()
        forced = [m for m in result.members if m.reason and "forced floor" in m.reason]
        assert forced and forced[0].status == "finished"

    def test_exponential_solver_skipped_when_budget_cannot_cover_it(self):
        dataset = uniform_dataset(7, 16, 5)
        scheduler = PortfolioScheduler(
            budget_seconds=0.5, priority="optimality", seed=1
        )
        result = scheduler.run(dataset)
        exact = [m for m in result.members if m.algorithm == "ExactAlgorithm"]
        assert exact and exact[0].status == "skipped"
        assert "estimated cost" in exact[0].reason
        assert result.consensus.domain == dataset.universe()
        assert result.elapsed_seconds < 5.0

    def test_generous_budget_matches_best_single_algorithm(self, small_dataset):
        scheduler = PortfolioScheduler(
            budget_seconds=None,
            algorithms=["BioConsert", "Chanas", "BordaCount"],
            include_floor=False,
            seed=7,
        )
        result = scheduler.run(small_dataset)
        single_scores = {
            name: make_algorithm(name, seed=7).aggregate(small_dataset).score
            for name in ("BioConsert", "Chanas", "BordaCount")
        }
        assert result.score == min(single_scores.values())
        assert single_scores[result.algorithm] == result.score

    def test_members_are_fully_accounted(self, small_dataset):
        result = PortfolioScheduler(budget_seconds=None, seed=7).run(small_dataset)
        names = [m.algorithm for m in result.members]
        assert sorted(names) == sorted(set(names))  # each candidate once
        for member in result.members:
            assert member.status in (
                "finished",
                "cancelled",
                "skipped",
                "over-budget",
                "failed",
            )
        payload = result.describe()
        assert payload["algorithm"] == result.algorithm
        assert len(payload["members"]) == len(result.members)

    def test_determinism_for_fixed_seed(self, small_dataset):
        first = PortfolioScheduler(budget_seconds=None, seed=11).run(small_dataset)
        second = PortfolioScheduler(budget_seconds=None, seed=11).run(small_dataset)
        assert first.score == second.score
        assert first.algorithm == second.algorithm
        assert first.consensus == second.consensus
