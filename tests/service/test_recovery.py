"""Session crash recovery: journaled mutations, replay, warm-started repair.

The contract under test is the ISSUE 10 durability invariant: every
*acknowledged* mutation survives the process, replay reconstructs pairwise
weights byte-identical to :func:`~repro.core.prepared.prepare_rankings`
over the same history, and recovery resumes serving warm-started from the
last published consensus instead of solving cold.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import JournalError, prepare_rankings
from repro.core.ranking import Ranking
from repro.datasets.io import dumps, format_ranking
from repro.generators import uniform_dataset
from repro.service.frontend import ServiceFrontend
from repro.service.http import AsyncHttpClient, HttpAggregationServer
from repro.service.live import LiveAggregationSession
from repro.testing.faults import FaultInjector, FaultRule, TransientRunError, injected


def _session(tmp_path, **kwargs):
    dataset = uniform_dataset(5, 8, 2015)
    defaults = dict(budget_seconds=0.05, seed=7, journal_dir=tmp_path / "wal")
    defaults.update(kwargs)
    return LiveAggregationSession(list(dataset.rankings), **defaults), dataset


def test_recovered_session_matches_crashed_state(tmp_path):
    session, dataset = _session(tmp_path)
    first = session.repair()
    session.add_ranking(dataset.rankings[0])
    session.update_ranking(2, dataset.rankings[1])
    second = session.repair()
    session.remove_ranking(0)
    # No close(): simulate the process dying with the journal mid-flight.
    # Appends are flushed per record, so everything acknowledged is on disk.
    recovered = LiveAggregationSession.recover(
        tmp_path / "wal", budget_seconds=0.05, seed=7
    )
    assert recovered.dataset.content_fingerprint() == session.dataset.content_fingerprint()
    assert recovered.dataset.generation == session.dataset.generation
    assert recovered.consensus == second.consensus
    assert recovered.score == second.score
    assert recovered.algorithm_name == session.algorithm_name
    assert recovered.is_stale  # the remove happened after the last repair
    fresh = prepare_rankings(list(session.dataset.rankings))
    weights = recovered.dataset.weights()
    assert weights.before_matrix.tobytes() == fresh.weights.before_matrix.tobytes()
    assert weights.tied_matrix.tobytes() == fresh.weights.tied_matrix.tobytes()
    report = recovered.repair()
    assert report.warm_start
    assert not recovered.is_stale
    assert first.consensus is not None  # silence unused-variable linters
    recovered.close()


def test_failed_journal_append_rolls_the_mutation_back(tmp_path):
    session, dataset = _session(tmp_path)
    before_fingerprint = session.dataset.content_fingerprint()
    before_generation = session.dataset.generation
    injector = FaultInjector(
        seed=5, rules=(FaultRule(site="journal.append", kind="exception"),)
    )
    with injected(injector):
        with pytest.raises(TransientRunError):
            session.add_ranking(dataset.rankings[0])
        with pytest.raises(TransientRunError):
            session.remove_ranking(1)
        with pytest.raises(TransientRunError):
            session.update_ranking(0, dataset.rankings[3])
    # Un-acknowledged mutations left no trace: content identical, and the
    # recovered state agrees (acknowledged ⊆ journaled).
    assert session.dataset.content_fingerprint() == before_fingerprint
    assert session.dataset.num_rankings == 5
    session.close()
    recovered = LiveAggregationSession.recover(tmp_path / "wal")
    assert recovered.dataset.content_fingerprint() == before_fingerprint
    assert recovered.dataset.generation == before_generation
    recovered.close()
    fresh = prepare_rankings(list(session.dataset.rankings))
    assert (
        session.dataset.weights().before_matrix.tobytes()
        == fresh.weights.before_matrix.tobytes()
    )


def test_compaction_keeps_recovery_identical(tmp_path):
    session, dataset = _session(tmp_path, compact_every=3)
    for step in range(4):
        session.add_ranking(dataset.rankings[step % len(dataset.rankings)])
        session.repair()  # compaction triggers inside repair
    snapshots = list((tmp_path / "wal").glob("snapshot-*.json"))
    assert snapshots, "compact_every never produced a snapshot"
    session.close()
    recovered = LiveAggregationSession.recover(tmp_path / "wal")
    assert (
        recovered.dataset.content_fingerprint()
        == session.dataset.content_fingerprint()
    )
    assert recovered.consensus == session.consensus
    assert not recovered.is_stale
    recovered.close()


def test_fresh_session_refuses_existing_journal(tmp_path):
    session, dataset = _session(tmp_path)
    session.close()
    with pytest.raises(JournalError, match="recover"):
        _session(tmp_path)


def test_recovery_warm_start_republishes_to_frontend(tmp_path):
    frontend = ServiceFrontend(
        str(tmp_path / "cache"), default_budget_seconds=0.05, seed=7
    )
    session, dataset = _session(tmp_path, frontend=frontend)
    session.repair()
    session.add_ranking(dataset.rankings[1])
    session.close()
    recovered = LiveAggregationSession.recover(
        tmp_path / "wal", frontend=frontend, budget_seconds=0.05, seed=7
    )
    report = recovered.repair()
    assert report.warm_start
    # The repaired consensus is published: a frontend request for the
    # post-recovery content is a cache hit.
    from repro.service.frontend import ServiceRequest

    response = frontend.submit(
        ServiceRequest(
            dataset=recovered.dataset.snapshot(),
            algorithm=recovered.algorithm_name,
            budget_seconds=0.05,
        )
    )
    assert response.source in ("memory", "disk")
    assert response.score == report.score
    recovered.close()


def test_server_restart_recovers_live_sessions(tmp_path):
    """The HTTP layer: journaled sessions survive a full server restart."""

    async def scenario():
        dataset = uniform_dataset(5, 8, 6)
        text = dumps(dataset, include_header=False)
        journal_root = tmp_path / "journals"
        server = HttpAggregationServer(
            str(tmp_path / "cache"),
            shards=1,
            seed=11,
            default_budget_seconds=0.05,
            journal_dir=journal_root,
        )
        await server.start()
        client = AsyncHttpClient(server.host, server.port)
        code, opened = await client.request(
            "POST", "/live/rt/open", {"dataset": text, "budget_seconds": 0.05}
        )
        assert code == 200
        line = format_ranking(dataset.rankings[0])
        code, _ = await client.request(
            "POST", "/live/rt/mutate", {"op": "add", "ranking": line}
        )
        assert code == 200
        code, repaired = await client.request("POST", "/live/rt/repair", {})
        assert code == 200
        code, mutated = await client.request(
            "POST", "/live/rt/mutate", {"op": "remove", "index": 0}
        )
        assert code == 200
        expected_fingerprint = mutated["fingerprint"]
        await client.close()
        await server.drain()

        # A brand-new server process over the same journal directory.
        revived = HttpAggregationServer(
            str(tmp_path / "cache"),
            shards=1,
            seed=11,
            default_budget_seconds=0.05,
            journal_dir=journal_root,
        )
        await revived.start()
        assert revived.recovered_sessions == ("rt",)
        client = AsyncHttpClient(revived.host, revived.port)
        try:
            code, stats = await client.server_stats()
            assert code == 200
            entry = stats["live"]["rt"]
            assert entry["journaled"] and entry["recovered"]
            # Startup recovery already warm-repaired the stale tail.
            assert entry["stale"] is False
            code, served = await client.request("GET", "/live/rt")
            assert code == 200
            assert served["fingerprint"] == expected_fingerprint
            assert served["generation"] == mutated["generation"]
            assert served["consensus"]
            # The recovered session keeps accepting journaled writes.
            code, _ = await client.request(
                "POST", "/live/rt/mutate", {"op": "add", "ranking": line}
            )
            assert code == 200
        finally:
            await client.close()
            await revived.drain()
        assert repaired["score"] is not None

    asyncio.run(scenario())


def test_recovery_survives_torn_tail_from_kill(tmp_path):
    """A torn trailing record — half a write at death — is truncated."""
    session, dataset = _session(tmp_path)
    session.add_ranking(dataset.rankings[0])
    session.close()
    segment = sorted((tmp_path / "wal").glob("segment-*.log"))[-1]
    with open(segment, "ab") as handle:
        handle.write(b"ffff0000 {\"type\": \"add\", \"trunc")
    recovered = LiveAggregationSession.recover(tmp_path / "wal")
    assert recovered.dataset.content_fingerprint() == session.dataset.content_fingerprint()
    assert recovered.dataset.num_rankings == 6
    recovered.close()
    ranking = Ranking([[e] for e in recovered.dataset.elements])
    assert ranking is not None
