"""ServiceFrontend: caching tiers, coalescing, accounting."""

from __future__ import annotations

import pytest

from repro.core.kemeny import generalized_kemeny_score
from repro.engine import ResultCache, TieredResultCache
from repro.generators import markov_dataset, uniform_dataset
from repro.service import ServiceFrontend, ServiceRequest


@pytest.fixture(scope="module")
def dataset():
    return uniform_dataset(5, 9, 21)


@pytest.fixture(scope="module")
def other_dataset():
    return markov_dataset(5, 9, 200, 21)


class TestSubmit:
    def test_first_computed_then_memory_hit(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        first = frontend.submit(ServiceRequest(dataset, request_id="a"))
        second = frontend.submit(ServiceRequest(dataset, request_id="b"))
        assert first.source == "computed"
        assert second.source == "memory"
        assert second.cache_hit
        assert first.request_id == "a" and second.request_id == "b"
        assert first.consensus == second.consensus
        assert first.score == second.score

    def test_response_is_a_valid_scored_consensus(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        response = frontend.submit(ServiceRequest(dataset))
        assert response.consensus.domain == dataset.universe()
        assert response.score == generalized_kemeny_score(
            response.consensus, list(dataset.rankings)
        )

    def test_disk_hit_across_frontend_restarts(self, tmp_path, dataset):
        directory = tmp_path / "cache"
        ServiceFrontend(directory, default_budget_seconds=0.5).submit(
            ServiceRequest(dataset)
        )
        warm = ServiceFrontend(directory, default_budget_seconds=0.5)
        response = warm.submit(ServiceRequest(dataset))
        assert response.source == "disk"
        # Promoted to memory: the next lookup never touches the disk.
        assert warm.submit(ServiceRequest(dataset)).source == "memory"

    def test_plain_disk_cache_is_accepted(self, tmp_path, dataset):
        cache = ResultCache(tmp_path / "cache")
        frontend = ServiceFrontend(cache, default_budget_seconds=0.5)
        assert frontend.submit(ServiceRequest(dataset)).source == "computed"
        assert frontend.submit(ServiceRequest(dataset)).source == "disk"

    def test_no_cache_always_computes(self, dataset):
        frontend = ServiceFrontend(None, default_budget_seconds=0.2)
        assert frontend.submit(ServiceRequest(dataset)).source == "computed"
        assert frontend.submit(ServiceRequest(dataset)).source == "computed"

    def test_different_parameters_do_not_alias(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        frontend.submit(ServiceRequest(dataset, priority="balanced"))
        speed = frontend.submit(ServiceRequest(dataset, priority="speed"))
        assert speed.source == "computed"  # distinct cache key

    def test_pinned_algorithm(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        response = frontend.submit(ServiceRequest(dataset, algorithm="BordaCount"))
        assert response.algorithm == "BordaCount"
        assert response.source == "computed"
        again = frontend.submit(ServiceRequest(dataset, algorithm="BordaCount"))
        assert again.source == "memory"

    def test_cache_hit_preserves_element_types(self, tmp_path):
        # A text round-trip would coerce '01' to the int 1; the cached
        # record must reproduce the computed consensus exactly.
        from repro.core.ranking import Ranking
        from repro.datasets.dataset import Dataset

        dataset = Dataset(
            [
                Ranking([["01"], ["B"], ["2"]]),
                Ranking([["01"], ["2", "B"]]),
                Ranking([["B"], ["01"], ["2"]]),
            ],
            name="typed",
        )
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        cold = frontend.submit(ServiceRequest(dataset))
        warm = frontend.submit(ServiceRequest(dataset))
        assert warm.source == "memory"
        assert warm.consensus == cold.consensus
        assert warm.consensus.domain == frozenset({"01", "B", "2"})
        # And across a frontend restart (disk tier).
        restarted = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        disk = restarted.submit(ServiceRequest(dataset))
        assert disk.source == "disk"
        assert disk.consensus == cold.consensus

    def test_incomplete_dataset_is_unified(self, tmp_path, raw_table3_dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        response = frontend.submit(ServiceRequest(raw_table3_dataset))
        assert response.consensus.domain == raw_table3_dataset.universe()


class TestBatchCoalescing:
    def test_identical_requests_computed_once(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        responses = frontend.submit_batch(
            [ServiceRequest(dataset, request_id=f"r{i}") for i in range(4)]
        )
        assert [r.source for r in responses] == [
            "computed",
            "coalesced",
            "coalesced",
            "coalesced",
        ]
        assert len({r.score for r in responses}) == 1
        assert [r.request_id for r in responses] == ["r0", "r1", "r2", "r3"]

    def test_mixed_batch_groups_by_fingerprint(self, tmp_path, dataset, other_dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        responses = frontend.submit_batch(
            [
                ServiceRequest(dataset),
                ServiceRequest(other_dataset),
                ServiceRequest(dataset),
            ]
        )
        assert responses[0].source == "computed"
        assert responses[1].source == "computed"
        assert responses[2].source == "coalesced"
        assert responses[0].consensus == responses[2].consensus

    def test_batch_after_warmup_hits_cache(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        frontend.submit(ServiceRequest(dataset))
        responses = frontend.submit_batch([ServiceRequest(dataset)] * 3)
        assert responses[0].source == "memory"
        assert [r.source for r in responses[1:]] == ["coalesced", "coalesced"]


class TestStats:
    def test_accounting_matches_traffic(self, tmp_path, dataset, other_dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        frontend.submit(ServiceRequest(dataset))  # computed
        frontend.submit(ServiceRequest(dataset))  # memory
        frontend.submit_batch([ServiceRequest(other_dataset)] * 2)  # computed+coalesced
        stats = frontend.stats()
        assert stats.requests == 4
        assert stats.computed == 2
        assert stats.memory_hits == 1
        assert stats.coalesced == 1
        assert 0.0 < stats.hit_rate < 1.0
        payload = frontend.describe()
        assert payload["requests"] == 4
        assert payload["latency_p95_seconds"] >= payload["latency_p50_seconds"] >= 0.0
        assert "cache" in payload

    def test_tiered_cache_created_from_path(self, tmp_path):
        frontend = ServiceFrontend(tmp_path / "cache", memory_entries=3)
        assert isinstance(frontend.cache, TieredResultCache)
        assert frontend.cache.memory.max_entries == 3


class TestLatencySplit:
    def test_submit_has_no_queue_wait(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        response = frontend.submit(ServiceRequest(dataset))
        assert response.queue_seconds == 0.0
        assert response.execution_seconds > 0.0
        assert response.latency_seconds == pytest.approx(
            response.queue_seconds + response.execution_seconds
        )

    def test_batch_leader_and_followers_split(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        leader, *followers = frontend.submit_batch(
            [ServiceRequest(dataset, request_id=f"r{i}") for i in range(3)]
        )
        assert leader.source == "computed"
        assert leader.execution_seconds > 0.0
        assert leader.latency_seconds == pytest.approx(
            leader.queue_seconds + leader.execution_seconds
        )
        for follower in followers:
            assert follower.source == "coalesced"
            # A coalesced answer did no work of its own: its whole latency
            # is the wait for the leader's computation.
            assert follower.execution_seconds == 0.0
            assert follower.queue_seconds >= leader.execution_seconds
            assert follower.latency_seconds == pytest.approx(follower.queue_seconds)

    def test_describe_reports_the_split(self, tmp_path, dataset):
        frontend = ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.5)
        frontend.submit(ServiceRequest(dataset))
        frontend.submit_batch([ServiceRequest(dataset)] * 2)
        payload = frontend.describe()
        for key in (
            "queue_mean_seconds",
            "queue_max_seconds",
            "execution_mean_seconds",
            "execution_max_seconds",
        ):
            assert payload[key] >= 0.0
        assert payload["queue_max_seconds"] > 0.0  # the coalesced follower waited
        assert payload["execution_max_seconds"] > 0.0
