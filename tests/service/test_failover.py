"""Shard failover: dead process-mode workers are ejected, re-routed, respawned.

Two ways a worker dies here: a deterministic ``shard.worker`` crash fault
(the injected worker calls ``os._exit`` mid-request) and a real ``SIGKILL``
by pid.  Both must produce the same observable behaviour — the request
fails over to the ring successor and still gets an answer, the dead shard
leaves the live ring, and a background respawn brings it back.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.generators import uniform_dataset
from repro.service.frontend import ServiceRequest
from repro.service.http import AsyncHttpClient, HttpAggregationServer
from repro.service.http.worker import ShardPool
from repro.testing.faults import ENV_VAR, FaultInjector, FaultRule


async def _await_respawn(pool: ShardPool, *, timeout: float = 30.0) -> None:
    """Poll until every ejected shard has rejoined the live ring."""
    deadline = asyncio.get_running_loop().time() + timeout
    while len(pool.live_shard_names) < len(pool.shard_names):
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(
                f"respawn never completed; live={pool.live_shard_names}"
            )
        await asyncio.sleep(0.05)


def test_injected_worker_crash_fails_over_to_successor(tmp_path, monkeypatch):
    async def scenario():
        dataset = uniform_dataset(4, 6, 21)
        fingerprint = dataset.content_fingerprint()
        probe = ShardPool(None, shards=2)
        victim = probe.route(fingerprint)
        probe.shutdown()
        # Crash the first dispatch only (max_attempt=1): the failover
        # retry — attempt 1 — must get through on the successor shard.
        injector = FaultInjector(
            seed=9,
            rules=(
                FaultRule(
                    site="shard.worker",
                    kind="crash",
                    match=victim,
                    max_attempt=1,
                ),
            ),
        )
        monkeypatch.setenv(ENV_VAR, injector.to_env())
        pool = ShardPool(
            str(tmp_path / "cache"),
            shards=2,
            mode="process",
            default_budget_seconds=0.05,
            seed=3,
        )
        try:
            assert sorted(await pool.warm_up()) == ["shard-0", "shard-1"]
            payload, answered_by = await pool.submit(
                ServiceRequest(dataset=dataset, budget_seconds=0.05)
            )
            assert payload["status"] == "ok", payload
            assert answered_by != victim
            stats = await pool.describe()
            entry = stats["by_shard"][victim]
            assert entry["ejections"] == 1
            assert answered_by in pool.live_shard_names
            # The dead worker respawns in the background and rejoins.
            await _await_respawn(pool)
            stats = await pool.describe()
            assert stats["by_shard"][victim]["respawns"] == 1
            assert stats["by_shard"][victim]["pid"] is not None
            # Keys route back to their home shard after the respawn.
            assert pool.route(fingerprint) == victim
        finally:
            pool.shutdown()

    asyncio.run(scenario())


def test_sigkill_mid_pool_ejects_and_respawns(tmp_path):
    async def scenario():
        pool = ShardPool(
            str(tmp_path / "cache"),
            shards=2,
            mode="process",
            default_budget_seconds=0.05,
            seed=3,
        )
        try:
            await pool.warm_up()
            dataset = uniform_dataset(4, 6, 22)
            victim = pool.route(dataset.content_fingerprint())
            pid = pool.worker_pids()[victim]
            assert pid is not None and pid != os.getpid()
            os.kill(pid, signal.SIGKILL)
            payload, answered_by = await pool.submit(
                ServiceRequest(dataset=dataset, budget_seconds=0.05)
            )
            assert payload["status"] == "ok", payload
            assert answered_by != victim
            # The ring state is transient (the respawn may already have
            # landed); the ejection counter is not.
            stats = await pool.describe()
            assert stats["by_shard"][victim]["ejections"] == 1
            await _await_respawn(pool)
            refreshed = pool.worker_pids()[victim]
            assert refreshed is not None and refreshed != pid
        finally:
            pool.shutdown()

    asyncio.run(scenario())


def test_check_health_ejects_only_dead_workers(tmp_path):
    async def scenario():
        pool = ShardPool(
            str(tmp_path / "cache"),
            shards=2,
            mode="process",
            default_budget_seconds=0.05,
            seed=3,
        )
        try:
            await pool.warm_up()
            verdicts = await pool.check_health()
            assert verdicts == {"shard-0": "ok", "shard-1": "ok"}
            pid = pool.worker_pids()["shard-0"]
            os.kill(pid, signal.SIGKILL)
            # The pool has not noticed yet; the probe must.
            deadline = asyncio.get_running_loop().time() + 30.0
            while True:
                verdicts = await pool.check_health(timeout_seconds=5.0)
                if verdicts["shard-0"] in ("ejected", "dead"):
                    break
                if asyncio.get_running_loop().time() > deadline:
                    raise AssertionError(f"never ejected: {verdicts}")
                await asyncio.sleep(0.05)
            assert verdicts["shard-1"] == "ok"
            await _await_respawn(pool)
            verdicts = await pool.check_health()
            assert verdicts == {"shard-0": "ok", "shard-1": "ok"}
        finally:
            pool.shutdown()

    asyncio.run(scenario())


def test_all_shards_dead_answers_structured_overload(tmp_path):
    async def scenario():
        pool = ShardPool(
            str(tmp_path / "cache"),
            shards=1,
            mode="process",
            default_budget_seconds=0.05,
            seed=3,
        )
        try:
            await pool.warm_up()
            dataset = uniform_dataset(4, 6, 23)
            os.kill(pool.worker_pids()["shard-0"], signal.SIGKILL)
            payload, _ = await pool.submit(
                ServiceRequest(dataset=dataset, budget_seconds=0.05)
            )
            # The lone shard died and nothing remains to fail over to:
            # the caller still gets a structured answer, not a hang.
            assert payload["status"] == "failed"
            assert "no live shard" in payload["error"]
            assert pool.live_shard_names == ()
            # A second request while the ring is empty is refused
            # up-front (routing has nowhere to go).
            from repro.service.http.worker import ShardRejection

            with pytest.raises(ShardRejection) as excinfo:
                await pool.submit(
                    ServiceRequest(dataset=dataset, budget_seconds=0.05)
                )
            assert excinfo.value.status == "overloaded"
            await _await_respawn(pool)
            payload, _ = await pool.submit(
                ServiceRequest(dataset=dataset, budget_seconds=0.05)
            )
            assert payload["status"] == "ok"
        finally:
            pool.shutdown()

    asyncio.run(scenario())


def test_http_server_survives_worker_sigkill(tmp_path):
    """End to end over HTTP: kill a worker, the request still answers 200."""

    async def scenario():
        server = HttpAggregationServer(
            str(tmp_path / "cache"),
            shards=2,
            mode="process",
            seed=11,
            default_budget_seconds=0.05,
            health_interval_seconds=0.1,
        )
        await server.start()
        client = AsyncHttpClient(server.host, server.port)
        try:
            dataset = uniform_dataset(4, 6, 24)
            victim = server.pool.route(dataset.content_fingerprint())
            os.kill(server.pool.worker_pids()[victim], signal.SIGKILL)
            code, payload = await client.aggregate(dataset)
            assert code == 200
            assert payload["status"] == "ok"
            assert payload["shard"] != victim
            await _await_respawn(server.pool)
            code, stats = await client.server_stats()
            entry = stats["pool"]["by_shard"][victim]
            assert entry["ejections"] == 1 and entry["respawns"] == 1
            assert sorted(stats["pool"]["live_shards"]) == ["shard-0", "shard-1"]
            # Routed back home after the respawn, the shard keeps serving.
            code, payload = await client.aggregate(dataset)
            assert code == 200 and payload["status"] == "ok"
        finally:
            await client.close()
            await server.drain()

    asyncio.run(scenario())
