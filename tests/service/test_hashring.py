"""Consistent-hash ring properties: determinism and bounded remapping.

The load-bearing property (hypothesis-swept): growing the pool from
``k`` to ``k+1`` shards remaps only about ``1/(k+1)`` of a fingerprint
corpus — and every remapped key moves *to the new shard*, never between
old ones.  That is what lets a resize cost one shard's worth of cache
warmth instead of all of it.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.http import ConsistentHashRing

CORPUS_SIZE = 400


def _corpus(seed: int) -> list[str]:
    """A deterministic fingerprint-like key corpus."""
    return [
        hashlib.sha256(f"{seed}:{index}".encode()).hexdigest()
        for index in range(CORPUS_SIZE)
    ]


@settings(max_examples=25, deadline=None)
@given(shards=st.integers(min_value=1, max_value=8), seed=st.integers(0, 10_000))
def test_grow_remaps_bounded_fraction_and_only_to_new_shard(shards, seed):
    corpus = _corpus(seed)
    names = [f"shard-{index}" for index in range(shards)]
    ring = ConsistentHashRing(names)
    grown = ring.with_shards(names + [f"shard-{shards}"])
    moved = 0
    for key in corpus:
        before, after = ring.route(key), grown.route(key)
        if before != after:
            moved += 1
            # Consistent hashing's defining guarantee: a key only ever
            # moves onto the shard that was added.
            assert after == f"shard-{shards}", (key, before, after)
    # Expected fraction is 1/(k+1); allow generous statistical slack
    # (finite corpus, 96 virtual points/shard) but stay far below the
    # ~100% a modulo scheme would remap.
    expected = 1.0 / (shards + 1)
    assert moved / len(corpus) <= 2.5 * expected, (
        f"resize {shards}→{shards + 1} remapped {moved}/{len(corpus)} keys "
        f"(expected ≈{expected:.0%})"
    )


@settings(max_examples=25, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=8),
    seed=st.integers(0, 10_000),
)
def test_routing_is_deterministic_and_order_insensitive(shards, seed):
    corpus = _corpus(seed)[:50]
    names = [f"shard-{index}" for index in range(shards)]
    ring = ConsistentHashRing(names)
    shuffled = ConsistentHashRing(list(reversed(names)))
    for key in corpus:
        owner = ring.route(key)
        # Same fingerprint → same shard, every time, and independent of
        # the order the shard names were configured in.
        assert ring.route(key) == owner
        assert shuffled.route(key) == owner
        assert owner in ring.shards


def test_every_shard_owns_some_keyspace():
    ring = ConsistentHashRing([f"shard-{index}" for index in range(4)])
    counts = ring.distribution(_corpus(2015))
    assert set(counts) == set(ring.shards)
    for shard, count in counts.items():
        assert count > 0, f"{shard} owns no keys of a {CORPUS_SIZE}-key corpus"


def test_ring_validation():
    with pytest.raises(ValueError, match="at least one shard"):
        ConsistentHashRing([])
    with pytest.raises(ValueError, match="duplicate"):
        ConsistentHashRing(["a", "a"])
    with pytest.raises(ValueError, match="replicas"):
        ConsistentHashRing(["a"], replicas=0)
    assert len(ConsistentHashRing(["a", "b"])) == 2
