"""Live serving: generation-aware coalescing, invalidation, warm repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LiveDataset, Ranking, prepare_rankings
from repro.service import (
    LiveAggregationSession,
    ServiceFrontend,
    ServiceRequest,
)
from repro.workloads import ChurnProfile, build_mutation_stream, run_churn_load


def _rankings():
    return [
        Ranking([["A"], ["B", "C"], ["D"]]),
        Ranking([["B"], ["A"], ["C", "D"]]),
        Ranking([["C"], ["B"], ["A"], ["D"]]),
    ]


@pytest.fixture
def frontend(tmp_path):
    return ServiceFrontend(tmp_path / "cache", default_budget_seconds=0.2, seed=3)


class TestGenerationCoalescing:
    def test_same_generation_coalesces(self, frontend):
        live = LiveDataset(_rankings(), name="gen")
        snapshot = live.snapshot()
        responses = frontend.submit_batch(
            [
                ServiceRequest(snapshot, algorithm="BordaCount"),
                ServiceRequest(snapshot, algorithm="BordaCount"),
            ]
        )
        assert responses[0].source == "computed"
        assert responses[1].source == "coalesced"

    def test_distinct_generations_not_coalesced(self, frontend):
        """Snapshots straddling a mutation never share one computation,
        even when their content fingerprints collide (A -> B -> A)."""
        live = LiveDataset(_rankings(), name="gen")
        first = live.snapshot()
        original = live[0]
        live.update_ranking(0, live[1])
        live.update_ranking(0, original)  # back to identical content
        third = live.snapshot()
        assert first.content_fingerprint() == third.content_fingerprint()
        assert first.metadata["generation"] != third.metadata["generation"]
        responses = ServiceFrontend(
            None, default_budget_seconds=0.2, seed=3
        ).submit_batch(
            [
                ServiceRequest(first, algorithm="BordaCount"),
                ServiceRequest(third, algorithm="BordaCount"),
            ]
        )
        assert [response.source for response in responses] == [
            "computed",
            "computed",
        ]

    def test_plain_datasets_still_coalesce(self, frontend):
        from repro.generators import uniform_dataset

        dataset = uniform_dataset(4, 6, rng=5, name="plain")
        responses = ServiceFrontend(
            None, default_budget_seconds=0.2
        ).submit_batch(
            [ServiceRequest(dataset, algorithm="BordaCount") for _ in range(3)]
        )
        assert [response.source for response in responses] == [
            "computed",
            "coalesced",
            "coalesced",
        ]


class TestInvalidation:
    def test_records_carry_dataset_fingerprint(self, frontend, tmp_path):
        live = LiveDataset(_rankings(), name="inv")
        snapshot = live.snapshot()
        frontend.submit(ServiceRequest(snapshot, algorithm="BordaCount"))
        removed = frontend.invalidate_dataset(snapshot.content_fingerprint())
        assert removed == 1
        # Gone from both tiers: the next request recomputes.
        response = frontend.submit(ServiceRequest(snapshot, algorithm="BordaCount"))
        assert response.source == "computed"

    def test_invalidate_unknown_fingerprint_is_noop(self, frontend):
        assert frontend.invalidate_dataset("0" * 64) == 0

    def test_invalidate_without_cache(self):
        assert ServiceFrontend(None).invalidate_dataset("0" * 64) == 0


class TestLiveAggregationSession:
    def test_cold_then_warm_repair(self):
        session = LiveAggregationSession(
            LiveDataset(_rankings(), name="session"), budget_seconds=0.2
        )
        cold = session.serve()
        assert cold.warm_start is False
        assert cold.previous_score is None
        assert session.score == cold.score
        session.update_ranking(0, Ranking([["D"], ["C"], ["B"], ["A"]]))
        assert session.is_stale
        warm = session.serve()
        assert warm.warm_start is True
        assert warm.previous_score is not None
        assert warm.score_delta == warm.previous_score - warm.score
        assert warm.score_delta >= 0
        assert not session.is_stale

    def test_serve_is_free_when_fresh(self):
        session = LiveAggregationSession(
            LiveDataset(_rankings()), budget_seconds=0.2
        )
        session.serve()
        again = session.serve()
        assert again.repair_seconds == 0.0
        assert again.steps == 0
        assert again.consensus == session.consensus

    def test_mutations_invalidate_and_repair_republishes(self, frontend):
        live = LiveDataset(_rankings(), name="pub")
        session = LiveAggregationSession(
            live, frontend=frontend, budget_seconds=0.2
        )
        report = session.serve()
        hit = frontend.submit(
            ServiceRequest(live.snapshot(), algorithm="BioConsert")
        )
        assert hit.cache_hit
        assert hit.score == report.score
        session.add_ranking(Ranking([["D"], ["C"], ["B"], ["A"]]))
        repaired = session.repair()
        assert repaired.invalidated >= 1
        hit_after = frontend.submit(
            ServiceRequest(live.snapshot(), algorithm="BioConsert")
        )
        assert hit_after.cache_hit
        assert hit_after.score == repaired.score

    def test_iterable_wrapped_and_non_anytime_rejected(self):
        session = LiveAggregationSession(_rankings())
        assert isinstance(session.dataset, LiveDataset)
        with pytest.raises(TypeError, match="anytime"):
            LiveAggregationSession(_rankings(), algorithm="BordaCount")

    def test_mutation_delegation_returns_values(self):
        session = LiveAggregationSession(LiveDataset(_rankings()))
        extra = Ranking([["D"], ["C"], ["B"], ["A"]])
        assert session.add_ranking(extra) == 3
        assert session.remove_ranking(3) == extra
        previous = session.dataset[0]
        assert session.update_ranking(0, extra) == previous

    def test_report_describe_is_flat(self):
        session = LiveAggregationSession(
            LiveDataset(_rankings()), budget_seconds=0.2
        )
        payload = session.serve().describe()
        assert payload["generation"] == 0
        assert payload["warm_start"] is False
        assert isinstance(payload["fingerprint"], str)


class TestChurnWorkload:
    def test_mutation_stream_is_deterministic(self):
        live = LiveDataset(_rankings())
        profile = ChurnProfile(num_mutations=12, seed=9)
        first = build_mutation_stream(live, profile)
        second = build_mutation_stream(LiveDataset(_rankings()), profile)
        assert [(kind, payload) for kind, payload in first] == [
            (kind, payload) for kind, payload in second
        ]
        assert len(first) == 12

    def test_run_churn_load_payload(self, frontend):
        payload = run_churn_load(
            ChurnProfile(num_mutations=6, budget_seconds=0.05, repair_every=2),
            frontend=frontend,
        )
        assert payload["report"] == "churn-load"
        assert payload["generations"] == 6
        assert payload["repairs"] == 3
        assert payload["warm_repairs"] == 3
        assert payload["weights_match_rebuild"] is True
        assert payload["invalidated"] >= 1

    def test_churn_keeps_weights_equal_to_rebuild(self):
        live = LiveDataset(_rankings(), name="churn-eq")
        for kind, item in build_mutation_stream(
            live, ChurnProfile(num_mutations=20, seed=5)
        ):
            if kind == "add":
                live.add_ranking(item)
            elif kind == "remove":
                live.remove_ranking(item)
            else:
                live.update_ranking(*item)
        fresh = prepare_rankings(list(live.rankings))
        assert np.array_equal(
            live.weights().before_matrix, fresh.weights.before_matrix
        )
        assert np.array_equal(live.weights().tied_matrix, fresh.weights.tied_matrix)
