"""Telemetry counter parity between the in-process and socket paths.

Regression suite for a real bug class: the HTTP layer growing its own
rejection/deadline counters under different names than
:class:`~repro.service.ServiceFrontend`, so dashboards summing
``service.rejected`` silently miss everything rejected at the socket.
The contract: every serving surface records the *shared* instruments of
:mod:`repro.service.counters` into the same active telemetry session,
and HTTP-only instruments are additive (``http.*``), never replacements.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.generators import uniform_dataset
from repro.service import ServiceFrontend, ServiceRequest
from repro.service import counters
from repro.service.http import AsyncHttpClient, HttpAggregationServer
from repro.telemetry import runtime


@pytest.fixture(autouse=True)
def _no_ambient_session():
    assert runtime.get_active() is None
    yield
    runtime.disable()


def test_shared_counter_names_are_pinned():
    # Renaming any of these breaks every deployed dashboard: the literal
    # values are part of the telemetry contract, not an implementation
    # detail.
    assert counters.SERVICE_REQUESTS == "service.requests"
    assert counters.SERVICE_REJECTED == "service.rejected"
    assert counters.SERVICE_FAILED == "service.failed"
    assert counters.SERVICE_INVALIDATED == "service.invalidated"
    assert counters.SERVICE_QUEUE_SECONDS == "service.queue_seconds"
    assert counters.SERVICE_EXECUTION_SECONDS == "service.execution_seconds"
    assert counters.HTTP_REQUESTS == "http.request"
    assert counters.HTTP_REJECTED == "http.rejected"
    assert counters.HTTP_SHARD_ROUTE == "http.shard_route"
    assert counters.HTTP_LATENCY_SECONDS == "http.latency_seconds"


def _service_instruments(active) -> set[str]:
    return {
        item["name"]
        for item in active.metrics.to_payload()
        if item["name"].startswith("service.")
    }


def test_http_layer_records_into_the_same_service_instruments(tmp_path):
    """One rejected + one answered request, in-process vs over the socket.

    Both paths must produce the *same* ``service.*`` instrument names in
    their sessions, with the socket path adding (not substituting) its
    ``http.*`` vocabulary.
    """
    dataset = uniform_dataset(4, 6, 1)
    other = uniform_dataset(4, 6, 2)

    with runtime.session() as inprocess:
        frontend = ServiceFrontend(
            str(tmp_path / "inproc"), default_budget_seconds=0.05, seed=11
        )
        frontend.submit(ServiceRequest(dataset))
        frontend.reject(
            ServiceRequest(other), status="overloaded", error="queue full"
        )
        inprocess_names = _service_instruments(inprocess)
    runtime.disable()

    async def scenario():
        server = HttpAggregationServer(
            str(tmp_path / "http"), shards=1, seed=11,
            default_budget_seconds=0.05, max_pending=1,
        )
        await server.start()
        client = AsyncHttpClient(server.host, server.port)
        blocker = AsyncHttpClient(server.host, server.port)
        try:
            slow_frontend = server.pool.frontend_of("shard-0")
            original = slow_frontend.submit

            def slow_submit(request, **kwargs):
                time.sleep(0.25)
                return original(request, **kwargs)

            slow_frontend.submit = slow_submit
            blocker_task = asyncio.create_task(blocker.aggregate(dataset))
            await asyncio.sleep(0.05)
            code, payload = await client.aggregate(other)  # queue is full
            assert code == 503 and payload["status"] == "overloaded"
            await blocker_task
        finally:
            await client.close()
            await blocker.close()
            await server.drain()

    with runtime.session() as socket_session:
        asyncio.run(scenario())
        socket_names = _service_instruments(socket_session)
        all_names = {
            item["name"] for item in socket_session.metrics.to_payload()
        }
        rejected = socket_session.metrics.get(counters.SERVICE_REJECTED)

    # The regression this file exists for: identical service.* names.
    assert socket_names == inprocess_names, (
        f"socket path diverged from in-process instruments: "
        f"{socket_names ^ inprocess_names}"
    )
    # The socket path's own vocabulary rides alongside.
    assert counters.HTTP_REQUESTS in all_names
    assert counters.HTTP_SHARD_ROUTE in all_names
    assert counters.HTTP_LATENCY_SECONDS in all_names
    # And the shared rejection counter carries the socket-path refusal.
    assert rejected is not None
    assert rejected.value(reason="overloaded") == 1.0


def test_deadline_expiry_lands_in_shared_rejection_counter(tmp_path):
    async def scenario():
        server = HttpAggregationServer(
            str(tmp_path / "cache"), shards=1, seed=11,
            default_budget_seconds=0.05,
        )
        await server.start()
        blocker = AsyncHttpClient(server.host, server.port)
        late = AsyncHttpClient(server.host, server.port)
        try:
            frontend = server.pool.frontend_of("shard-0")
            original = frontend.submit

            def slow_submit(request, **kwargs):
                time.sleep(0.25)
                return original(request, **kwargs)

            frontend.submit = slow_submit
            blocker_task = asyncio.create_task(
                blocker.aggregate(uniform_dataset(4, 6, 1))
            )
            await asyncio.sleep(0.05)
            code, payload = await late.aggregate(
                uniform_dataset(4, 6, 2), deadline_seconds=0.05
            )
            assert code == 504 and payload["status"] == "deadline"
            await blocker_task
            return server.pool.frontend_of("shard-0").describe()
        finally:
            await blocker.close()
            await late.close()
            await server.drain()

    with runtime.session() as active:
        stats = asyncio.run(scenario())
        rejected = active.metrics.get(counters.SERVICE_REJECTED)
        assert rejected is not None
        # Same instrument, labelled by reason — exactly what
        # ServiceFrontend records for an in-process deadline expiry.
        assert rejected.value(reason="deadline") == 1.0
    # ...and the shard frontend's describe() agrees with the registry.
    assert stats["deadline_misses"] == 1
