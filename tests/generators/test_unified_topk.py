"""Tests for the unified top-k generator (Figure 1 pipeline)."""

from __future__ import annotations

import pytest

from repro.core import Ranking
from repro.generators import (
    retain_top_k,
    unified_topk_dataset,
    unified_topk_dataset_collection,
)


class TestRetainTopK:
    def test_keeps_first_k_elements(self):
        ranking = Ranking([["A"], ["B", "C"], ["D"], ["E"]])
        top = retain_top_k(ranking, 3)
        assert len(top) == 3
        assert top.domain == frozenset({"A", "B", "C"})

    def test_partial_bucket_cut(self):
        ranking = Ranking([["A"], ["B", "C", "D"]])
        top = retain_top_k(ranking, 2)
        assert len(top) == 2
        assert "A" in top

    def test_k_larger_than_ranking(self):
        ranking = Ranking([["A"], ["B"]])
        assert retain_top_k(ranking, 10) == ranking

    def test_figure1_example(self):
        """The first ranking of Figure 1: top-2 of [{A},{B,C},{F},{D},{E}]
        keeps [{A},{B,C}] — cutting inside a bucket keeps enough elements to
        reach k, so here the whole bucket fits exactly."""
        ranking = Ranking([["A"], ["B", "C"], ["F"], ["D"], ["E"]])
        top = retain_top_k(ranking, 3)
        assert top == Ranking([["A"], ["B", "C"]])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            retain_top_k(Ranking([["A"]]), 0)


class TestUnifiedTopKDataset:
    def test_complete_over_retained_elements(self):
        dataset = unified_topk_dataset(4, 20, 6, 200, rng=1)
        assert dataset.is_complete
        assert dataset.num_rankings == 4
        # The universe is the union of the top-k lists: between k and m*k elements.
        assert 6 <= dataset.num_elements <= 24

    def test_metadata(self):
        dataset = unified_topk_dataset(3, 15, 5, 100, rng=2)
        assert dataset.metadata["generator"] == "unified-topk"
        assert dataset.metadata["top_k"] == 5
        assert dataset.metadata["normalization"] == "unification"

    def test_dissimilar_inputs_create_larger_unification_buckets(self):
        similar = unified_topk_dataset(5, 30, 8, 20, rng=3)
        dissimilar = unified_topk_dataset(5, 30, 8, 20000, rng=3)
        assert dissimilar.num_elements >= similar.num_elements

    def test_collection(self):
        datasets = unified_topk_dataset_collection(3, 4, 15, 5, 100, rng=1)
        assert len(datasets) == 3
        assert all(dataset.is_complete for dataset in datasets)
