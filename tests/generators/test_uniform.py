"""Tests for the uniform rankings-with-ties generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    count_rankings_with_ties,
    ordered_bell_number,
    sample_uniform_ranking,
    stirling2,
    uniform_dataset,
    uniform_dataset_collection,
)


class TestCountingFunctions:
    def test_stirling_base_cases(self):
        assert stirling2(0, 0) == 1
        assert stirling2(3, 0) == 0
        assert stirling2(0, 3) == 0
        assert stirling2(5, 6) == 0

    def test_stirling_known_values(self):
        assert stirling2(4, 2) == 7
        assert stirling2(5, 3) == 25
        assert stirling2(6, 3) == 90

    def test_stirling_rejects_negative(self):
        with pytest.raises(ValueError):
            stirling2(-1, 2)

    def test_ordered_bell_known_values(self):
        # OEIS A000670: 1, 1, 3, 13, 75, 541, 4683, 47293
        expected = [1, 1, 3, 13, 75, 541, 4683, 47293]
        for n, value in enumerate(expected):
            assert ordered_bell_number(n) == value

    def test_ordered_bell_rejects_negative(self):
        with pytest.raises(ValueError):
            ordered_bell_number(-1)

    def test_count_with_fixed_buckets(self):
        # 3 elements, 2 buckets: 2! * S(3,2) = 2 * 3 = 6.
        assert count_rankings_with_ties(3, 2) == 6
        assert sum(count_rankings_with_ties(4, k) for k in range(1, 5)) == (
            ordered_bell_number(4)
        )


class TestSampler:
    def test_sample_is_valid_ranking(self, rng):
        elements = list(range(10))
        ranking = sample_uniform_ranking(elements, rng)
        assert ranking.domain == frozenset(elements)
        assert all(len(bucket) >= 1 for bucket in ranking.buckets)

    def test_sample_empty(self, rng):
        assert len(sample_uniform_ranking([], rng)) == 0

    def test_sample_single_element(self, rng):
        ranking = sample_uniform_ranking(["A"], rng)
        assert ranking.buckets == (("A",),)

    def test_deterministic_given_seed(self):
        first = sample_uniform_ranking(list(range(8)), np.random.default_rng(7))
        second = sample_uniform_ranking(list(range(8)), np.random.default_rng(7))
        assert first == second

    def test_distribution_is_uniform_for_n3(self):
        """Exact check of uniformity over the 13 rankings with ties of [3].

        With 13 outcomes and 13 000 samples each expected count is 1000;
        a chi-square statistic above 40 (p < 1e-4 for 12 dof) would flag a
        biased sampler.
        """
        rng = np.random.default_rng(42)
        counts: dict = {}
        samples = 13_000
        for _ in range(samples):
            ranking = sample_uniform_ranking([0, 1, 2], rng)
            counts[ranking] = counts.get(ranking, 0) + 1
        assert len(counts) == 13  # every weak order is reachable
        expected = samples / 13
        chi_square = sum(
            (observed - expected) ** 2 / expected for observed in counts.values()
        )
        assert chi_square < 40.0

    def test_bucket_count_distribution_for_n4(self):
        """The number of buckets follows k!·S(n,k)/a(n): for n=4 the expected
        proportions are 1/75, 14/75, 36/75, 24/75."""
        rng = np.random.default_rng(11)
        samples = 6_000
        bucket_counts = np.zeros(5, dtype=int)
        for _ in range(samples):
            ranking = sample_uniform_ranking([0, 1, 2, 3], rng)
            bucket_counts[ranking.num_buckets] += 1
        proportions = bucket_counts[1:] / samples
        expected = np.array([1, 14, 36, 24]) / 75.0
        assert np.abs(proportions - expected).max() < 0.03


class TestUniformDataset:
    def test_dataset_shape(self):
        dataset = uniform_dataset(5, 12, rng=3)
        assert dataset.num_rankings == 5
        assert dataset.num_elements == 12
        assert dataset.is_complete
        assert dataset.metadata["generator"] == "uniform"

    def test_dataset_custom_elements(self):
        dataset = uniform_dataset(3, 0, rng=3, elements=["x", "y", "z"])
        assert dataset.universe() == frozenset({"x", "y", "z"})

    def test_dataset_reproducible(self):
        first = uniform_dataset(4, 10, rng=5)
        second = uniform_dataset(4, 10, rng=5)
        assert list(first.rankings) == list(second.rankings)

    def test_collection(self):
        datasets = uniform_dataset_collection(4, 3, 8, rng=1)
        assert len(datasets) == 4
        assert len({dataset.name for dataset in datasets}) == 4
        # Independent datasets should not all be identical.
        assert len({tuple(dataset.rankings) for dataset in datasets}) > 1


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_sampled_ranking_always_valid(n, seed):
    rng = np.random.default_rng(seed)
    ranking = sample_uniform_ranking(list(range(n)), rng)
    assert ranking.domain == frozenset(range(n))
    assert sum(len(bucket) for bucket in ranking.buckets) == n
