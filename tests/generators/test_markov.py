"""Tests for the Markov-chain similarity-controlled generator."""

from __future__ import annotations

import numpy as np

from repro.core import Ranking, dataset_similarity
from repro.generators import (
    PAPER_STEP_GRID,
    PAPER_UNIFIED_STEP_GRID,
    markov_dataset,
    markov_dataset_collection,
    markov_walk,
)
from repro.generators.markov import markov_step


class TestMarkovStep:
    def test_step_preserves_elements(self, rng):
        buckets = [["A"], ["B", "C"], ["D"]]
        elements = ["A", "B", "C", "D"]
        for _ in range(200):
            markov_step(buckets, elements, rng)
            flattened = [element for bucket in buckets for element in bucket]
            assert sorted(flattened) == sorted(elements)
            assert all(bucket for bucket in buckets)

    def test_single_element_never_changes(self, rng):
        buckets = [["A"]]
        for _ in range(50):
            changed = markov_step(buckets, ["A"], rng)
            assert not changed
            assert buckets == [["A"]]


class TestMarkovWalk:
    def test_zero_steps_is_identity(self, rng):
        seed = Ranking([["A"], ["B", "C"]])
        assert markov_walk(seed, 0, rng) == seed

    def test_walk_preserves_domain(self, rng):
        seed = Ranking([["A"], ["B", "C"], ["D", "E"]])
        result = markov_walk(seed, 500, rng)
        assert result.domain == seed.domain

    def test_walk_deterministic_given_seed(self):
        seed = Ranking([["A"], ["B", "C"], ["D"]])
        first = markov_walk(seed, 100, 42)
        second = markov_walk(seed, 100, 42)
        assert first == second

    def test_long_walk_moves_away_from_seed(self):
        seed = Ranking.from_permutation(list(range(12)))
        moved = markov_walk(seed, 2000, 3)
        assert moved != seed


class TestMarkovDataset:
    def test_shape_and_metadata(self):
        dataset = markov_dataset(5, 10, 100, rng=1)
        assert dataset.num_rankings == 5
        assert dataset.num_elements == 10
        assert dataset.is_complete
        assert dataset.metadata["steps"] == 100

    def test_explicit_seed_ranking(self):
        seed = Ranking.from_permutation(list(range(6)))
        dataset = markov_dataset(3, 6, 0, rng=1, seed_ranking=seed)
        assert all(ranking == seed for ranking in dataset.rankings)

    def test_similarity_decreases_with_steps(self):
        """The similarity knob: few steps → similar rankings, many steps →
        similarity near the uniform baseline (Section 7.2)."""
        similar = [
            markov_dataset(6, 15, 10, rng=seed).similarity() for seed in range(5)
        ]
        dissimilar = [
            markov_dataset(6, 15, 5000, rng=seed).similarity() for seed in range(5)
        ]
        assert np.mean(similar) > np.mean(dissimilar) + 0.2

    def test_many_steps_approach_uniform_similarity(self):
        values = [markov_dataset(6, 12, 8000, rng=seed).similarity() for seed in range(6)]
        assert abs(float(np.mean(values))) < 0.2

    def test_collection(self):
        datasets = markov_dataset_collection(3, 4, 8, 50, rng=2)
        assert len(datasets) == 3
        assert all(dataset.metadata["steps"] == 50 for dataset in datasets)


class TestStepGrids:
    def test_paper_grids_match_section_6(self):
        assert PAPER_STEP_GRID[0] == 50
        assert PAPER_STEP_GRID[-1] == 50000
        assert len(PAPER_STEP_GRID) == 10
        assert PAPER_UNIFIED_STEP_GRID[0] == 1000
        assert PAPER_UNIFIED_STEP_GRID[-1] == 1_000_000
        assert len(PAPER_UNIFIED_STEP_GRID) == 10
