"""Tests for the permutation models (uniform, Mallows, Plackett–Luce)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ranking, dataset_similarity, kendall_tau_distance
from repro.generators import (
    mallows_dataset,
    mallows_permutation,
    plackett_luce_dataset,
    plackett_luce_permutation,
    uniform_permutation,
    uniform_permutation_dataset,
)


class TestUniformPermutation:
    def test_is_permutation_over_domain(self, rng):
        ranking = uniform_permutation(list("ABCDE"), rng)
        assert ranking.is_permutation
        assert ranking.domain == frozenset("ABCDE")

    def test_dataset(self):
        dataset = uniform_permutation_dataset(5, 10, rng=1)
        assert dataset.num_rankings == 5
        assert not dataset.contains_ties()


class TestMallows:
    def test_zero_dispersion_is_uniform_permutation(self, rng):
        center = list(range(8))
        ranking = mallows_permutation(center, 0.0, rng)
        assert ranking.is_permutation
        assert ranking.domain == frozenset(center)

    def test_high_dispersion_sticks_to_center(self, rng):
        center = list(range(10))
        ranking = mallows_permutation(center, 8.0, rng)
        assert list(ranking.elements()) == center

    def test_negative_dispersion_rejected(self, rng):
        with pytest.raises(ValueError):
            mallows_permutation([1, 2, 3], -1.0, rng)

    def test_dispersion_controls_distance_to_center(self):
        center = Ranking.from_permutation(list(range(12)))
        rng = np.random.default_rng(0)
        concentrated = [
            kendall_tau_distance(center, mallows_permutation(list(range(12)), 2.0, rng))
            for _ in range(20)
        ]
        diffuse = [
            kendall_tau_distance(center, mallows_permutation(list(range(12)), 0.1, rng))
            for _ in range(20)
        ]
        assert np.mean(concentrated) < np.mean(diffuse)

    def test_mallows_dataset_similarity_increases_with_dispersion(self):
        tight = mallows_dataset(6, 12, 2.0, rng=1).similarity()
        loose = mallows_dataset(6, 12, 0.05, rng=1).similarity()
        assert tight > loose


class TestPlackettLuce:
    def test_permutation_over_weights(self, rng):
        weights = {"a": 3.0, "b": 2.0, "c": 1.0}
        ranking = plackett_luce_permutation(weights, rng)
        assert ranking.is_permutation
        assert ranking.domain == frozenset(weights)

    def test_nonpositive_weight_rejected(self, rng):
        with pytest.raises(ValueError):
            plackett_luce_permutation({"a": 0.0, "b": 1.0}, rng)

    def test_strong_weights_dominate(self):
        rng = np.random.default_rng(5)
        weights = {"best": 200.0, "mid": 2.0, "worst": 1.0}
        top_counts = sum(
            1
            for _ in range(100)
            if next(plackett_luce_permutation(weights, rng).elements()) == "best"
        )
        assert top_counts > 80

    def test_plackett_luce_dataset_spread_controls_similarity(self):
        consistent = plackett_luce_dataset(6, 10, rng=1, weight_spread=6.0)
        noisy = plackett_luce_dataset(6, 10, rng=1, weight_spread=0.0)
        assert dataset_similarity(list(consistent.rankings)) > dataset_similarity(
            list(noisy.rankings)
        )
