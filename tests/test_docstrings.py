"""Docstring coverage of the public API.

Serving a reproduction to other researchers means the public surface must
be self-describing: every export of the core subsystems carries a
docstring whose first line is a one-line summary, and every documented
callable names each of its parameters somewhere in its docstring (a
Parameters section or inline mention both count).

The check walks the ``__all__`` exports of the four subsystem packages
(:mod:`repro.core`, :mod:`repro.engine`, :mod:`repro.workloads`,
:mod:`repro.service`) plus the top-level :mod:`repro` API.  It is part of
the test suite on purpose — an undocumented new export fails CI, not a
docs build someone forgot to run.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PUBLIC_PACKAGES = (
    "repro",
    "repro.core",
    "repro.engine",
    "repro.workloads",
    "repro.service",
    "repro.algorithms.anytime",
    "repro.telemetry",
)

# Parameters that never need prose: implementation details of the calling
# convention, not of the API.
_IGNORED_PARAMETERS = frozenset({"self", "cls", "args", "kwargs", "extra"})


def _exports() -> list[tuple[str, str, object]]:
    entries = []
    for module_name in PUBLIC_PACKAGES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            entries.append((module_name, name, getattr(module, name)))
    return entries


def _parameter_names(obj) -> list[str]:
    target = obj.__init__ if inspect.isclass(obj) else obj
    try:
        signature = inspect.signature(target)
    except (TypeError, ValueError):
        return []
    return [
        parameter.name
        for parameter in signature.parameters.values()
        if parameter.name not in _IGNORED_PARAMETERS
        and parameter.kind
        not in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD)
    ]


def _docstring_for_parameters(obj) -> str:
    """The text a callable's parameters may be documented in."""
    parts = [inspect.getdoc(obj) or ""]
    if inspect.isclass(obj):
        parts.append(inspect.getdoc(obj.__init__) or "")
        # Dataclasses document their fields as attributes of the class.
    return "\n".join(parts)


EXPORTS = _exports()


@pytest.mark.parametrize(
    "module_name,name,obj",
    EXPORTS,
    ids=[f"{module}.{name}" for module, name, _ in EXPORTS],
)
def test_public_export_is_documented(module_name, name, obj):
    if not (inspect.isclass(obj) or callable(obj) or inspect.ismodule(obj)):
        pytest.skip(f"{name} is a constant")
    if inspect.isclass(obj) and not obj.__module__.startswith("repro"):
        pytest.skip(f"{name} is a re-exported standard-library alias")
    doc = inspect.getdoc(obj)
    assert doc, f"{module_name}.{name} has no docstring"
    summary = doc.strip().splitlines()[0].strip()
    assert summary, f"{module_name}.{name} docstring has no one-line summary"

    if inspect.isclass(obj) or inspect.isfunction(obj):
        text = _docstring_for_parameters(obj)
        missing = [
            parameter
            for parameter in _parameter_names(obj)
            if parameter not in text
        ]
        assert not missing, (
            f"{module_name}.{name} does not document parameter(s): {missing}"
        )


def test_public_methods_of_service_api_are_documented():
    """The request-facing classes document every public method."""
    from repro.service import (
        PortfolioScheduler,
        ServiceFrontend,
        ServiceStats,
    )
    from repro.algorithms.anytime import AnytimeController

    for cls in (PortfolioScheduler, ServiceFrontend, ServiceStats, AnytimeController):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} has no docstring"
