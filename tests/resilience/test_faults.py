"""Tests for the deterministic fault-injection harness (repro.testing.faults)."""

from __future__ import annotations

import json

import pytest

from repro.testing import (
    ENV_VAR,
    FaultInjector,
    FaultRule,
    TransientRunError,
    WorkerCrashError,
    active_injector,
    clear_installed,
    injected,
    install,
    maybe_decide,
    maybe_fire,
)


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(site="engine.run", kind="meltdown")

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="engine.run", kind="crash", probability=1.5)

    def test_payload_round_trip(self):
        rule = FaultRule(
            site="cache.store",
            kind="corrupt",
            probability=0.25,
            match="Borda",
            delay_seconds=0.5,
            max_attempt=2,
        )
        assert FaultRule.from_payload(rule.to_payload()) == rule


class TestDecide:
    def test_site_mismatch_never_fires(self):
        injector = FaultInjector(rules=(FaultRule(site="engine.run", kind="crash"),))
        assert injector.decide("cache.store", "anything") is None

    def test_match_substring_filters_keys(self):
        rule = FaultRule(site="engine.run", kind="crash", match="BioConsert")
        injector = FaultInjector(rules=(rule,))
        assert injector.decide("engine.run", "algorithm:BioConsert:d0") is rule
        assert injector.decide("engine.run", "algorithm:BordaCount:d0") is None

    def test_max_attempt_spares_later_retries(self):
        rule = FaultRule(site="engine.run", kind="exception", max_attempt=2)
        injector = FaultInjector(rules=(rule,))
        assert injector.decide("engine.run", "k", attempt=0) is rule
        assert injector.decide("engine.run", "k", attempt=1) is rule
        assert injector.decide("engine.run", "k", attempt=2) is None

    def test_first_matching_rule_wins(self):
        first = FaultRule(site="engine.run", kind="exception", match="Borda")
        second = FaultRule(site="engine.run", kind="crash")
        injector = FaultInjector(rules=(first, second))
        assert injector.decide("engine.run", "algorithm:BordaCount:d0") is first
        assert injector.decide("engine.run", "algorithm:KwikSort:d0") is second

    def test_probability_is_deterministic_in_seed(self):
        rule = FaultRule(site="engine.run", kind="crash", probability=0.5)
        one = FaultInjector(seed=7, rules=(rule,))
        two = FaultInjector(seed=7, rules=(rule,))
        keys = [f"algorithm:A{i}:d0" for i in range(64)]
        decisions_one = [one.decide("engine.run", key) for key in keys]
        decisions_two = [two.decide("engine.run", key) for key in keys]
        assert decisions_one == decisions_two
        # A fair-ish split: some keys fire, some are spared.
        fired = sum(1 for decision in decisions_one if decision is not None)
        assert 0 < fired < len(keys)

    def test_different_seeds_make_different_decisions(self):
        rule = FaultRule(site="engine.run", kind="crash", probability=0.5)
        keys = [f"algorithm:A{i}:d0" for i in range(64)]

        def plan(seed: int) -> list[bool]:
            injector = FaultInjector(seed=seed, rules=(rule,))
            return [injector.decide("engine.run", key) is not None for key in keys]

        assert plan(1) != plan(2)


class TestFire:
    def test_crash_raises_worker_crash_in_driver(self):
        injector = FaultInjector(rules=(FaultRule(site="engine.run", kind="crash"),))
        with pytest.raises(WorkerCrashError):
            injector.fire("engine.run", "k")

    def test_exception_raises_transient(self):
        injector = FaultInjector(
            rules=(FaultRule(site="engine.run", kind="exception"),)
        )
        with pytest.raises(TransientRunError):
            injector.fire("engine.run", "k")

    def test_slow_sleeps_and_returns_rule(self):
        rule = FaultRule(site="engine.run", kind="slow", delay_seconds=0.0)
        injector = FaultInjector(rules=(rule,))
        assert injector.fire("engine.run", "k") is rule

    def test_corrupt_only_returns_rule(self):
        rule = FaultRule(site="cache.store", kind="corrupt")
        injector = FaultInjector(rules=(rule,))
        assert injector.fire("cache.store", "k") is rule

    def test_no_rule_returns_none(self):
        assert FaultInjector().fire("engine.run", "k") is None


class TestActivation:
    def test_no_injector_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        clear_installed()
        assert active_injector() is None
        assert maybe_decide("engine.run", "k") is None
        assert maybe_fire("engine.run", "k") is None

    def test_install_and_clear(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        injector = FaultInjector(seed=3)
        try:
            assert install(injector) is injector
            assert active_injector() is injector
        finally:
            clear_installed()
        assert active_injector() is None

    def test_injected_context_restores_previous(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        clear_installed()
        outer = FaultInjector(seed=1)
        inner = FaultInjector(seed=2)
        with injected(outer):
            with injected(inner) as bound:
                assert bound is inner
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_env_round_trip(self, monkeypatch):
        clear_installed()
        injector = FaultInjector(
            seed=11,
            rules=(FaultRule(site="engine.run", kind="crash", match="Borda"),),
        )
        monkeypatch.setenv(ENV_VAR, injector.to_env())
        resolved = active_injector()
        assert resolved == injector

    def test_env_at_file_indirection(self, monkeypatch, tmp_path):
        clear_installed()
        injector = FaultInjector(
            seed=5, rules=(FaultRule(site="cache.store", kind="corrupt"),)
        )
        payload_file = tmp_path / "faults.json"
        payload_file.write_text(injector.to_env(), encoding="utf-8")
        monkeypatch.setenv(ENV_VAR, f"@{payload_file}")
        assert active_injector() == injector

    def test_installed_injector_wins_over_env(self, monkeypatch):
        env_injector = FaultInjector(seed=1)
        monkeypatch.setenv(ENV_VAR, env_injector.to_env())
        programmatic = FaultInjector(seed=2)
        with injected(programmatic):
            assert active_injector() is programmatic
        assert active_injector() == env_injector

    def test_payload_round_trip(self):
        injector = FaultInjector(
            seed=9,
            rules=(
                FaultRule(site="engine.run", kind="slow", delay_seconds=0.1),
                FaultRule(site="portfolio.member", kind="exception", max_attempt=1),
            ),
        )
        rebuilt = FaultInjector.from_payload(json.loads(injector.to_env()))
        assert rebuilt == injector
