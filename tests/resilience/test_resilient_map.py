"""Tests for resilient_map: retries, quarantine, poison, deadlines, recovery."""

from __future__ import annotations

import os
import time

import pytest

from repro.algorithms import BordaCount
from repro.core.exceptions import ReproError
from repro.engine import (
    ProcessPoolBackend,
    RetryPolicy,
    RunSpec,
    SerialBackend,
    SpecResult,
    ThreadBackend,
    TransientRunError,
    WorkerCrashError,
    resilient_map,
)
from repro.generators import uniform_dataset

# Zero backoff keeps the retry loops instantaneous in tests.
FAST = RetryPolicy(backoff_base_seconds=0.0)


def _specs(names, time_limit=None):
    dataset = uniform_dataset(3, 4, rng=0, name="d0")
    return [
        RunSpec(
            index=index,
            kind="algorithm",
            algorithm_name=name,
            algorithm=BordaCount(),
            dataset=dataset,
            time_limit=time_limit,
        )
        for index, name in enumerate(names)
    ]


def _ok_result(spec: RunSpec) -> SpecResult:
    return SpecResult(
        index=spec.index,
        score=spec.index * 10,
        elapsed_seconds=0.001,
        within_budget=True,
    )


# Work functions are module-level so the process backend can pickle them.
def _ok(spec):
    return _ok_result(spec)


def _flaky_then_ok(spec):
    if spec.algorithm_name == "Flaky" and spec.attempt < 1:
        raise TransientRunError("injected transient fault")
    return _ok_result(spec)


def _always_transient(spec):
    if spec.algorithm_name == "Flaky":
        raise TransientRunError("persistently flaky")
    return _ok_result(spec)


def _always_crash(spec):
    if spec.algorithm_name == "Crasher":
        raise WorkerCrashError("simulated kill")
    return _ok_result(spec)


def _crash_once(spec):
    if spec.algorithm_name == "Crasher" and spec.attempt < 1:
        raise WorkerCrashError("simulated kill")
    return _ok_result(spec)


def _permanent(spec):
    if spec.algorithm_name == "Buggy":
        raise ValueError("a genuine bug")
    return _ok_result(spec)


def _library_error(spec):
    if spec.algorithm_name == "Reference":
        raise ReproError("reference solver unavailable")
    return _ok_result(spec)


def _exit_worker(spec):
    # Genuinely kills the pool worker (process backend only).
    if spec.algorithm_name == "Crasher":
        os._exit(173)
    return _ok_result(spec)


def _sleep_forever(spec):
    if spec.algorithm_name == "Hung":
        time.sleep(1.0)
    return _ok_result(spec)


class TestSerialPath:
    def test_no_faults_pass_through_in_order(self):
        specs = _specs(["A", "B", "C"])
        results, stats = resilient_map(SerialBackend(), _ok, specs, policy=FAST)
        assert [result.index for result in results] == [0, 1, 2]
        assert all(result.attempts == 1 for result in results)
        assert all(result.fault is None for result in results)
        assert stats.describe() == dict.fromkeys(stats.describe(), 0)

    def test_empty_batch(self):
        results, stats = resilient_map(SerialBackend(), _ok, [], policy=FAST)
        assert results == []
        assert stats.retries == 0

    def test_transient_failure_retries_then_succeeds(self):
        specs = _specs(["A", "Flaky", "B"])
        results, stats = resilient_map(
            SerialBackend(), _flaky_then_ok, specs, policy=FAST
        )
        assert [result.score for result in results] == [0, 10, 20]
        assert results[1].attempts == 2
        assert results[0].attempts == 1
        assert stats.retries == 1
        assert stats.quarantined == 0

    def test_persistent_transient_quarantines_with_canonical_message(self):
        specs = _specs(["Flaky", "A"])
        results, stats = resilient_map(
            SerialBackend(), _always_transient, specs, policy=FAST
        )
        record = results[0]
        assert record.score is None
        assert record.error == "quarantined after 3 attempt(s): persistently flaky"
        assert record.fault == "transient"
        assert record.attempts == 3
        assert record.within_budget is True
        assert stats.retries == 2 and stats.quarantined == 1
        assert results[1].score == 10  # the batch still completed

    def test_consecutive_crashes_poison_the_spec(self):
        specs = _specs(["Crasher", "A"])
        results, stats = resilient_map(
            SerialBackend(), _always_crash, specs, policy=FAST
        )
        record = results[0]
        assert record.error == "poisoned after 2 consecutive worker crashes"
        assert record.fault == "crash"
        assert record.within_budget is True
        assert stats.worker_crashes == 2
        assert stats.poisoned == 1
        assert stats.quarantined == 0

    def test_single_crash_recovers(self):
        specs = _specs(["Crasher"])
        results, stats = resilient_map(SerialBackend(), _crash_once, specs, policy=FAST)
        assert results[0].score == 0
        assert results[0].attempts == 2
        assert stats.worker_crashes == 1 and stats.poisoned == 0

    def test_crash_quarantine_message_is_canonical(self):
        # Poison threshold above the attempt budget: the spec quarantines
        # instead, with the backend-independent "worker crash" message.
        policy = RetryPolicy(
            max_attempts=2, poison_threshold=10, backoff_base_seconds=0.0
        )
        results, stats = resilient_map(
            SerialBackend(), _always_crash, _specs(["Crasher"]), policy=policy
        )
        assert results[0].error == "quarantined after 2 attempt(s): worker crash"
        assert stats.quarantined == 1

    def test_unexpected_permanent_error_quarantines_without_retry(self):
        results, stats = resilient_map(
            SerialBackend(), _permanent, _specs(["Buggy", "A"]), policy=FAST
        )
        record = results[0]
        assert record.fault == "permanent"
        assert record.attempts == 1
        assert "a genuine bug" in record.error
        assert stats.retries == 0 and stats.quarantined == 1

    def test_unexpected_error_raises_when_quarantine_disabled(self):
        policy = RetryPolicy(quarantine_unexpected=False, backoff_base_seconds=0.0)
        with pytest.raises(ValueError, match="a genuine bug"):
            resilient_map(SerialBackend(), _permanent, _specs(["Buggy"]), policy=policy)

    def test_library_errors_always_propagate(self):
        with pytest.raises(ReproError, match="reference solver unavailable"):
            resilient_map(
                SerialBackend(), _library_error, _specs(["Reference"]), policy=FAST
            )


class TestThreadPath:
    def test_matches_serial_results(self):
        specs = _specs(["A", "Flaky", "B", "Crasher"])
        serial_results, _ = resilient_map(
            SerialBackend(), _flaky_then_ok, specs, policy=FAST
        )
        backend = ThreadBackend(max_workers=4)
        try:
            pooled_results, stats = resilient_map(
                backend, _flaky_then_ok, specs, policy=FAST
            )
        finally:
            backend.shutdown()
        assert pooled_results == serial_results
        assert stats.retries == 1

    def test_poison_on_thread_backend(self):
        backend = ThreadBackend(max_workers=4)
        try:
            results, stats = resilient_map(
                backend, _always_crash, _specs(["Crasher", "A", "B"]), policy=FAST
            )
        finally:
            backend.shutdown()
        assert results[0].error == "poisoned after 2 consecutive worker crashes"
        assert [result.score for result in results[1:]] == [10, 20]
        assert stats.poisoned == 1 and stats.worker_crashes == 2

    def test_library_error_propagates_from_pool(self):
        backend = ThreadBackend(max_workers=2)
        try:
            with pytest.raises(ReproError):
                resilient_map(
                    backend, _library_error, _specs(["Reference", "A"]), policy=FAST
                )
        finally:
            backend.shutdown()

    def test_hard_deadline_abandons_hung_future(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.0, default_deadline_seconds=0.15
        )
        backend = ThreadBackend(max_workers=4)
        try:
            results, stats = resilient_map(
                backend, _sleep_forever, _specs(["Hung", "A", "B"]), policy=policy
            )
        finally:
            backend.shutdown()
        record = results[0]
        # Shaped exactly like an a-posteriori over-budget verdict.
        assert record.score is None
        assert record.within_budget is False
        assert record.error is None
        assert record.fault == "deadline"
        assert stats.deadline_hits == 1
        assert [result.score for result in results[1:]] == [10, 20]


class TestProcessPath:
    def test_real_worker_kill_is_isolated_and_poisoned(self):
        backend = ProcessPoolBackend(max_workers=2)
        try:
            results, stats = resilient_map(
                backend, _exit_worker, _specs(["Crasher", "A", "B", "C"]), policy=FAST
            )
        finally:
            backend.shutdown()
        record = results[0]
        assert record.error == "poisoned after 2 consecutive worker crashes"
        assert record.fault == "crash"
        assert [result.score for result in results[1:]] == [10, 20, 30]
        assert stats.pool_rebuilds >= 1
        assert stats.worker_crashes == 2
        assert stats.poisoned == 1

    def test_pool_recovery_matches_serial_accounting(self):
        specs = _specs(["Crasher", "A", "B"])
        serial_results, serial_stats = resilient_map(
            SerialBackend(), _always_crash, specs, policy=FAST
        )
        backend = ProcessPoolBackend(max_workers=2)
        try:
            pooled_results, pooled_stats = resilient_map(
                backend, _exit_worker, specs, policy=FAST
            )
        finally:
            backend.shutdown()
        # The pooled crash is a real worker kill, the serial one a simulated
        # exception — yet the records (modulo wall-clock time) and the
        # attribution counters agree.
        from dataclasses import replace

        normalize = [replace(result, elapsed_seconds=0.0) for result in pooled_results]
        expected = [replace(result, elapsed_seconds=0.0) for result in serial_results]
        assert normalize == expected
        assert pooled_stats.worker_crashes == serial_stats.worker_crashes
        assert pooled_stats.poisoned == serial_stats.poisoned


class TestBackendContract:
    def test_pooled_backend_rebuild_replaces_executor(self):
        backend = ThreadBackend(max_workers=2)
        try:
            first = backend.executor()
            assert backend.executor() is first
            backend.rebuild()
            second = backend.executor()
            assert second is not first
            assert second.submit(int).result() == 0
        finally:
            backend.shutdown()
