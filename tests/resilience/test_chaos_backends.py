"""Chaos suite: backend equivalence of whole reports under injected faults.

The acceptance bar of the resilience layer: with a deterministic fault plan
(:mod:`repro.testing.faults`) killing workers and injecting transient
exceptions mid-batch, serial, thread and process backends must all complete
the batch — zero aborts — and produce *identical* reports: the same
structured error records for the faulted specs, the same scores for every
non-faulted spec.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_algorithm
from repro.engine import (
    ExecutionEngine,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    ThreadBackend,
)
from repro.evaluation import evaluate_algorithms
from repro.generators import uniform_dataset
from repro.testing import ENV_VAR, FaultInjector, FaultRule, injected

FAST = RetryPolicy(backoff_base_seconds=0.0)

SUITE_NAMES = [
    "BordaCount",
    "CopelandMethod",
    "MEDRank(0.5)",
    "Pick-a-Perm",
    "RepeatChoice",
    "KwikSort",
    "BioConsert",
]


def _suite():
    return {name: make_algorithm(name, seed=7) for name in SUITE_NAMES}


def _datasets():
    return [uniform_dataset(3, 6, rng=seed, name=f"d{seed}") for seed in range(2)]


CHAOS_PLAN = FaultInjector(
    seed=7,
    rules=(
        # A spec whose worker dies on every attempt: poisoned.
        FaultRule(site="engine.run", kind="crash", match="MEDRank(0.5):d0"),
        # A transient blip on the first attempt only: retried, then succeeds.
        FaultRule(site="engine.run", kind="exception", match="KwikSort:d1", max_attempt=1),
        # A persistent transient failure: quarantined after max_attempts.
        FaultRule(site="engine.run", kind="exception", match="CopelandMethod:d1"),
    ),
)


class TestChaosAcceptance:
    """The ISSUE acceptance scenario: a 7-algorithm batch under chaos."""

    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        # scope="class": the three backend runs are expensive; compute once.
        reports = {}
        for backend in (
            SerialBackend(),
            ThreadBackend(max_workers=4),
            ProcessPoolBackend(max_workers=4),
        ):
            os.environ[ENV_VAR] = CHAOS_PLAN.to_env()
            try:
                with injected(CHAOS_PLAN):
                    engine = ExecutionEngine(backend=backend, retry_policy=FAST)
                    reports[backend.name] = (
                        evaluate_algorithms(_datasets(), _suite(), engine=engine),
                        engine.session_fanout,
                    )
            finally:
                os.environ.pop(ENV_VAR, None)
                shutdown = getattr(backend, "shutdown", None)
                if shutdown is not None:
                    shutdown()
        return reports

    def test_every_backend_completes_the_batch(self, reports):
        expected_runs = len(SUITE_NAMES) * 2
        for _, (report, _) in reports.items():
            assert len(report.runs) == expected_runs

    def test_reports_are_identical_across_backends(self, reports):
        fingerprints = {
            name: report.result_fingerprint()
            for name, (report, _) in reports.items()
        }
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_faulted_specs_carry_structured_error_records(self, reports):
        report, _ = reports["serial"]
        by_key = {(run.algorithm, run.dataset): run for run in report.runs}
        poisoned = by_key[("MEDRank(0.5)", "d0")]
        assert poisoned.error == "poisoned after 2 consecutive worker crashes"
        assert poisoned.score is None
        quarantined = by_key[("CopelandMethod", "d1")]
        assert quarantined.error is not None
        assert quarantined.error.startswith("quarantined after 3 attempt(s):")
        retried = by_key[("KwikSort", "d1")]
        assert retried.score is not None  # transient blip recovered

    def test_non_faulted_specs_score_identically(self, reports):
        serial_scores = {
            (run.algorithm, run.dataset): run.score
            for run, _ in [(r, None) for r in reports["serial"][0].runs]
        }
        for name, (report, _) in reports.items():
            for run in report.runs:
                assert run.score == serial_scores[(run.algorithm, run.dataset)], name

    def test_resilience_accounting_is_backend_independent(self, reports):
        descriptions = {
            name: stats.describe() for name, (_, stats) in reports.items()
        }
        serial = dict(descriptions["serial"])
        for name, description in descriptions.items():
            # Pool rebuilds are inherently process-only mechanics; every
            # other counter must match the serial ground truth.
            description = dict(description)
            description.pop("pool_rebuilds")
            expected = dict(serial)
            expected.pop("pool_rebuilds")
            assert description == expected, name
        assert descriptions["serial"]["pool_rebuilds"] == 0
        assert descriptions["process"]["pool_rebuilds"] >= 1

    def test_report_degradation_summary(self, reports):
        report, _ = reports["serial"]
        resilience = report.execution_summary()["resilience"]
        assert resilience["poisoned_runs"] == 1
        assert resilience["quarantined_runs"] == 1
        assert resilience["retried_runs"] >= 1
        assert report.degraded_runs == 2


class TestCacheUnderChaos:
    def test_faulted_records_are_never_cached(self, tmp_path, monkeypatch):
        from repro.engine import ResultCache

        cache_dir = tmp_path / "cache"
        backend = SerialBackend()
        injector = FaultInjector(
            rules=(FaultRule(site="engine.run", kind="crash", match="MEDRank(0.5):d0"),)
        )
        monkeypatch.setenv(ENV_VAR, injector.to_env())
        with injected(injector):
            engine = ExecutionEngine(
                backend=backend, cache=ResultCache(cache_dir), retry_policy=FAST
            )
            report = evaluate_algorithms(_datasets(), _suite(), engine=engine)
        monkeypatch.delenv(ENV_VAR, raising=False)
        degraded = [run for run in report.runs if run.error]
        assert len(degraded) == 1

        # Chaos over: the poisoned spec was not cached, so a clean engine
        # recomputes it and the batch fully recovers.
        clean_engine = ExecutionEngine(
            backend=SerialBackend(), cache=ResultCache(cache_dir), retry_policy=FAST
        )
        healed = evaluate_algorithms(_datasets(), _suite(), engine=clean_engine)
        assert all(run.error is None for run in healed.runs)
        summary = healed.execution_summary()
        assert summary["cached_runs"] == len(SUITE_NAMES) * 2 - 1
        assert summary["executed_runs"] == 1


# Fast deterministic subset for the property sweep: no randomized algorithms
# (their per-call generators are seeded, but a smaller suite keeps the
# hypothesis examples quick).
PROPERTY_NAMES = ["BordaCount", "CopelandMethod", "MEDRank(0.5)"]

_rule_strategy = st.builds(
    FaultRule,
    site=st.just("engine.run"),
    kind=st.sampled_from(["crash", "exception"]),
    probability=st.sampled_from([0.0, 0.5, 1.0]),
    match=st.sampled_from(["", "d0", "d1"] + [f"{name}:" for name in PROPERTY_NAMES]),
    max_attempt=st.sampled_from([None, 1, 2]),
)


class TestBackendEquivalenceProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rules=st.lists(_rule_strategy, max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_serial_and_thread_reports_identical_under_any_plan(self, seed, rules):
        injector = FaultInjector(seed=seed, rules=tuple(rules))
        datasets = [uniform_dataset(3, 5, rng=s, name=f"d{s}") for s in range(2)]

        def run(backend):
            suite = {name: make_algorithm(name, seed=3) for name in PROPERTY_NAMES}
            try:
                with injected(injector):
                    engine = ExecutionEngine(backend=backend, retry_policy=FAST)
                    return evaluate_algorithms(datasets, suite, engine=engine)
            finally:
                shutdown = getattr(backend, "shutdown", None)
                if shutdown is not None:
                    shutdown()

        serial = run(SerialBackend())
        threaded = run(ThreadBackend(max_workers=4))
        assert serial.result_fingerprint() == threaded.result_fingerprint()
        assert len(serial.runs) == len(PROPERTY_NAMES) * len(datasets)
