"""CLI exit codes and summaries for degraded batches."""

from __future__ import annotations

import pytest

from repro import cli
from repro.algorithms import BordaCount, CopelandMethod
from repro.evaluation import evaluate_algorithms
from repro.generators import uniform_dataset
from repro.testing import FaultInjector, FaultRule, injected


@pytest.fixture(autouse=True)
def small_experiment(monkeypatch):
    """Replace the experiment table with a tiny two-algorithm batch.

    The stand-in routes through the real engine passed by ``_run_batch``,
    so resilience accounting, exit codes and summaries are exercised
    end-to-end without the cost of a full paper experiment.
    """

    def _tiny(name, scale, seed, engine=None):
        datasets = [uniform_dataset(3, 5, rng=seed, name="d0")]
        suite = {"BordaCount": BordaCount(), "CopelandMethod": CopelandMethod()}
        report = evaluate_algorithms(datasets, suite, engine=engine)
        lines = [f"{run.algorithm}: {run.score} ({run.error})" for run in report.runs]
        return "\n".join(lines)

    monkeypatch.setattr(cli, "_run_experiment", _tiny)


def _main(tmp_path, extra=()):
    return cli.main(
        ["batch", "table4", "--scale", "smoke", "--no-cache", *extra]
    )


class TestExitCodes:
    def test_clean_batch_exits_zero(self, tmp_path, capsys):
        assert _main(tmp_path) == 0
        captured = capsys.readouterr()
        assert "engine summary:" in captured.out
        assert "batch degraded" not in captured.err

    def test_quarantined_batch_exits_three(self, tmp_path, capsys):
        injector = FaultInjector(
            rules=(
                FaultRule(
                    site="engine.run", kind="exception", match="CopelandMethod"
                ),
            )
        )
        with injected(injector):
            code = _main(tmp_path)
        assert code == 3
        captured = capsys.readouterr()
        assert "1 quarantined spec(s)" in captured.err
        assert "resilience:" in captured.out

    def test_poisoned_batch_exits_four(self, tmp_path, capsys):
        injector = FaultInjector(
            rules=(FaultRule(site="engine.run", kind="crash", match="BordaCount"),)
        )
        with injected(injector):
            code = _main(tmp_path)
        assert code == 4
        captured = capsys.readouterr()
        assert "1 poison spec(s)" in captured.err
        assert "worker crashes" in captured.out

    def test_retried_batch_still_exits_zero(self, tmp_path, capsys):
        injector = FaultInjector(
            rules=(
                FaultRule(
                    site="engine.run",
                    kind="exception",
                    match="CopelandMethod",
                    max_attempt=1,
                ),
            )
        )
        with injected(injector):
            code = _main(tmp_path)
        assert code == 0  # the retry recovered; nothing degraded
        captured = capsys.readouterr()
        assert "resilience:" in captured.out
        assert "1 retries" in captured.out


class TestCorruptCacheSummary:
    def test_quarantined_cache_records_are_reported(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = cli.main(
            [
                "batch",
                "table4",
                "--scale",
                "smoke",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        assert code == 0
        capsys.readouterr()
        for path in cache_dir.glob("*/*.json"):
            path.write_text("{corrupted", encoding="utf-8")
        code = cli.main(
            [
                "batch",
                "table4",
                "--scale",
                "smoke",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        assert code == 0  # healing is silent degradation, not an error
        captured = capsys.readouterr()
        assert "corrupt cache record(s)" in captured.out
