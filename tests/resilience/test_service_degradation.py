"""Graceful degradation of the serving layer under load and failures."""

from __future__ import annotations

import pytest

from repro.generators import uniform_dataset
from repro.service import (
    PortfolioScheduler,
    ServiceFrontend,
    ServiceRequest,
)
from repro.testing import FaultInjector, FaultRule, injected


@pytest.fixture(scope="module")
def dataset():
    return uniform_dataset(4, 7, rng=11, name="svc")


@pytest.fixture(scope="module")
def other_dataset():
    return uniform_dataset(4, 7, rng=12, name="svc2")


class TestBoundedAdmission:
    def test_requests_beyond_max_queue_are_rejected(self, dataset, other_dataset):
        frontend = ServiceFrontend(
            None, default_budget_seconds=0.2, max_queue=2
        )
        datasets = [dataset, other_dataset, dataset, other_dataset]
        responses = frontend.submit_batch(
            [ServiceRequest(d, request_id=str(i)) for i, d in enumerate(datasets)]
        )
        assert [response.request_id for response in responses] == ["0", "1", "2", "3"]
        admitted, rejected = responses[:2], responses[2:]
        assert all(response.status == "ok" for response in admitted)
        assert all(response.consensus is not None for response in admitted)
        for response in rejected:
            assert response.status == "overloaded"
            assert response.source == "rejected"
            assert response.consensus is None and response.score is None
            assert not response.succeeded
            assert "admission queue full (2 of 4 requests admitted)" == response.error
        stats = frontend.stats()
        assert stats.rejected == 2
        assert stats.describe()["rejected"] == 2

    def test_max_queue_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            ServiceFrontend(None, max_queue=0)

    def test_batch_within_bound_is_untouched(self, dataset):
        frontend = ServiceFrontend(None, default_budget_seconds=0.2, max_queue=8)
        responses = frontend.submit_batch([ServiceRequest(dataset)] * 2)
        assert all(response.status == "ok" for response in responses)
        assert frontend.stats().rejected == 0


class TestPerRequestDeadlines:
    def test_expired_deadline_rejects_before_execution(self, dataset):
        frontend = ServiceFrontend(None, default_budget_seconds=0.2)
        responses = frontend.submit_batch(
            [
                ServiceRequest(dataset, request_id="live"),
                # Queued behind the first group: by the time its group is
                # reached some wall-clock has passed, exceeding a 0s deadline.
                ServiceRequest(
                    uniform_dataset(4, 7, rng=13, name="late"),
                    request_id="late",
                    deadline_seconds=0.0,
                ),
            ]
        )
        live, late = responses
        assert live.status == "ok"
        assert late.status == "deadline"
        assert late.source == "rejected"
        assert late.consensus is None
        assert "deadline 0.0s expired" in late.error
        assert frontend.stats().deadline_misses == 1

    def test_next_live_request_is_promoted_to_leader(self, dataset):
        frontend = ServiceFrontend(None, default_budget_seconds=0.2)
        responses = frontend.submit_batch(
            [
                ServiceRequest(dataset, request_id="doomed", deadline_seconds=0.0),
                ServiceRequest(dataset, request_id="leader"),
                ServiceRequest(dataset, request_id="follower"),
            ]
        )
        doomed, leader, follower = responses
        assert doomed.status == "deadline"
        assert leader.status == "ok" and leader.source == "computed"
        assert follower.status == "ok" and follower.source == "coalesced"
        assert follower.consensus == leader.consensus

    def test_direct_submit_ignores_deadline(self, dataset):
        # submit() never queues, so even a zero deadline is satisfiable.
        frontend = ServiceFrontend(None, default_budget_seconds=0.2)
        response = frontend.submit(ServiceRequest(dataset, deadline_seconds=0.0))
        assert response.status == "ok"


class TestFailurePropagation:
    def test_failed_computation_degrades_instead_of_raising(self, dataset):
        frontend = ServiceFrontend(None, default_budget_seconds=0.2)
        response = frontend.submit(
            ServiceRequest(dataset, algorithm="NoSuchAlgorithm")
        )
        assert response.status == "failed"
        assert response.source == "error"
        assert response.consensus is None
        assert "NoSuchAlgorithm" in response.error
        assert frontend.stats().failed == 1

    def test_failed_leader_propagates_to_coalesced_followers(self, dataset):
        frontend = ServiceFrontend(None, default_budget_seconds=0.2)
        responses = frontend.submit_batch(
            [
                ServiceRequest(dataset, algorithm="NoSuchAlgorithm", request_id="a"),
                ServiceRequest(dataset, algorithm="NoSuchAlgorithm", request_id="b"),
            ]
        )
        leader, follower = responses
        assert leader.status == "failed" and leader.source == "error"
        assert follower.status == "failed" and follower.source == "coalesced"
        assert follower.error == leader.error
        assert follower.consensus is None
        # Both count as failed; the follower still coalesced (no recompute).
        assert frontend.stats().failed == 2

    def test_mixed_batch_failure_does_not_poison_other_groups(
        self, dataset, other_dataset
    ):
        frontend = ServiceFrontend(None, default_budget_seconds=0.2)
        responses = frontend.submit_batch(
            [
                ServiceRequest(dataset, algorithm="NoSuchAlgorithm"),
                ServiceRequest(other_dataset),
            ]
        )
        assert responses[0].status == "failed"
        assert responses[1].status == "ok"
        assert responses[1].consensus is not None


class TestPortfolioMemberRetries:
    def test_transient_member_failure_is_retried(self, dataset):
        injector = FaultInjector(
            rules=(
                FaultRule(
                    site="portfolio.member",
                    kind="exception",
                    match="BordaCount",
                    max_attempt=1,
                ),
            )
        )
        scheduler = PortfolioScheduler(
            budget_seconds=1.0, algorithms=["BordaCount"], member_attempts=2
        )
        with injected(injector):
            result = scheduler.run(dataset)
        assert result.algorithm == "BordaCount"
        assert result.score is not None
        member = next(m for m in result.members if m.algorithm == "BordaCount")
        assert member.status == "finished"

    def test_persistent_member_failure_falls_back_to_floor(self, dataset):
        injector = FaultInjector(
            rules=(FaultRule(site="portfolio.member", kind="exception"),)
        )
        scheduler = PortfolioScheduler(
            budget_seconds=1.0, algorithms=["BordaCount"], member_attempts=2
        )
        with injected(injector):
            result = scheduler.run(dataset)
        # Every budgeted member failed, but the forced floor run (the
        # cheapest one-shot member, unbudgeted and outside the injection
        # site) still produced a consensus: the race degrades, not aborts.
        assert result.consensus is not None
        assert result.score is not None
        statuses = {member.status for member in result.members}
        assert "failed" in statuses
        failed = next(m for m in result.members if m.status == "failed")
        assert "transient failure persisted after 2 attempt(s)" in failed.reason

    def test_member_attempts_validation(self):
        with pytest.raises(ValueError, match="member_attempts"):
            PortfolioScheduler(member_attempts=0)

    def test_simulated_crash_is_retried_like_transient(self, dataset):
        injector = FaultInjector(
            rules=(
                FaultRule(
                    site="portfolio.member",
                    kind="crash",
                    match="BordaCount",
                    max_attempt=1,
                ),
            )
        )
        scheduler = PortfolioScheduler(
            budget_seconds=1.0, algorithms=["BordaCount"], member_attempts=2
        )
        with injected(injector):
            result = scheduler.run(dataset)
        member = next(m for m in result.members if m.algorithm == "BordaCount")
        assert member.status == "finished"
        assert result.consensus is not None
