"""Cache self-healing: corrupt records are quarantined, never fatal."""

from __future__ import annotations

import json

from repro.algorithms import BordaCount
from repro.engine import (
    ExecutionEngine,
    ResultCache,
    RetryPolicy,
    SerialBackend,
    TieredResultCache,
)
from repro.evaluation import evaluate_algorithms
from repro.generators import uniform_dataset
from repro.testing import FaultInjector, FaultRule, injected

FAST = RetryPolicy(backoff_base_seconds=0.0)


def _store(cache, key="a" * 40):
    cache.store(key, {"algorithm": "BordaCount", "score": 5})
    return key


class TestQuarantine:
    def test_unparseable_record_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _store(cache)
        path = cache._path(key)
        path.write_text("{not json", encoding="utf-8")

        assert cache.lookup(key) is None
        assert not path.exists()  # renamed out of the cache namespace
        quarantined = list(path.parent.glob(f"{path.name}.corrupt-*"))
        assert len(quarantined) == 1
        assert cache.stats().corrupt == 1

    def test_non_object_record_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _store(cache)
        cache._path(key).write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert cache.lookup(key) is None
        assert cache.stats().corrupt == 1

    def test_quarantined_file_is_invisible_to_record_glob(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _store(cache)
        cache._path(key).write_text("garbage", encoding="utf-8")
        cache.lookup(key)
        assert len(cache) == 0
        assert cache.stats().entries == 0
        assert key not in cache

    def test_missing_record_is_a_plain_miss_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.lookup("f" * 40) is None
        assert cache.stats().corrupt == 0
        assert cache.stats().misses == 1

    def test_store_after_quarantine_heals_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _store(cache)
        cache._path(key).write_text("garbage", encoding="utf-8")
        assert cache.lookup(key) is None
        _store(cache, key)
        record = cache.lookup(key)
        assert record is not None and record["score"] == 5

    def test_corrupt_counter_in_describe(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _store(cache)
        cache._path(key).write_text("garbage", encoding="utf-8")
        cache.lookup(key)
        assert cache.stats().describe()["corrupt"] == 1


class TestStoreFaultSite:
    def test_corrupt_rule_garbles_the_written_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        injector = FaultInjector(
            rules=(FaultRule(site="cache.store", kind="corrupt"),)
        )
        with injected(injector):
            key = _store(cache)
        # The write landed, but the bytes are garbage...
        assert cache._path(key).exists()
        # ...so the next lookup heals: quarantine + miss.
        assert cache.lookup(key) is None
        assert cache.stats().corrupt == 1
        # Chaos over: a clean store round-trips again.
        _store(cache, key)
        assert cache.lookup(key) is not None

    def test_match_filter_scopes_the_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        injector = FaultInjector(
            rules=(FaultRule(site="cache.store", kind="corrupt", match="aaaa"),)
        )
        with injected(injector):
            hit_key = _store(cache, "a" * 40)
            clean_key = _store(cache, "b" * 40)
        assert cache.lookup(hit_key) is None
        assert cache.lookup(clean_key) is not None


class TestTieredHealing:
    def test_disk_corruption_heals_through_the_tiers(self, tmp_path):
        tiered = TieredResultCache(tmp_path, memory_entries=8)
        key = "c" * 40
        tiered.store(key, {"algorithm": "BordaCount", "score": 3})
        # Kill the memory tier and corrupt the disk record: a cold process
        # with a broken disk file.
        cold = TieredResultCache(tmp_path, memory_entries=8)
        cold.disk._path(key).write_text("{broken", encoding="utf-8")
        record, source = cold.lookup_with_source(key)
        assert record is None and source == "none"
        assert cold.disk.stats().corrupt == 1
        # Recompute-and-store heals both tiers.
        cold.store(key, {"algorithm": "BordaCount", "score": 3})
        record, source = cold.lookup_with_source(key)
        assert record is not None and source == "memory"


class TestEngineRecomputesThroughCorruption:
    def test_corrupted_cache_recomputes_and_restores(self, tmp_path):
        datasets = [uniform_dataset(3, 5, rng=0, name="d0")]
        suite = {"BordaCount": BordaCount()}
        cache_dir = tmp_path / "cache"

        def run():
            engine = ExecutionEngine(
                backend=SerialBackend(),
                cache=ResultCache(cache_dir),
                retry_policy=FAST,
            )
            report = evaluate_algorithms(datasets, suite, engine=engine)
            return report, engine

        first, _ = run()

        # Garble every record on disk.
        corrupted = 0
        for path in cache_dir.glob("*/*.json"):
            path.write_text("{corrupted", encoding="utf-8")
            corrupted += 1
        assert corrupted > 0

        second, engine = run()
        assert second.result_fingerprint() == first.result_fingerprint()
        summary = second.execution_summary()
        assert summary["cached_runs"] == 0  # every hit was quarantined
        assert engine.cache.stats().corrupt == corrupted

        # The re-stored records serve the third run entirely from cache.
        third, _ = run()
        assert third.execution_summary()["executed_runs"] == 0
        assert third.result_fingerprint() == first.result_fingerprint()
