"""Tests for the retry taxonomy, RetryPolicy and FanoutStats."""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.algorithms import BordaCount
from repro.core.exceptions import ReproError
from repro.engine import (
    CLASS_CRASH,
    CLASS_PERMANENT,
    CLASS_TRANSIENT,
    FanoutStats,
    RetryPolicy,
    RunSpec,
    TransientRunError,
    WorkerCrashError,
    classify_exception,
)
from repro.generators import uniform_dataset


class TestClassifyException:
    @pytest.mark.parametrize(
        "error",
        [
            BrokenExecutor("pool died"),
            BrokenProcessPool("worker killed"),
            WorkerCrashError("simulated kill"),
        ],
    )
    def test_crash_class(self, error):
        assert classify_exception(error) == CLASS_CRASH

    @pytest.mark.parametrize(
        "error",
        [
            TransientRunError("flaky"),
            TimeoutError("slow dependency"),
            ConnectionError("network blip"),
            InterruptedError("signal"),
        ],
    )
    def test_transient_class(self, error):
        assert classify_exception(error) == CLASS_TRANSIENT

    @pytest.mark.parametrize(
        "error",
        [ValueError("bug"), ReproError("library failure"), OSError("disk")],
    )
    def test_permanent_class(self, error):
        assert classify_exception(error) == CLASS_PERMANENT


class TestRetryPolicyValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_zero_poison_threshold(self):
        with pytest.raises(ValueError, match="poison_threshold"):
            RetryPolicy(poison_threshold=0)

    def test_rejects_jitter_out_of_range(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestDelayFor:
    def test_zero_base_means_no_delay(self):
        policy = RetryPolicy(backoff_base_seconds=0.0)
        assert policy.delay_for("key", 1) == 0.0
        assert policy.delay_for("key", 5) == 0.0

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.1,
            backoff_factor=2.0,
            backoff_max_seconds=10.0,
            jitter=0.0,
        )
        assert policy.delay_for("key", 1) == pytest.approx(0.1)
        assert policy.delay_for("key", 2) == pytest.approx(0.2)
        assert policy.delay_for("key", 3) == pytest.approx(0.4)

    def test_delay_is_capped(self):
        policy = RetryPolicy(
            backoff_base_seconds=1.0,
            backoff_factor=10.0,
            backoff_max_seconds=2.0,
            jitter=0.0,
        )
        assert policy.delay_for("key", 5) == pytest.approx(2.0)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.1,
            backoff_factor=2.0,
            backoff_max_seconds=10.0,
            jitter=0.5,
            jitter_seed=4,
        )
        first = policy.delay_for("algorithm:BordaCount:d0", 1)
        second = policy.delay_for("algorithm:BordaCount:d0", 1)
        assert first == second
        # jitter 0.5 spreads the 0.1s base into [0.05, 0.15].
        assert 0.05 <= first <= 0.15
        # Different keys land on different points of the spread.
        other = policy.delay_for("algorithm:KwikSort:d1", 1)
        assert other != first


class TestDeadlineAt:
    def _spec(self, time_limit):
        dataset = uniform_dataset(3, 4, rng=0, name="d0")
        return RunSpec(
            index=0,
            kind="algorithm",
            algorithm_name="BordaCount",
            algorithm=BordaCount(),
            dataset=dataset,
            time_limit=time_limit,
        )

    def test_limit_scaled_with_grace(self):
        policy = RetryPolicy(deadline_factor=4.0, deadline_grace_seconds=1.0)
        assert policy.deadline_at(self._spec(2.0), now=100.0) == pytest.approx(109.0)

    def test_no_limit_uses_default_deadline(self):
        policy = RetryPolicy(default_deadline_seconds=30.0)
        assert policy.deadline_at(self._spec(None), now=10.0) == pytest.approx(40.0)

    def test_no_limit_no_default_waits_forever(self):
        policy = RetryPolicy()
        assert policy.deadline_at(self._spec(None), now=10.0) is None


class TestFanoutStats:
    def test_describe_lists_every_counter(self):
        stats = FanoutStats(retries=1, worker_crashes=2, poisoned=3)
        description = stats.describe()
        assert description == {
            "retries": 1,
            "worker_crashes": 2,
            "pool_rebuilds": 0,
            "deadline_hits": 0,
            "quarantined": 0,
            "poisoned": 3,
        }

    def test_merge_accumulates(self):
        total = FanoutStats(retries=1, quarantined=1)
        total.merge(FanoutStats(retries=2, pool_rebuilds=1, deadline_hits=4))
        assert total.retries == 3
        assert total.pool_rebuilds == 1
        assert total.deadline_hits == 4
        assert total.quarantined == 1


class TestFaultKey:
    def test_fault_key_is_backend_independent(self):
        dataset = uniform_dataset(3, 4, rng=1, name="paper")
        spec = RunSpec(
            index=4,
            kind="optimal",
            algorithm_name="ExactSubsetDP",
            algorithm=BordaCount(),
            dataset=dataset,
        )
        assert spec.fault_key == "optimal:ExactSubsetDP:paper"
