"""Tests for the timing harness and time budgets."""

from __future__ import annotations

import time

import pytest

from repro.core import TimeBudgetExceeded
from repro.evaluation import TimeBudget, measure_time, run_with_budget


class TestMeasureTime:
    def test_counts_runs_until_threshold(self):
        calls = []
        result = measure_time(
            lambda: calls.append(1), min_total_seconds=0.01, max_runs=1000
        )
        assert result.runs >= 1
        assert result.seconds_per_run >= 0.0
        assert result.total_seconds >= 0.0
        # warm-up call plus measured runs
        assert len(calls) == result.runs + 1

    def test_respects_max_runs(self):
        result = measure_time(lambda: None, min_total_seconds=10.0, max_runs=3)
        assert result.runs == 3

    def test_no_warmup(self):
        calls = []
        result = measure_time(
            lambda: calls.append(1), min_total_seconds=0.0, max_runs=5, warmup=False
        )
        assert len(calls) == result.runs

    def test_slow_function_single_run(self):
        result = measure_time(
            lambda: time.sleep(0.02), min_total_seconds=0.01, max_runs=100
        )
        assert result.runs <= 2
        assert result.seconds_per_run >= 0.015


class TestTimeBudget:
    def test_not_exhausted_initially(self):
        budget = TimeBudget(10.0).start()
        assert not budget.exhausted
        budget.check()

    def test_elapsed_without_start(self):
        assert TimeBudget(1.0).elapsed == 0.0

    def test_exhausted_budget_raises(self):
        budget = TimeBudget(0.0).start()
        time.sleep(0.01)
        assert budget.exhausted
        with pytest.raises(TimeBudgetExceeded):
            budget.check()


class TestRunWithBudget:
    def test_within_budget(self):
        result, elapsed, within = run_with_budget(lambda: 42, limit_seconds=10.0)
        assert result == 42
        assert within
        assert elapsed >= 0.0

    def test_no_limit(self):
        result, _, within = run_with_budget(lambda: "ok", limit_seconds=None)
        assert result == "ok"
        assert within

    def test_exceeding_budget_discards_result(self):
        result, elapsed, within = run_with_budget(
            lambda: time.sleep(0.03) or "late", limit_seconds=0.001
        )
        assert result is None
        assert not within
        assert elapsed >= 0.03
