"""Tests for the guidance engine (Section 7.4 recommendations)."""

from __future__ import annotations

import pytest

from repro.core import Ranking
from repro.datasets import Dataset
from repro.evaluation import (
    DatasetProfile,
    Priority,
    profile_dataset,
    recommend,
)
from repro.generators import markov_dataset, uniform_dataset


class TestProfileDataset:
    def test_profile_fields(self):
        dataset = uniform_dataset(5, 12, rng=1)
        profile = profile_dataset(dataset)
        assert profile.num_elements == 12
        assert profile.num_rankings == 5
        assert profile.similarity is not None
        assert 0.0 <= profile.tie_density <= 1.0

    def test_large_bucket_detection(self):
        dataset = Dataset([Ranking([["A"], list("BCDEFGHIJKLM")])], name="big-bucket")
        profile = profile_dataset(dataset, large_bucket_threshold=10)
        assert profile.has_large_buckets

    def test_similar_dataset_detected(self):
        dataset = markov_dataset(5, 12, 5, rng=2)
        assert profile_dataset(dataset).is_similar

    def test_small_and_huge_flags(self):
        small = DatasetProfile(10, 5, 0.0, 0.0, False)
        huge = DatasetProfile(50_000, 5, 0.0, 0.0, False)
        assert small.is_small and not small.is_huge
        assert huge.is_huge and not huge.is_small


class TestRecommend:
    def test_default_recommendation_is_bioconsert(self):
        profile = DatasetProfile(100, 7, 0.0, 0.1, False)
        recommendations = recommend(profile)
        assert recommendations[0].algorithm == "BioConsert"

    def test_accepts_dataset_directly(self):
        dataset = uniform_dataset(4, 10, rng=3)
        recommendations = recommend(dataset)
        assert recommendations[0].algorithm == "BioConsert"

    def test_optimality_small_dataset(self):
        profile = DatasetProfile(12, 5, 0.0, 0.1, False)
        recommendations = recommend(profile, Priority.OPTIMALITY)
        assert recommendations[0].algorithm == "ExactAlgorithm"

    def test_optimality_large_dataset_falls_back(self):
        profile = DatasetProfile(500, 5, 0.0, 0.1, False)
        recommendations = recommend(profile, Priority.OPTIMALITY)
        assert recommendations[0].algorithm == "BioConsert"

    def test_speed_with_large_ties_prefers_medrank(self):
        profile = DatasetProfile(2000, 5, -0.1, 0.4, True)
        recommendations = recommend(profile, Priority.SPEED)
        assert recommendations[0].algorithm == "MEDRank(0.5)"

    def test_speed_with_few_ties_prefers_borda(self):
        profile = DatasetProfile(2000, 5, 0.1, 0.01, False)
        recommendations = recommend(profile, Priority.SPEED)
        assert recommendations[0].algorithm == "BordaCount"

    def test_huge_dataset_prefers_kwiksort(self):
        profile = DatasetProfile(50_000, 5, 0.4, 0.05, False)
        recommendations = recommend(profile, Priority.BALANCED)
        assert recommendations[0].algorithm == "KwikSort"

    def test_quality_small_dataset_mentions_exact(self):
        profile = DatasetProfile(12, 5, 0.0, 0.1, False)
        names = [entry.algorithm for entry in recommend(profile, Priority.QUALITY)]
        assert "ExactAlgorithm" in names

    def test_similar_dataset_mentions_kwiksort(self):
        profile = DatasetProfile(200, 7, 0.7, 0.1, False)
        names = [entry.algorithm for entry in recommend(profile)]
        assert "KwikSortMin" in names

    def test_priority_accepts_strings(self):
        profile = DatasetProfile(100, 7, 0.0, 0.1, False)
        assert recommend(profile, "speed")[0].algorithm in {"BordaCount", "MEDRank(0.5)"}

    def test_invalid_priority(self):
        profile = DatasetProfile(100, 7, 0.0, 0.1, False)
        with pytest.raises(ValueError):
            recommend(profile, "fastest-ever")

    def test_reasons_are_informative(self):
        profile = DatasetProfile(100, 7, 0.0, 0.1, False)
        for entry in recommend(profile):
            assert len(entry.reason) > 10
