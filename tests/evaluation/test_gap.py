"""Tests for the gap / m-gap quality metrics."""

from __future__ import annotations

import math

import pytest

from repro.evaluation import (
    average_gap,
    fraction_first,
    fraction_optimal,
    gap,
    gaps_for_scores,
    m_gap,
    rank_algorithms,
)


class TestGap:
    def test_optimal_has_zero_gap(self):
        assert gap(10, 10) == 0.0

    def test_fifty_percent_gap(self):
        assert gap(15, 10) == pytest.approx(0.5)

    def test_zero_optimal_zero_score(self):
        assert gap(0, 0) == 0.0

    def test_zero_optimal_positive_score(self):
        assert gap(3, 0) == float("inf")

    def test_negative_scores_rejected(self):
        with pytest.raises(ValueError):
            gap(-1, 5)
        with pytest.raises(ValueError):
            gap(5, -1)

    def test_m_gap_alias(self):
        assert m_gap(12, 10) == gap(12, 10)


class TestGapsForScores:
    def test_with_known_optimum(self):
        gaps = gaps_for_scores({"a": 10, "b": 12}, optimal_score=10)
        assert gaps["a"] == 0.0
        assert gaps["b"] == pytest.approx(0.2)

    def test_m_gap_uses_best_available(self):
        gaps = gaps_for_scores({"a": 12, "b": 15})
        assert gaps["a"] == 0.0
        assert gaps["b"] == pytest.approx(0.25)

    def test_empty(self):
        assert gaps_for_scores({}) == {}


class TestAggregation:
    def test_average_gap(self):
        assert average_gap([0.0, 0.5, 1.0]) == pytest.approx(0.5)

    def test_average_gap_skips_none(self):
        assert average_gap([0.2, None, 0.4]) == pytest.approx(0.3)

    def test_average_gap_empty(self):
        assert math.isnan(average_gap([]))

    def test_fraction_optimal(self):
        assert fraction_optimal([0.0, 0.0, 0.5, 1e-12]) == pytest.approx(0.75)

    def test_fraction_optimal_empty(self):
        assert math.isnan(fraction_optimal([]))

    def test_fraction_first_shared_victories(self):
        scores = [
            {"a": 10, "b": 10, "c": 12},
            {"a": 8, "b": 9, "c": 9},
        ]
        assert fraction_first(scores, "a") == 1.0
        assert fraction_first(scores, "b") == pytest.approx(0.5)
        assert fraction_first(scores, "c") == 0.0

    def test_fraction_first_missing_algorithm(self):
        scores = [{"a": 10}]
        assert math.isnan(fraction_first(scores, "z"))

    def test_fraction_first_empty(self):
        assert math.isnan(fraction_first([], "a"))

    def test_rank_algorithms(self):
        ranks = rank_algorithms({"slow": 0.3, "good": 0.0, "mid": 0.1})
        assert ranks == {"good": 1, "mid": 2, "slow": 3}

    def test_rank_ties_broken_by_name(self):
        ranks = rank_algorithms({"b": 0.1, "a": 0.1})
        assert ranks["a"] == 1
        assert ranks["b"] == 2
