"""Tests for the experiment runner and evaluation report."""

from __future__ import annotations

import pytest

from repro.algorithms import BioConsert, BordaCount, ExactSubsetDP, MEDRank
from repro.core import Ranking
from repro.datasets import Dataset
from repro.evaluation import AlgorithmRun, EvaluationReport, evaluate_algorithms
from repro.generators import uniform_dataset


@pytest.fixture
def small_datasets():
    return [uniform_dataset(4, 6, rng=seed, name=f"d{seed}") for seed in range(3)]


@pytest.fixture
def small_report(small_datasets):
    suite = {"BordaCount": BordaCount(), "BioConsert": BioConsert(), "MEDRank(0.5)": MEDRank(0.5)}
    return evaluate_algorithms(
        small_datasets, suite, exact_algorithm=ExactSubsetDP(), exact_max_elements=10
    )


class TestEvaluateAlgorithms:
    def test_runs_every_algorithm_on_every_dataset(self, small_report, small_datasets):
        assert len(small_report.runs) == 3 * len(small_datasets)
        assert set(small_report.algorithms()) == {"BordaCount", "BioConsert", "MEDRank(0.5)"}
        assert len(small_report.datasets()) == len(small_datasets)

    def test_optimal_scores_computed(self, small_report, small_datasets):
        assert len(small_report.optimal_scores) == len(small_datasets)

    def test_dataset_features_recorded(self, small_report):
        for features in small_report.dataset_features.values():
            assert "num_elements" in features

    def test_accepts_sequence_of_algorithms(self, small_datasets):
        report = evaluate_algorithms(small_datasets[:1], [BordaCount()])
        assert report.algorithms() == ["BordaCount"]

    def test_exact_skipped_above_max_elements(self, small_datasets):
        report = evaluate_algorithms(
            small_datasets,
            [BordaCount()],
            exact_algorithm=ExactSubsetDP(),
            exact_max_elements=2,
        )
        assert report.optimal_scores == {}

    def test_algorithm_error_recorded_not_raised(self):
        """Algorithms refusing a dataset (e.g. size guards) become failed runs."""
        big = uniform_dataset(3, 18, rng=0, name="big")
        report = evaluate_algorithms([big], {"ExactSubsetDP": ExactSubsetDP()})
        run = report.runs[0]
        assert not run.succeeded
        assert run.error is not None
        assert report.scores_by_dataset() == {}

    def test_time_limit_marks_run_out_of_budget(self, small_datasets):
        report = evaluate_algorithms(
            small_datasets[:1], [BioConsert()], time_limit=0.0
        )
        assert not report.runs[0].succeeded
        assert not report.runs[0].within_budget


class TestEvaluationReport:
    def test_gap_statistics(self, small_report):
        gaps = small_report.average_gaps()
        assert set(gaps) == {"BordaCount", "BioConsert", "MEDRank(0.5)"}
        # BioConsert is never worse than the positional baselines on average.
        assert gaps["BioConsert"] <= gaps["BordaCount"] + 1e-9
        assert gaps["BioConsert"] <= gaps["MEDRank(0.5)"] + 1e-9

    def test_gaps_use_exact_reference(self, small_report):
        for dataset, gaps in small_report.gaps_by_dataset().items():
            optimal = small_report.optimal_scores[dataset]
            scores = small_report.scores_by_dataset()[dataset]
            for algorithm, value in gaps.items():
                assert value == pytest.approx(scores[algorithm] / optimal - 1 if optimal else 0.0)

    def test_ranks_are_a_permutation(self, small_report):
        ranks = small_report.algorithm_ranks()
        assert sorted(ranks.values()) == [1, 2, 3]

    def test_fraction_optimal_bounds(self, small_report):
        for value in small_report.fraction_optimal().values():
            assert 0.0 <= value <= 1.0

    def test_fraction_first_bioconsert_wins(self, small_report):
        first = small_report.fraction_first()
        assert first["BioConsert"] >= first["MEDRank(0.5)"]

    def test_average_times_positive(self, small_report):
        for value in small_report.average_times().values():
            assert value > 0.0

    def test_summary_rows_columns(self, small_report):
        rows = small_report.summary_rows()
        assert len(rows) == 3
        for row in rows:
            assert {"algorithm", "average_gap", "rank", "fraction_optimal",
                    "fraction_first", "average_seconds"} <= set(row)

    def test_merge(self, small_report):
        merged = small_report.merge(EvaluationReport(runs=[
            AlgorithmRun("X", "other", 3, 0.1, True)
        ]))
        assert len(merged.runs) == len(small_report.runs) + 1
        assert "X" in merged.algorithms()


class TestMGapFallback:
    def test_without_exact_reference_best_algorithm_has_zero_gap(self):
        datasets = [uniform_dataset(3, 6, rng=1, name="d")]
        report = evaluate_algorithms(datasets, [BordaCount(), BioConsert()])
        gaps = report.gaps_by_dataset()["d"]
        assert min(gaps.values()) == 0.0
