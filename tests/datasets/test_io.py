"""Tests for the dataset text format."""

from __future__ import annotations

import pytest

from repro.core import InvalidRankingError, Ranking
from repro.datasets import (
    Dataset,
    dumps,
    format_ranking,
    load_dataset,
    loads,
    parse_ranking,
    save_dataset,
)


class TestParseRanking:
    def test_basic_parse(self):
        assert parse_ranking("[[A],[D],[B,C]]") == Ranking([["A"], ["D"], ["B", "C"]])

    def test_parse_without_outer_brackets(self):
        assert parse_ranking("[A],[B,C]") == Ranking([["A"], ["B", "C"]])

    def test_parse_integers(self):
        ranking = parse_ranking("[[1],[2,3]]")
        assert ranking.position_of(3) == 1

    def test_parse_negative_integers(self):
        assert parse_ranking("[[-1],[2]]").position_of(-1) == 0

    def test_parse_with_spaces(self):
        assert parse_ranking("[[ A ], [ B , C ]]") == Ranking([["A"], ["B", "C"]])

    def test_parse_empty_line_rejected(self):
        with pytest.raises(InvalidRankingError):
            parse_ranking("   ")

    def test_parse_no_bucket_rejected(self):
        with pytest.raises(InvalidRankingError):
            parse_ranking("A, B, C")

    def test_parse_empty_bucket_rejected(self):
        with pytest.raises(InvalidRankingError):
            parse_ranking("[[A],[]]")


class TestFormatRanking:
    def test_format(self):
        assert format_ranking(Ranking([["A"], ["B", "C"]])) == "[[A],[B,C]]"

    def test_roundtrip(self):
        ranking = Ranking([["x"], ["y", "z"], ["w"]])
        assert parse_ranking(format_ranking(ranking)) == ranking

    def test_roundtrip_integers(self):
        ranking = Ranking([[3], [1, 2]])
        assert parse_ranking(format_ranking(ranking)) == ranking


class TestDatasetSerialization:
    def test_loads_skips_comments_and_blank_lines(self):
        text = """
        # a comment
        [[A],[B]]

        [[B],[A]]
        """
        dataset = loads(text, name="two")
        assert dataset.num_rankings == 2
        assert dataset.name == "two"

    def test_dumps_includes_header(self, paper_example_dataset):
        text = dumps(paper_example_dataset)
        assert text.startswith("# dataset: paper-example")
        assert "[[A],[D],[B,C]]" in text

    def test_dumps_without_header(self, paper_example_dataset):
        text = dumps(paper_example_dataset, include_header=False)
        assert not text.startswith("#")

    def test_dumps_loads_roundtrip(self, paper_example_dataset):
        text = dumps(paper_example_dataset)
        restored = loads(text)
        assert list(restored.rankings) == list(paper_example_dataset.rankings)

    def test_save_and_load_file(self, tmp_path, paper_example_dataset):
        path = save_dataset(paper_example_dataset, tmp_path / "sub" / "data.txt")
        assert path.exists()
        restored = load_dataset(path)
        assert list(restored.rankings) == list(paper_example_dataset.rankings)
        assert restored.name == "data"

    def test_load_with_explicit_name(self, tmp_path, paper_example_dataset):
        path = save_dataset(paper_example_dataset, tmp_path / "data.txt")
        assert load_dataset(path, name="custom").name == "custom"

    def test_metadata_serialized_as_comments(self):
        dataset = Dataset([Ranking([["A"]])], name="x", metadata={"steps": 10})
        assert "# steps: 10" in dumps(dataset)
