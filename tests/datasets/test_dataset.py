"""Tests for the Dataset container."""

from __future__ import annotations

import pytest

from repro.core import DomainMismatchError, EmptyDatasetError, Ranking
from repro.datasets import Dataset


class TestDatasetBasics:
    def test_len_iter_getitem(self, paper_example_rankings):
        dataset = Dataset(paper_example_rankings, name="example")
        assert len(dataset) == 3
        assert dataset[0] == paper_example_rankings[0]
        assert list(dataset) == list(paper_example_rankings)
        assert dataset.num_rankings == 3

    def test_name_and_metadata(self):
        dataset = Dataset([Ranking([["A"]])], name="x", metadata={"source": "test"})
        assert dataset.name == "x"
        assert dataset.metadata["source"] == "test"

    def test_with_metadata_returns_copy(self):
        dataset = Dataset([Ranking([["A"]])], name="x")
        extended = dataset.with_metadata(extra=1)
        assert "extra" not in dataset.metadata
        assert extended.metadata["extra"] == 1

    def test_with_rankings(self, paper_example_rankings):
        dataset = Dataset(paper_example_rankings[:2], name="x")
        replaced = dataset.with_rankings(paper_example_rankings, suffix="_all")
        assert replaced.num_rankings == 3
        assert replaced.name == "x_all"

    def test_repr(self, paper_example_dataset):
        assert "m=3" in repr(paper_example_dataset)


class TestDomains:
    def test_universe_and_common(self, raw_table3_dataset):
        assert raw_table3_dataset.universe() == frozenset({"A", "B", "C", "D", "E"})
        assert raw_table3_dataset.common_elements() == frozenset({"A", "B"})

    def test_complete_detection(self, paper_example_dataset, raw_table3_dataset):
        assert paper_example_dataset.is_complete
        assert not raw_table3_dataset.is_complete

    def test_num_elements(self, raw_table3_dataset):
        assert raw_table3_dataset.num_elements == 5

    def test_empty_dataset_is_complete(self):
        assert Dataset([], name="empty").is_complete


class TestStatistics:
    def test_similarity_requires_completeness(self, raw_table3_dataset):
        with pytest.raises(DomainMismatchError):
            raw_table3_dataset.similarity()

    def test_similarity_requires_rankings(self):
        with pytest.raises(EmptyDatasetError):
            Dataset([], name="empty").similarity()

    def test_similarity_of_identical_rankings(self):
        ranking = Ranking([["A"], ["B"]])
        dataset = Dataset([ranking, ranking])
        assert dataset.similarity() == 1.0

    def test_tie_density(self):
        dataset = Dataset([Ranking([["A", "B"]]), Ranking([["A"], ["B"]])])
        assert dataset.tie_density() == pytest.approx(0.5)

    def test_contains_ties(self, paper_example_dataset):
        assert paper_example_dataset.contains_ties()
        permutations = Dataset([Ranking.from_permutation(["A", "B"])])
        assert not permutations.contains_ties()

    def test_average_bucket_size(self):
        dataset = Dataset([Ranking([["A", "B"], ["C"]])])
        assert dataset.average_bucket_size() == pytest.approx(1.5)

    def test_average_bucket_size_empty(self):
        assert Dataset([], name="empty").average_bucket_size() == 0.0

    def test_pairwise_weights(self, paper_example_dataset):
        weights = paper_example_dataset.pairwise_weights()
        assert weights.num_rankings == 3
        assert weights.num_elements == 4

    def test_pairwise_weights_requires_completeness(self, raw_table3_dataset):
        with pytest.raises(DomainMismatchError):
            raw_table3_dataset.pairwise_weights()

    def test_describe_contains_key_features(self, paper_example_dataset):
        features = paper_example_dataset.describe()
        assert features["num_rankings"] == 3
        assert features["num_elements"] == 4
        assert features["contains_ties"] is True
        assert "similarity" in features

    def test_describe_incomplete_dataset(self, raw_table3_dataset):
        features = raw_table3_dataset.describe()
        assert features["is_complete"] is False
        assert "similarity" not in features
