"""Tests for the real-world-like dataset builders."""

from __future__ import annotations

import pytest

from repro.datasets import (
    biomedical_like_dataset,
    f1_like_dataset,
    project,
    real_like_collection,
    skicross_like_dataset,
    unify,
    websearch_like_dataset,
)


class TestF1Like:
    def test_shape(self, rng):
        dataset = f1_like_dataset(num_races=8, num_pilots=20, rng=rng)
        assert dataset.num_rankings == 8
        assert dataset.metadata["group"] == "F1"
        # Races rank only the finishers: the dataset is (almost surely) incomplete.
        assert dataset.num_elements <= 20

    def test_rankings_are_permutations(self, rng):
        dataset = f1_like_dataset(num_races=6, num_pilots=15, rng=rng)
        assert not dataset.contains_ties()

    def test_projection_keeps_a_nontrivial_core(self, rng):
        """Strong pilots finish most races, so projection keeps several
        elements (the paper reports ≈46% of the pilots kept)."""
        dataset = f1_like_dataset(num_races=10, num_pilots=30, rng=rng)
        projected = project(dataset)
        assert projected.num_elements >= 3
        assert projected.num_elements < 30

    def test_unified_is_positive_similarity(self, rng):
        dataset = unify(f1_like_dataset(num_races=10, num_pilots=24, rng=rng))
        assert dataset.similarity() > -0.2


class TestWebSearchLike:
    def test_shape(self, rng):
        dataset = websearch_like_dataset(
            num_engines=3, universe_size=100, results_per_engine=30, rng=rng
        )
        assert dataset.num_rankings == 3
        for ranking in dataset.rankings:
            assert len(ranking) == 30

    def test_contains_ties(self, rng):
        dataset = websearch_like_dataset(
            num_engines=3, universe_size=80, results_per_engine=30, rng=rng
        )
        assert dataset.contains_ties()

    def test_projection_removes_most_elements(self, rng):
        """The WebSearch regime: unified datasets are much larger than
        projected ones (Section 7.3.1)."""
        dataset = websearch_like_dataset(
            num_engines=4, universe_size=150, results_per_engine=40, rng=rng
        )
        projected = project(dataset)
        unified = unify(dataset)
        assert unified.num_elements > 2 * max(projected.num_elements, 1)


class TestSkiCrossLike:
    def test_shape(self, rng):
        dataset = skicross_like_dataset(num_runs=4, num_competitors=16, rng=rng)
        assert dataset.num_rankings == 4
        assert not dataset.contains_ties()

    def test_high_similarity_after_projection(self, rng):
        dataset = skicross_like_dataset(num_runs=4, num_competitors=20, rng=rng)
        projected = project(dataset)
        if projected.num_elements >= 2:
            assert projected.similarity() > 0.3


class TestBioMedicalLike:
    def test_shape(self, rng):
        dataset = biomedical_like_dataset(num_sources=4, num_genes=15, rng=rng)
        assert dataset.num_rankings == 4

    def test_contains_ties(self, rng):
        dataset = biomedical_like_dataset(num_sources=5, num_genes=20, rng=rng)
        assert dataset.contains_ties()

    def test_unified_dataset_is_complete(self, rng):
        dataset = unify(biomedical_like_dataset(num_sources=4, num_genes=15, rng=rng))
        assert dataset.is_complete


class TestCollections:
    def test_collection_count_and_names(self, rng):
        datasets = real_like_collection("SkiCross", 3, rng, num_competitors=10)
        assert len(datasets) == 3
        assert len({dataset.name for dataset in datasets}) == 3

    def test_collection_unknown_group(self, rng):
        with pytest.raises(ValueError):
            real_like_collection("Nonsense", 1, rng)

    def test_collections_are_independent(self, rng):
        datasets = real_like_collection("F1", 2, rng, num_races=5, num_pilots=12)
        assert datasets[0].rankings != datasets[1].rankings
