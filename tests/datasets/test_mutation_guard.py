"""Regression tests: Dataset memoization is guarded against mutation."""

from __future__ import annotations

import pytest

from repro.core import DatasetMutationError, Ranking
from repro.datasets import Dataset


@pytest.fixture
def rankings():
    return [
        Ranking([["A"], ["B", "C"], ["D"]]),
        Ranking([["B"], ["A"], ["C", "D"]]),
    ]


class TestMutationGuards:
    def test_rankings_frozen_to_tuple(self, rankings):
        dataset = Dataset(list(rankings))
        assert isinstance(dataset.rankings, tuple)
        # The constructor copies: mutating the source list changes nothing.
        source = list(rankings)
        dataset = Dataset(source)
        source.append(Ranking([["A", "B", "C", "D"]]))
        assert len(dataset.rankings) == 2

    def test_rebound_mutable_sequence_raises(self, rankings):
        dataset = Dataset(rankings)
        dataset.prepared()
        object.__setattr__(dataset, "rankings", list(rankings))
        with pytest.raises(DatasetMutationError, match="rebound to a mutable"):
            dataset.prepared()
        # The fingerprint path is guarded identically.
        fresh = Dataset(rankings)
        object.__setattr__(fresh, "rankings", list(rankings))
        with pytest.raises(DatasetMutationError):
            fresh.content_fingerprint()

    def test_rebound_different_content_raises(self, rankings):
        dataset = Dataset(rankings)
        dataset.prepared()
        swapped = (rankings[1], rankings[0])
        object.__setattr__(dataset, "rankings", swapped)
        with pytest.raises(DatasetMutationError, match="no longer match"):
            dataset.prepared()

    def test_memoized_fingerprint_survives_valid_use(self, rankings):
        dataset = Dataset(rankings)
        fingerprint = dataset.content_fingerprint()
        plan = dataset.prepared()
        assert dataset.content_fingerprint() == fingerprint
        assert dataset.prepared() is plan
        assert plan.fingerprint == fingerprint

    def test_equal_but_distinct_rebind_is_coherent(self, rankings):
        """Rebinding to an equal tuple of distinct objects is not a
        mutation: the plan still matches by equality."""
        dataset = Dataset(rankings)
        plan = dataset.prepared()
        clone = tuple(Ranking([list(b) for b in r.buckets]) for r in rankings)
        object.__setattr__(dataset, "rankings", clone)
        assert dataset.prepared() is plan
