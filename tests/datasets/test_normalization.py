"""Tests for the normalization processes (Table 3 of the paper)."""

from __future__ import annotations

import pytest

from repro.core import EmptyDatasetError, Ranking
from repro.datasets import (
    Dataset,
    normalize,
    normalize_with_threshold,
    project,
    unify,
    unify_broken,
)


class TestProjection:
    def test_table3_projection(self, raw_table3_dataset):
        """Exact reproduction of the projected dataset dp of Table 3."""
        projected = project(raw_table3_dataset)
        assert projected.rankings[0] == Ranking([["A"], ["B"]])
        assert projected.rankings[1] == Ranking([["B"], ["A"]])
        assert projected.rankings[2] == Ranking([["A", "B"]])
        assert projected.is_complete
        assert projected.metadata["normalization"] == "projection"

    def test_projection_preserves_ties_among_kept_elements(self):
        dataset = Dataset(
            [Ranking([["A", "B"], ["C"]]), Ranking([["B"], ["A"]])], name="x"
        )
        projected = project(dataset)
        assert projected.rankings[0] == Ranking([["A", "B"]])

    def test_projection_can_empty_rankings(self):
        dataset = Dataset([Ranking([["A"]]), Ranking([["B"]])], name="disjoint")
        projected = project(dataset)
        assert projected.num_rankings == 0

    def test_projection_of_empty_dataset(self):
        with pytest.raises(EmptyDatasetError):
            project(Dataset([], name="empty"))

    def test_projection_of_complete_dataset_is_identity(self, paper_example_dataset):
        projected = project(paper_example_dataset)
        assert list(projected.rankings) == list(paper_example_dataset.rankings)


class TestUnification:
    def test_table3_unification(self, raw_table3_dataset):
        """Exact reproduction of the unified dataset du of Table 3."""
        unified = unify(raw_table3_dataset)
        assert unified.rankings[0] == Ranking([["A"], ["D"], ["B"], ["C", "E"]])
        assert unified.rankings[1] == Ranking([["B"], ["E", "A"], ["C", "D"]])
        assert unified.rankings[2] == Ranking([["D"], ["A", "B"], ["C"], ["E"]])
        assert unified.is_complete
        assert unified.metadata["normalization"] == "unification"

    def test_unification_keeps_complete_rankings_unchanged(self, paper_example_dataset):
        unified = unify(paper_example_dataset)
        assert list(unified.rankings) == list(paper_example_dataset.rankings)

    def test_unification_universe(self, raw_table3_dataset):
        unified = unify(raw_table3_dataset)
        for ranking in unified.rankings:
            assert ranking.domain == raw_table3_dataset.universe()

    def test_unification_of_empty_dataset(self):
        with pytest.raises(EmptyDatasetError):
            unify(Dataset([], name="empty"))


class TestUnifiedBroken:
    def test_table3_unified_broken(self, raw_table3_dataset):
        """Exact reproduction of the unif. broken dataset db of Table 3.

        The unification bucket is broken into singletons (sorted order);
        ties already present in the raw rankings are preserved unless
        ``break_all_ties`` is set.
        """
        broken = unify_broken(raw_table3_dataset)
        assert broken.rankings[0] == Ranking([["A"], ["D"], ["B"], ["C"], ["E"]])
        assert broken.rankings[1] == Ranking([["B"], ["E", "A"], ["C"], ["D"]])
        assert broken.rankings[2] == Ranking([["D"], ["A", "B"], ["C"], ["E"]])

    def test_break_all_ties_produces_permutations(self, raw_table3_dataset):
        broken = unify_broken(raw_table3_dataset, break_all_ties=True)
        for ranking in broken.rankings:
            assert ranking.is_permutation
        # Matches Table 3's db column.
        assert broken.rankings[1] == Ranking([["B"], ["A"], ["E"], ["C"], ["D"]])

    def test_complete_over_universe(self, raw_table3_dataset):
        broken = unify_broken(raw_table3_dataset)
        assert broken.is_complete


class TestThresholdNormalization:
    def test_k_equals_one_is_unification(self, raw_table3_dataset):
        unified = unify(raw_table3_dataset)
        thresholded = normalize_with_threshold(raw_table3_dataset, 1)
        assert [r.domain for r in thresholded.rankings] == [
            r.domain for r in unified.rankings
        ]

    def test_k_equals_m_keeps_only_common_elements(self, raw_table3_dataset):
        thresholded = normalize_with_threshold(raw_table3_dataset, 3)
        assert thresholded.universe() == raw_table3_dataset.common_elements()

    def test_intermediate_threshold(self, raw_table3_dataset):
        # Elements in >= 2 of the 3 rankings: A, B, D (C appears once, E once).
        thresholded = normalize_with_threshold(raw_table3_dataset, 2)
        assert thresholded.universe() == frozenset({"A", "B", "D"})
        assert thresholded.is_complete

    def test_invalid_threshold(self, raw_table3_dataset):
        with pytest.raises(ValueError):
            normalize_with_threshold(raw_table3_dataset, 0)

    def test_threshold_removing_everything(self):
        dataset = Dataset([Ranking([["A"]]), Ranking([["B"]])], name="disjoint")
        with pytest.raises(EmptyDatasetError):
            normalize_with_threshold(dataset, 2)


class TestNormalizeDispatcher:
    def test_dispatch_by_name(self, raw_table3_dataset):
        assert normalize(raw_table3_dataset, "projection").metadata["normalization"] == (
            "projection"
        )
        assert normalize(raw_table3_dataset, "unification").is_complete
        assert normalize(raw_table3_dataset, "unified-broken").is_complete

    def test_unknown_process(self, raw_table3_dataset):
        with pytest.raises(ValueError):
            normalize(raw_table3_dataset, "garbage")
