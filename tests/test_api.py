"""Tests for the top-level convenience API."""

from __future__ import annotations

import pytest

import repro
from repro import Dataset, Ranking, aggregate


class TestTopLevelAggregate:
    def test_default_algorithm_finds_optimum(self, paper_example_rankings):
        result = aggregate(paper_example_rankings)
        assert result.algorithm == "BioConsert"
        assert result.score == 5

    def test_named_algorithm(self, paper_example_rankings):
        result = aggregate(paper_example_rankings, algorithm="BordaCount")
        assert result.algorithm == "BordaCount"

    def test_accepts_dataset(self, paper_example_dataset):
        result = aggregate(paper_example_dataset, algorithm="KwikSort", seed=0)
        assert result.consensus.domain == paper_example_dataset.universe()

    def test_unknown_algorithm(self, paper_example_rankings):
        with pytest.raises(ValueError):
            aggregate(paper_example_rankings, algorithm="Magic")

    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_docstring_example(self):
        rankings = [
            Ranking([["A"], ["D"], ["B", "C"]]),
            Ranking([["A"], ["B", "C"], ["D"]]),
            Ranking([["D"], ["A", "C"], ["B"]]),
        ]
        result = aggregate(rankings, algorithm="BioConsert")
        assert result.consensus == Ranking([["A"], ["D"], ["B", "C"]])
        assert result.score == 5

    def test_recommend_reexported(self):
        dataset = Dataset(
            [Ranking([["A"], ["B"]]), Ranking([["B"], ["A"]])], name="tiny"
        )
        recommendations = repro.recommend(dataset)
        assert recommendations[0].algorithm == "BioConsert"
