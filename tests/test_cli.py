"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets import dumps, save_dataset
from repro.generators import uniform_dataset


@pytest.fixture
def dataset_file(tmp_path, paper_example_dataset):
    return save_dataset(paper_example_dataset, tmp_path / "example.txt")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_aggregate_defaults(self):
        args = build_parser().parse_args(["aggregate", "file.txt"])
        assert args.algorithm == "BioConsert"
        assert args.normalize is None


class TestAggregateCommand:
    def test_aggregate_prints_consensus(self, dataset_file, capsys):
        assert main(["aggregate", str(dataset_file), "--algorithm", "BordaCount"]) == 0
        output = capsys.readouterr().out
        assert "BordaCount" in output
        assert "consensus:" in output

    def test_aggregate_incomplete_dataset_auto_unifies(self, tmp_path, raw_table3_dataset, capsys):
        path = save_dataset(raw_table3_dataset, tmp_path / "raw.txt")
        assert main(["aggregate", str(path), "--algorithm", "BordaCount"]) == 0
        assert "consensus:" in capsys.readouterr().out

    def test_aggregate_with_normalization(self, tmp_path, raw_table3_dataset, capsys):
        path = save_dataset(raw_table3_dataset, tmp_path / "raw.txt")
        assert main(
            ["aggregate", str(path), "--normalize", "projection", "--algorithm", "BordaCount"]
        ) == 0
        assert "consensus:" in capsys.readouterr().out


class TestOtherCommands:
    def test_describe(self, dataset_file, capsys):
        assert main(["describe", str(dataset_file)]) == 0
        output = capsys.readouterr().out
        assert "num_rankings: 3" in output

    def test_recommend(self, dataset_file, capsys):
        assert main(["recommend", str(dataset_file)]) == 0
        assert "BioConsert" in capsys.readouterr().out

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "uniform", "-m", "3", "-n", "5", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert output.count("[[") == 3

    def test_generate_markov_to_file(self, tmp_path, capsys):
        target = tmp_path / "markov.txt"
        assert main(
            ["generate", "markov", "-m", "3", "-n", "6", "-t", "20", "--seed", "1",
             "-o", str(target)]
        ) == 0
        assert target.exists()
        assert "wrote 3 rankings" in capsys.readouterr().out

    def test_generate_unified_topk(self, capsys):
        assert main(
            ["generate", "unified-topk", "-m", "3", "-n", "12", "-k", "4", "-t", "50",
             "--seed", "1"]
        ) == 0
        assert "[[" in capsys.readouterr().out

    def test_catalogue(self, capsys):
        assert main(["catalogue"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "BioConsert" in output

    def test_experiment_figure3_smoke(self, capsys):
        assert main(["experiment", "figure3", "--scale", "smoke", "--seed", "1"]) == 0
        assert "Figure 3" in capsys.readouterr().out
