"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets import dumps, save_dataset
from repro.generators import uniform_dataset


@pytest.fixture
def dataset_file(tmp_path, paper_example_dataset):
    return save_dataset(paper_example_dataset, tmp_path / "example.txt")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_aggregate_defaults(self):
        args = build_parser().parse_args(["aggregate", "file.txt"])
        assert args.algorithm == "BioConsert"
        assert args.normalize is None

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "table5"])
        assert args.experiments == ["table5"]
        assert args.backend == "serial"
        assert args.workers is None
        assert not args.no_cache


class TestAggregateCommand:
    def test_aggregate_prints_consensus(self, dataset_file, capsys):
        assert main(["aggregate", str(dataset_file), "--algorithm", "BordaCount"]) == 0
        output = capsys.readouterr().out
        assert "BordaCount" in output
        assert "consensus:" in output

    def test_aggregate_incomplete_dataset_auto_unifies(self, tmp_path, raw_table3_dataset, capsys):
        path = save_dataset(raw_table3_dataset, tmp_path / "raw.txt")
        assert main(["aggregate", str(path), "--algorithm", "BordaCount"]) == 0
        assert "consensus:" in capsys.readouterr().out

    def test_aggregate_with_normalization(self, tmp_path, raw_table3_dataset, capsys):
        path = save_dataset(raw_table3_dataset, tmp_path / "raw.txt")
        assert main(
            ["aggregate", str(path), "--normalize", "projection", "--algorithm", "BordaCount"]
        ) == 0
        assert "consensus:" in capsys.readouterr().out


class TestOtherCommands:
    def test_describe(self, dataset_file, capsys):
        assert main(["describe", str(dataset_file)]) == 0
        output = capsys.readouterr().out
        assert "num_rankings: 3" in output

    def test_recommend(self, dataset_file, capsys):
        assert main(["recommend", str(dataset_file)]) == 0
        assert "BioConsert" in capsys.readouterr().out

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "uniform", "-m", "3", "-n", "5", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert output.count("[[") == 3

    def test_generate_markov_to_file(self, tmp_path, capsys):
        target = tmp_path / "markov.txt"
        assert main(
            ["generate", "markov", "-m", "3", "-n", "6", "-t", "20", "--seed", "1",
             "-o", str(target)]
        ) == 0
        assert target.exists()
        assert "wrote 3 rankings" in capsys.readouterr().out

    def test_generate_unified_topk(self, capsys):
        assert main(
            ["generate", "unified-topk", "-m", "3", "-n", "12", "-k", "4", "-t", "50",
             "--seed", "1"]
        ) == 0
        assert "[[" in capsys.readouterr().out

    def test_catalogue(self, capsys):
        assert main(["catalogue"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "BioConsert" in output

    def test_experiment_figure3_smoke(self, capsys):
        assert main(["experiment", "figure3", "--scale", "smoke", "--seed", "1"]) == 0
        assert "Figure 3" in capsys.readouterr().out


class TestBatchCommand:
    def _batch(self, tmp_path, *extra):
        return [
            "batch",
            "figure6",
            "--scale",
            "smoke",
            "--seed",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra,
        ]

    def test_batch_cold_then_warm(self, tmp_path, capsys):
        assert main(self._batch(tmp_path)) == 0
        cold = capsys.readouterr().out
        assert "Figure 6" in cold
        assert "engine summary:" in cold
        assert "from cache:  0" in cold

        assert main(self._batch(tmp_path)) == 0
        warm = capsys.readouterr().out
        assert "executed:    0" in warm
        assert "hit rate:    100.0%" in warm
        # The warm re-run prints the exact same experiment table.
        assert cold.split("engine summary:")[0] == warm.split("engine summary:")[0]

    def test_batch_parallel_backend_matches_serial(self, tmp_path, capsys):
        """`--backend process --workers 4` prints byte-identical tables.

        Uses table5, whose table (like Table 4's) carries no wall-clock
        column: timings are the one thing the determinism guarantee
        excludes (figure6's time column differs across backends).
        """
        command = ["batch", "table5", "--scale", "smoke", "--seed", "1"]
        assert main(
            [*command, "--cache-dir", str(tmp_path / "a"), "--backend", "serial"]
        ) == 0
        serial = capsys.readouterr().out.split("engine summary:")[0]
        assert main(
            [*command, "--cache-dir", str(tmp_path / "b"),
             "--backend", "process", "--workers", "4"]
        ) == 0
        process = capsys.readouterr().out.split("engine summary:")[0]
        assert serial == process

    def test_batch_no_cache(self, tmp_path, capsys):
        assert main(self._batch(tmp_path, "--no-cache")) == 0
        assert "cache dir" not in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()


class TestCacheCommand:
    def test_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["batch", "figure6", "--scale", "smoke", "--seed", "1",
             "--cache-dir", cache_dir]
        ) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = capsys.readouterr().out
        assert "entries:" in stats and "entries: 0" not in stats

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_clear_single_algorithm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["batch", "figure6", "--scale", "smoke", "--seed", "1",
             "--cache-dir", cache_dir]
        ) == 0
        capsys.readouterr()
        assert main(
            ["cache", "clear", "--cache-dir", cache_dir, "--algorithm", "BioConsert"]
        ) == 0
        output = capsys.readouterr().out
        assert "'BioConsert'" in output


class TestPortfolioCommand:
    def test_portfolio_prints_winner_and_consensus(self, dataset_file, capsys):
        assert main(
            ["portfolio", str(dataset_file), "--budget", "0.5", "--seed", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "winner:" in output
        assert "members:" in output
        assert "consensus:" in output

    def test_portfolio_respects_budget_against_exponential_solvers(self, tmp_path, capsys):
        # Default-scale-sized dataset: the exact solver alone would blow a
        # 0.5 s budget, so the portfolio must skip it and still answer.
        dataset = uniform_dataset(7, 20, 11)
        path = save_dataset(dataset, tmp_path / "big.txt")
        assert main(
            ["portfolio", str(path), "--budget", "0.5",
             "--priority", "optimality", "--seed", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "skipped" in output  # the exact member never started
        assert "consensus:" in output

    def test_portfolio_explicit_candidates(self, dataset_file, capsys):
        assert main(
            ["portfolio", str(dataset_file), "--budget", "1.0",
             "--algorithms", "BordaCount", "Chanas", "--seed", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "Chanas" in output and "BordaCount" in output


class TestServeCommand:
    def test_serve_cold_then_warm(self, tmp_path, capsys):
        command = [
            "serve", "--scenario", "mallows-ties-diffuse", "--requests", "10",
            "--budget", "0.1", "--batch-size", "4", "--seed", "3",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "load.json"),
        ]
        assert main(command) == 0
        cold = capsys.readouterr().out
        assert "service load" in cold
        assert "hit rate:" in cold
        assert (tmp_path / "load.json").exists()

        assert main(command[:-2]) == 0  # warm re-run, no --output
        warm = capsys.readouterr().out
        assert "hit rate:          100.0%" in warm

    def test_serve_no_cache(self, tmp_path, capsys):
        assert main(
            ["serve", "--scenario", "mallows-ties-diffuse", "--requests", "6",
             "--budget", "0.1", "--no-cache", "--seed", "3"]
        ) == 0
        assert "by source:" in capsys.readouterr().out


class TestScenarioRunFailures:
    def test_failed_runs_exit_nonzero(self, tmp_path, capsys):
        from repro.workloads import register_scenario, unregister_scenario

        @register_scenario(
            "cli-test-failing",
            family="uniform",
            description="datasets too large for the DP solver (test only)",
            expected={"complete": True},
        )
        def _build(scale, rng, index):
            return uniform_dataset(3, 18, int(rng.integers(2**31)))

        try:
            code = main(
                ["scenarios", "run", "--scenario", "cli-test-failing",
                 "--algorithms", "ExactSubsetDP", "--matrix", "smoke",
                 "--no-cache", "--output", str(tmp_path / "report.json")]
            )
        finally:
            unregister_scenario("cli-test-failing")
        assert code == 3
        captured = capsys.readouterr()
        assert "run(s) failed" in captured.err
        assert "ExactSubsetDP" in captured.err

    def test_shape_violation_exits_nonzero(self, tmp_path, capsys):
        from repro.workloads import register_scenario, unregister_scenario

        @register_scenario(
            "cli-test-misshapen",
            family="uniform",
            description="expected shape can never hold (test only)",
            expected={"complete": True, "min_elements": 999},
        )
        def _build(scale, rng, index):
            return uniform_dataset(3, 5, int(rng.integers(2**31)))

        try:
            code = main(
                ["scenarios", "run", "--scenario", "cli-test-misshapen",
                 "--matrix", "smoke", "--no-cache",
                 "--output", str(tmp_path / "report.json")]
            )
        finally:
            unregister_scenario("cli-test-misshapen")
        assert code == 2
        assert "scenario validation failed" in capsys.readouterr().err
