"""Setuptools shim.

The build environment of this reproduction has no network access and no
``wheel`` package, so PEP 660 editable wheels cannot be built.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall back to
the legacy ``setup.py develop`` code path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
