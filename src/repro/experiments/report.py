"""Plain-text rendering of experiment results.

The experiment drivers return structured data (lists of dictionaries, one
per table row or figure series point); this module renders them as aligned
text tables so that the benchmark harness and the examples can print output
directly comparable to the paper's tables and figures.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "format_table",
    "format_percentage",
    "format_seconds",
    "render_rows",
    "report_snapshot",
]


def format_percentage(value: float | None, *, decimals: int = 1) -> str:
    """Render a fraction as a percentage string (``0.123`` -> ``"12.3%"``)."""
    if value is None or value != value:  # NaN check
        return "—"
    if value == float("inf"):
        return "inf"
    return f"{100.0 * value:.{decimals}f}%"


def format_seconds(value: float | None) -> str:
    """Human-readable duration with the units used by the paper's figures."""
    if value is None or value != value:
        return "—"
    if value < 1e-3:
        return f"{value * 1e6:.0f} µs"
    if value < 1.0:
        return f"{value * 1e3:.1f} ms"
    if value < 60.0:
        return f"{value:.2f} s"
    return f"{value / 60.0:.1f} min"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[tuple[str, str]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table.

    Parameters
    ----------
    rows:
        The data, one mapping per row.
    columns:
        ``(key, header)`` pairs selecting and labelling the columns.
    title:
        Optional title printed above the table.
    """
    headers = [header for _, header in columns]
    body: list[list[str]] = []
    for row in rows:
        body.append([_stringify(row.get(key)) for key, _ in columns])
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body)) if body else len(headers[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def render_rows(rows: Sequence[Mapping[str, object]], *, title: str | None = None) -> str:
    """Render rows using all of their keys as columns (first row defines order)."""
    if not rows:
        return title or ""
    columns = [(key, key) for key in rows[0]]
    return format_table(rows, columns, title=title)


def _stringify(value: object) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value != value:
            return "—"
        return f"{value:.4g}"
    return str(value)


def report_snapshot(report) -> dict[str, object]:
    """Deterministic JSON-able snapshot of an evaluation report.

    Keeps everything result-shaped (algorithm, dataset, integer score,
    budget verdict, error, per-dataset optima) and drops everything
    timing-dependent, so the snapshot is byte-stable across machines,
    backends and cache states — the form the golden regression files are
    stored in.  Accepts any object with ``runs`` and ``optimal_scores``
    (:class:`~repro.evaluation.runner.EvaluationReport` or the engine's
    extension of it).
    """
    return {
        "runs": [
            {
                "algorithm": run.algorithm,
                "dataset": run.dataset,
                "score": run.score,
                "within_budget": run.within_budget,
                "error": run.error,
            }
            for run in report.runs
        ],
        "optimal_scores": dict(sorted(report.optimal_scores.items())),
    }
