"""Experiment drivers: one module per table / figure of the paper's evaluation,
plus the ablations of the design choices discussed in Sections 7.1.1 and 8."""

from .ablation_chaining import format_chaining_ablation, run_chaining_ablation
from .ablation_medrank import (
    format_medrank_ablation,
    run_medrank_threshold_ablation,
)
from .ablation_normalization import (
    format_normalization_ablation,
    run_normalization_ablation,
)
from .config import SCALES, AdaptiveExact, ExperimentScale, get_scale
from .figure2 import format_figure2, run_figure2
from .figure3 import format_figure3, run_figure3
from .figure4 import format_figure4, run_figure4
from .figure5 import format_figure5, run_figure5
from .figure6 import format_figure6, run_figure6
from .report import format_percentage, format_seconds, format_table, render_rows
from .table4 import GROUP_NORMALIZATIONS, format_table4, run_table4
from .table5 import format_table5, run_table5

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "AdaptiveExact",
    "run_table4",
    "format_table4",
    "GROUP_NORMALIZATIONS",
    "run_table5",
    "format_table5",
    "run_figure2",
    "format_figure2",
    "run_figure3",
    "format_figure3",
    "run_figure4",
    "format_figure4",
    "run_figure5",
    "format_figure5",
    "run_figure6",
    "format_figure6",
    "run_medrank_threshold_ablation",
    "format_medrank_ablation",
    "run_chaining_ablation",
    "format_chaining_ablation",
    "run_normalization_ablation",
    "format_normalization_ablation",
    "format_table",
    "format_percentage",
    "format_seconds",
    "render_rows",
]
