"""Ablation A2 — chaining a fast algorithm with an anytime refiner (Section 8).

The paper's conclusion suggests chaining: produce a cheap first consensus
(positional algorithms answer in microseconds) and refine it with an
anytime approach such as local search or simulated annealing.  This
ablation quantifies the idea on uniformly generated datasets by comparing

* the cheap algorithms alone (BordaCount, MEDRank),
* the refiners alone (BioConsert, SimulatedAnnealing),
* the chained combinations,

on both average gap and average running time, which is exactly the
trade-off Figure 6 visualises for the single-algorithm suite.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.annealing import SimulatedAnnealing
from ..algorithms.bioconsert import BioConsert
from ..algorithms.borda import BordaCount
from ..algorithms.chained import ChainedAggregator
from ..algorithms.medrank import MEDRank
from ..evaluation.runner import EvaluationReport, evaluate_algorithms
from ..generators.uniform import uniform_dataset
from .config import AdaptiveExact, ExperimentScale, get_scale
from .report import format_percentage, format_seconds, format_table

__all__ = ["run_chaining_ablation", "format_chaining_ablation"]


def _build_suite(seed: int) -> dict[str, object]:
    return {
        "BordaCount": BordaCount(),
        "MEDRank(0.5)": MEDRank(0.5),
        "BioConsert": BioConsert(),
        "SimulatedAnnealing": SimulatedAnnealing(seed=seed),
        "Chained(Borda→BioConsert)": ChainedAggregator(BordaCount(), BioConsert()),
        "Chained(Borda→SA)": ChainedAggregator(
            BordaCount(), SimulatedAnnealing(seed=seed)
        ),
        "Chained(MEDRank→BioConsert)": ChainedAggregator(MEDRank(0.5), BioConsert()),
    }


def run_chaining_ablation(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
) -> tuple[list[dict[str, object]], EvaluationReport]:
    """Compare stand-alone algorithms against chained variants.

    Returns ``(rows, report)`` where each row is
    ``{"algorithm", "average_gap", "average_seconds"}`` sorted by gap.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    datasets = [
        uniform_dataset(
            scale.num_rankings,
            scale.medium_n,
            rng,
            name=f"chaining_ablation_{index:03d}",
        )
        for index in range(scale.datasets_per_config)
    ]
    suite = _build_suite(seed)
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)
    report = evaluate_algorithms(
        datasets,
        suite,
        exact_algorithm=exact,
        exact_max_elements=scale.exact_max_elements,
        time_limit=scale.time_limit_seconds,
    )
    gaps = report.average_gaps()
    times = report.average_times()
    rows = [
        {
            "algorithm": name,
            "average_gap": gaps[name],
            "average_seconds": times.get(name, float("nan")),
        }
        for name in gaps
    ]
    rows.sort(key=lambda row: row["average_gap"])
    return rows, report


def format_chaining_ablation(rows: list[dict[str, object]]) -> str:
    """Render the chaining ablation as a text table."""
    rendered = [
        {
            "algorithm": row["algorithm"],
            "average gap": format_percentage(float(row["average_gap"])),
            "average time": format_seconds(float(row["average_seconds"])),
        }
        for row in rows
    ]
    columns = [
        ("algorithm", "Algorithm"),
        ("average gap", "Avg gap"),
        ("average time", "Avg time"),
    ]
    return format_table(
        rendered, columns, title="Ablation — chaining strategies (§8)"
    )
