"""Figure 6 — time / quality trade-off on uniform datasets (m = 7, n = 35).

Figure 6 of the paper is the guidance scatter plot: for uniformly generated
datasets of m = 7 rankings over n = 35 elements, each algorithm is placed
according to its average computing time (y) and average gap (x).  The
bottom-left corner is the sweet spot; BioConsert sits near the optimal-gap
axis at a moderate cost, positional algorithms are fastest but with larger
gaps, and the exact algorithm / Ailon 3/2 pay orders of magnitude more time
for the last fraction of a percent.

This driver reproduces the scatter: it generates uniform datasets at the
scale's ``medium_n``, runs every algorithm (including the exact solver when
the datasets are small enough), and reports one row per algorithm with its
average gap and average time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..algorithms.registry import EVALUATED_ALGORITHMS, make_evaluated_suite
from ..evaluation.runner import EvaluationReport, evaluate_algorithms
from ..generators.uniform import uniform_dataset
from .config import AdaptiveExact, ExperimentScale, get_scale
from .report import format_percentage, format_seconds, format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine

__all__ = ["run_figure6", "format_figure6"]


def run_figure6(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    algorithm_names: tuple[str, ...] | None = None,
    include_exact_in_suite: bool = True,
    engine: "ExecutionEngine | None" = None,
) -> tuple[list[dict[str, object]], EvaluationReport]:
    """Run the time/quality trade-off experiment.

    Returns ``(rows, report)`` where each row is
    ``{"algorithm", "average_gap", "average_seconds"}``.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    datasets = [
        uniform_dataset(
            scale.num_rankings,
            scale.medium_n,
            rng,
            name=f"figure6_n{scale.medium_n}_{index:03d}",
        )
        for index in range(scale.datasets_per_config)
    ]
    names = list(algorithm_names or EVALUATED_ALGORITHMS)
    suite = make_evaluated_suite(seed=seed, names=names)
    if include_exact_in_suite and scale.medium_n <= scale.exact_max_elements:
        suite["ExactAlgorithm"] = AdaptiveExact(
            milp_time_limit=scale.time_limit_seconds
        )
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)
    report = evaluate_algorithms(
        datasets,
        suite,
        exact_algorithm=exact,
        exact_max_elements=scale.exact_max_elements,
        time_limit=scale.time_limit_seconds,
        engine=engine,
    )
    gaps = report.average_gaps()
    times = report.average_times()
    rows = [
        {
            "algorithm": algorithm,
            "average_gap": gaps[algorithm],
            "average_seconds": times.get(algorithm, float("nan")),
        }
        for algorithm in sorted(gaps)
    ]
    rows.sort(key=lambda row: row["average_gap"])
    return rows, report


def format_figure6(rows: list[dict[str, object]]) -> str:
    """Render the trade-off scatter as a text table sorted by gap."""
    rendered = [
        {
            "algorithm": row["algorithm"],
            "average gap": format_percentage(float(row["average_gap"])),
            "average time": format_seconds(float(row["average_seconds"])),
        }
        for row in rows
    ]
    columns = [
        ("algorithm", "Algorithm"),
        ("average gap", "Avg gap"),
        ("average time", "Avg time"),
    ]
    return format_table(
        rendered, columns, title="Figure 6 — time vs quality trade-off"
    )
