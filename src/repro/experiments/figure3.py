"""Figure 3 — distribution of the similarity for each dataset group.

Figure 3 of the paper shows, for every dataset group (real-world groups
under both normalizations, synthetic datasets with similarity at three
Markov-chain step counts, and uniformly generated datasets), the
distribution of the intrinsic similarity ``s(R)`` of Section 6.2.2.  It is
the key to interpreting Table 4: e.g. WebSearch-unified has a *negative*
similarity, which is what hurts KwikSort there.

This driver regenerates the similarity distributions on the synthetic
stand-ins and the synthetic generators and reports, for every group, the
five-number summary of the similarity values.
"""

from __future__ import annotations

import numpy as np

from ..datasets.normalization import project, unify
from ..datasets.real_like import real_like_collection
from ..generators.markov import markov_dataset
from ..generators.uniform import uniform_dataset
from .config import ExperimentScale, get_scale
from .report import format_table
from .table4 import _GROUP_BUILDER_KWARGS, GROUP_NORMALIZATIONS

__all__ = ["run_figure3", "format_figure3"]

# The three Markov step counts highlighted in the paper's Figure 3.
_FIGURE3_STEPS = (1_000, 5_000, 50_000)


def run_figure3(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
) -> list[dict[str, object]]:
    """Compute the similarity distribution of every dataset group.

    Returns rows ``{"group", "count", "min", "q1", "median", "q3", "max", "mean"}``.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    groups: dict[str, list[float]] = {}

    # Real-world-like groups under their normalizations.
    for group, normalizations in GROUP_NORMALIZATIONS.items():
        raw_datasets = real_like_collection(
            group,
            scale.real_datasets_per_group,
            rng,
            **_GROUP_BUILDER_KWARGS.get(group, {}),
        )
        for normalization in normalizations:
            label = f"{group} {'Proj.' if normalization == 'projection' else 'Unif.'}"
            values = []
            for dataset in raw_datasets:
                normalized = (
                    project(dataset) if normalization == "projection" else unify(dataset)
                )
                if normalized.num_elements >= 2:
                    values.append(normalized.similarity())
            groups[label] = values

    # Synthetic datasets with similarity, at three step counts.
    steps_to_plot = [
        steps for steps in _FIGURE3_STEPS if steps <= max(scale.similarity_steps)
    ] or list(scale.similarity_steps[:3])
    for steps in steps_to_plot:
        values = []
        for index in range(scale.datasets_per_config):
            dataset = markov_dataset(
                scale.num_rankings, scale.medium_n, steps, rng,
                name=f"figure3_markov_t{steps}_{index}",
            )
            values.append(dataset.similarity())
        groups[f"Syn. w/ similarity ({steps} steps)"] = values

    # Uniformly generated datasets.
    values = []
    for index in range(scale.datasets_per_config):
        dataset = uniform_dataset(
            scale.num_rankings, scale.medium_n, rng, name=f"figure3_uniform_{index}"
        )
        values.append(dataset.similarity())
    groups["Syn. uniform"] = values

    rows = []
    for label, values in groups.items():
        if not values:
            continue
        array = np.asarray(values, dtype=float)
        rows.append(
            {
                "group": label,
                "count": int(array.size),
                "min": float(array.min()),
                "q1": float(np.percentile(array, 25)),
                "median": float(np.median(array)),
                "q3": float(np.percentile(array, 75)),
                "max": float(array.max()),
                "mean": float(array.mean()),
            }
        )
    return rows


def format_figure3(rows: list[dict[str, object]]) -> str:
    """Render the similarity distributions as a text table."""
    rendered = [
        {
            "group": row["group"],
            "count": row["count"],
            "min": f"{row['min']:.3f}",
            "median": f"{row['median']:.3f}",
            "max": f"{row['max']:.3f}",
            "mean": f"{row['mean']:.3f}",
        }
        for row in rows
    ]
    columns = [
        ("group", "Group"),
        ("count", "#"),
        ("min", "Min"),
        ("median", "Median"),
        ("max", "Max"),
        ("mean", "Mean"),
    ]
    return format_table(
        rendered, columns, title="Figure 3 — similarity distribution per dataset group"
    )
