"""Figure 4 — gap as a function of the input similarity (Markov datasets).

Figure 4 of the paper plots the average gap of every algorithm on synthetic
datasets generated with the Markov-chain process of Section 6.1.2, as a
function of the number of steps ``t`` (small ``t`` = very similar rankings,
large ``t`` = close to uniform).  The headline observations (Section 7.2):

* KwikSort and BioConsert improve markedly as similarity increases;
* BordaCount's gap is remarkably stable across similarity levels;
* FaginLarge degrades as similarity increases.

This driver reproduces the sweep: for each step count of the scale it
generates datasets, runs the evaluated algorithms, and reports the average
gap per (algorithm, steps) together with the average dataset similarity at
that step count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..algorithms.registry import make_evaluated_suite
from ..evaluation.runner import EvaluationReport, evaluate_algorithms
from ..generators.markov import markov_dataset
from .config import AdaptiveExact, ExperimentScale, get_scale
from .report import format_percentage, format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine

__all__ = ["run_figure4", "format_figure4", "DEFAULT_FIGURE4_ALGORITHMS"]

# The algorithms shown in the paper's Figure 4 curve.
DEFAULT_FIGURE4_ALGORITHMS: tuple[str, ...] = (
    "Ailon3/2",
    "BioConsert",
    "BordaCount",
    "CopelandMethod",
    "FaginLarge",
    "FaginSmall",
    "KwikSort",
    "MEDRank(0.5)",
    "RepeatChoice",
)


def run_figure4(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    algorithm_names: tuple[str, ...] | None = None,
    engine: "ExecutionEngine | None" = None,
) -> tuple[list[dict[str, object]], dict[int, EvaluationReport]]:
    """Run the similarity sweep.

    Returns ``(rows, reports_by_steps)`` where each row is
    ``{"algorithm", "steps", "similarity", "average_gap"}``.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    names = algorithm_names or DEFAULT_FIGURE4_ALGORITHMS
    suite = make_evaluated_suite(seed=seed, names=names)
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)

    rows: list[dict[str, object]] = []
    reports: dict[int, EvaluationReport] = {}
    for steps in scale.similarity_steps:
        datasets = [
            markov_dataset(
                scale.num_rankings,
                scale.medium_n,
                steps,
                rng,
                name=f"figure4_t{steps}_{index:03d}",
            )
            for index in range(scale.datasets_per_config)
        ]
        similarity = float(np.mean([dataset.similarity() for dataset in datasets]))
        report = evaluate_algorithms(
            datasets,
            suite,
            exact_algorithm=exact,
            exact_max_elements=scale.exact_max_elements,
            time_limit=scale.time_limit_seconds,
            engine=engine,
        )
        reports[steps] = report
        for algorithm, value in report.average_gaps().items():
            rows.append(
                {
                    "algorithm": algorithm,
                    "steps": steps,
                    "similarity": similarity,
                    "average_gap": value,
                }
            )
    return rows, reports


def format_figure4(rows: list[dict[str, object]]) -> str:
    """Render the similarity sweep as a text table."""
    rendered = [
        {
            "algorithm": row["algorithm"],
            "steps": row["steps"],
            "similarity": f"{float(row['similarity']):.3f}",
            "average gap": format_percentage(float(row["average_gap"])),
        }
        for row in rows
    ]
    columns = [
        ("algorithm", "Algorithm"),
        ("steps", "Steps"),
        ("similarity", "s(R)"),
        ("average gap", "Avg gap"),
    ]
    return format_table(
        rendered,
        columns,
        title="Figure 4 — gap vs similarity (Markov-generated datasets)",
    )
