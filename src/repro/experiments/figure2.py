"""Figure 2 — computing time as a function of the number of elements.

The paper's Figure 2 plots, for m = 7 rankings and n from 5 to 400
elements, the average time each algorithm needs to produce a consensus on
uniformly generated datasets.  Expensive algorithms (the exact solver,
Ailon 3/2) drop out of the curve once they exceed the time budget; the
positional algorithms remain in the microsecond range throughout.

This driver reproduces the sweep: for each n of the scale's grid it
generates a uniform dataset, measures each algorithm with the
repeat-until-threshold protocol of Section 6.2.4
(:func:`repro.evaluation.timing.measure_time`), and reports one row per
(algorithm, n) pair.  Algorithms whose estimated cost exceeds the per-run
budget at a given n are skipped for the larger sizes, mirroring the missing
points of the paper's curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..algorithms.base import RankAggregator
from ..algorithms.registry import SCALABLE_ALGORITHMS, make_algorithm
from ..datasets.dataset import Dataset
from ..evaluation.timing import TimingResult, measure_time
from ..generators.uniform import uniform_dataset
from .config import ExperimentScale, get_scale
from .report import format_seconds, format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine

__all__ = ["run_figure2", "format_figure2"]

# Algorithms whose cost explodes with n: they are measured only while their
# last measurement stays under the cutoff.
_EXPENSIVE_ALGORITHMS = ("ExactAlgorithm", "Ailon3/2")


@dataclass(frozen=True)
class _TimingCell:
    """One (algorithm, n) measurement, picklable for the process backend."""

    algorithm_name: str
    algorithm: RankAggregator
    dataset: Dataset
    min_total_seconds: float


def _measure_cell(cell: _TimingCell) -> TimingResult:
    """Measure one cell (module-level so process backends can pickle it)."""
    return measure_time(
        lambda: cell.algorithm.aggregate(cell.dataset),
        min_total_seconds=cell.min_total_seconds,
        max_runs=50,
    )


def run_figure2(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    algorithm_names: tuple[str, ...] | None = None,
    include_expensive: bool = True,
    min_total_seconds: float = 0.05,
    expensive_cutoff_seconds: float = 10.0,
    engine: "ExecutionEngine | None" = None,
) -> list[dict[str, object]]:
    """Measure per-algorithm aggregation time across the n grid.

    Returns rows ``{"algorithm", "num_elements", "seconds"}``.

    With an ``engine``, the per-``n`` measurement cells are fanned out on
    its backend (``engine.map``, which bypasses the result cache: wall
    clock measurements are never valid cache content).  The drop-out logic
    for the expensive algorithms stays sequential over ``n``, as each
    size's verdict depends on the previous one.  Note that concurrent
    timing measurements contend for cores; keep the serial backend when
    absolute numbers matter.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    names = list(algorithm_names or SCALABLE_ALGORITHMS)
    if include_expensive:
        names = list(names) + [
            name for name in _EXPENSIVE_ALGORITHMS if name not in names
        ]
    dropped: set[str] = set()
    rows: list[dict[str, object]] = []
    for n in scale.scaling_n_values:
        dataset = uniform_dataset(
            scale.num_rankings, n, rng, name=f"figure2_n{n}"
        )
        cells: list[_TimingCell] = []
        for name in names:
            if name in dropped:
                continue
            if name in _EXPENSIVE_ALGORITHMS and n > scale.exact_max_elements:
                dropped.add(name)
                continue
            cells.append(
                _TimingCell(
                    algorithm_name=name,
                    algorithm=make_algorithm(name, seed=seed),
                    dataset=dataset,
                    min_total_seconds=min_total_seconds,
                )
            )
        if engine is None:
            timings = [_measure_cell(cell) for cell in cells]
        else:
            timings = engine.map(_measure_cell, cells)
        for cell, timing in zip(cells, timings):
            rows.append(
                {
                    "algorithm": cell.algorithm_name,
                    "num_elements": n,
                    "seconds": timing.seconds_per_run,
                    "runs": timing.runs,
                }
            )
            if (
                cell.algorithm_name in _EXPENSIVE_ALGORITHMS
                and timing.seconds_per_run > expensive_cutoff_seconds
            ):
                dropped.add(cell.algorithm_name)
    return rows


def format_figure2(rows: list[dict[str, object]]) -> str:
    """Render the timing sweep as a text table (one row per algorithm and n)."""
    rendered = [
        {
            "algorithm": row["algorithm"],
            "n": row["num_elements"],
            "time per run": format_seconds(float(row["seconds"])),
        }
        for row in rows
    ]
    columns = [("algorithm", "Algorithm"), ("n", "n"), ("time per run", "Time / run")]
    return format_table(
        rendered, columns, title="Figure 2 — computing time vs number of elements"
    )
