"""Experiment configuration: scales and the adaptive exact reference solver.

The paper's experiments involve 19 000 datasets, rankings of up to 500
elements and a two-hour per-run budget on a Xeon with CPLEX.  Every
experiment driver in this package accepts an :class:`ExperimentScale` that
controls how many datasets are generated and how large they are, with three
presets:

* ``smoke``   — seconds; used by the test suite and CI;
* ``default`` — minutes on a laptop; used by the benchmark harness;
* ``paper``   — the paper's parameters (hours; provided for completeness).

The gap reference (Section 6.2.3) needs an optimal consensus.
:class:`AdaptiveExact` dispatches between the Θ(3^n) subset dynamic program
(fast and solver-free for small n) and the LPB integer program for larger
instances, reproducing the paper's "compute the exact solution whenever
feasible" protocol.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..algorithms.base import RankAggregator
from ..algorithms.exact_dp import ExactSubsetDP
from ..algorithms.exact_lpb import ExactAlgorithm
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking

__all__ = ["ExperimentScale", "SCALES", "get_scale", "AdaptiveExact"]


@dataclass(frozen=True)
class ExperimentScale:
    """Dataset counts and sizes used by the experiment drivers."""

    name: str
    datasets_per_config: int
    num_rankings: int
    small_n_values: tuple[int, ...]
    medium_n: int
    similarity_steps: tuple[int, ...]
    unified_steps: tuple[int, ...]
    unified_universe: int
    unified_top_k: int
    scaling_n_values: tuple[int, ...]
    exact_max_elements: int
    time_limit_seconds: float | None
    real_datasets_per_group: int = 3

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "datasets_per_config": self.datasets_per_config,
            "num_rankings": self.num_rankings,
            "small_n_values": list(self.small_n_values),
            "medium_n": self.medium_n,
            "similarity_steps": list(self.similarity_steps),
            "unified_steps": list(self.unified_steps),
            "scaling_n_values": list(self.scaling_n_values),
            "exact_max_elements": self.exact_max_elements,
            "time_limit_seconds": self.time_limit_seconds,
        }


SCALES: dict[str, ExperimentScale] = {
    # Used by unit / integration tests: runs in a few seconds.
    "smoke": ExperimentScale(
        name="smoke",
        datasets_per_config=2,
        num_rankings=4,
        small_n_values=(6, 8),
        medium_n=10,
        similarity_steps=(10, 200),
        unified_steps=(50, 2000),
        unified_universe=20,
        unified_top_k=8,
        scaling_n_values=(10, 20),
        exact_max_elements=10,
        time_limit_seconds=30.0,
        real_datasets_per_group=1,
    ),
    # Benchmark default: minutes on a laptop, same structure as the paper.
    "default": ExperimentScale(
        name="default",
        datasets_per_config=5,
        num_rankings=7,
        small_n_values=(8, 12, 16),
        medium_n=15,
        similarity_steps=(25, 100, 500, 2500, 10000),
        unified_steps=(200, 1000, 5000, 25000, 100000),
        unified_universe=40,
        unified_top_k=14,
        scaling_n_values=(10, 25, 50, 100, 200),
        exact_max_elements=16,
        time_limit_seconds=120.0,
        real_datasets_per_group=3,
    ),
    # The paper's parameters (Sections 6.1.1-6.1.3); hours of compute.
    "paper": ExperimentScale(
        name="paper",
        datasets_per_config=100,
        num_rankings=7,
        small_n_values=tuple(range(5, 65, 5)),
        medium_n=35,
        similarity_steps=(50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000),
        unified_steps=(
            1_000,
            2_500,
            5_000,
            10_000,
            25_000,
            50_000,
            100_000,
            250_000,
            500_000,
            1_000_000,
        ),
        unified_universe=100,
        unified_top_k=35,
        scaling_n_values=tuple(range(5, 100, 5)) + tuple(range(100, 500, 100)),
        exact_max_elements=60,
        time_limit_seconds=7200.0,
        real_datasets_per_group=40,
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale preset by name (or pass an explicit scale through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown experiment scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


class AdaptiveExact(RankAggregator):
    """Exact reference solver dispatching on the dataset size.

    Uses the Θ(3^n) subset dynamic program up to ``dp_max_elements`` elements
    and the LPB integer program beyond that, so that experiment drivers get
    the fastest exact solution available for every dataset.
    """

    name = "ExactSolution"
    family = "G"
    approximation = "exact"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = False

    def __init__(
        self,
        *,
        dp_max_elements: int = 12,
        milp_time_limit: float | None = None,
        seed: int | None = None,
    ):
        super().__init__(seed=seed)
        self._dp = ExactSubsetDP(max_elements=dp_max_elements)
        self._milp = ExactAlgorithm(time_limit=milp_time_limit)
        self._dp_max_elements = dp_max_elements

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        if weights.num_elements <= self._dp_max_elements:
            return self._dp._aggregate(rankings, weights)
        return self._milp._aggregate(rankings, weights)
