"""Table 5 — average gap / %optimal / %first on uniformly generated datasets.

The paper's Table 5 reports, for every evaluated algorithm and over
uniformly generated datasets with m ∈ [3; 10] rankings and n ≤ 60 elements:

* the average gap (and the induced rank of the algorithm),
* the percentage of datasets where the algorithm finds an optimal consensus,
* the percentage of datasets where the algorithm is ranked first.

This driver regenerates those three columns on uniformly generated datasets
whose size is controlled by the experiment scale; the gap reference is the
exact ties-aware solver (Section 4.2) whenever the dataset is small enough.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..algorithms.registry import EVALUATED_ALGORITHMS, make_evaluated_suite
from ..evaluation.runner import EvaluationReport, evaluate_algorithms
from ..generators.uniform import uniform_dataset
from .config import AdaptiveExact, ExperimentScale, get_scale
from .report import format_percentage, format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine

__all__ = ["run_table5", "format_table5"]


def run_table5(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    algorithm_names: tuple[str, ...] | None = None,
    engine: "ExecutionEngine | None" = None,
) -> EvaluationReport:
    """Run the Table 5 experiment and return the evaluation report.

    Parameters
    ----------
    scale:
        Experiment scale preset (``"smoke"``, ``"default"``, ``"paper"``) or
        an explicit :class:`ExperimentScale`.
    seed:
        Seed of the dataset generation and of the randomized algorithms.
    algorithm_names:
        Optional subset of the evaluated algorithms.
    engine:
        Optional :class:`repro.engine.ExecutionEngine` to run the batch on
        (parallel backend and/or persistent result cache).
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    datasets = []
    for n in scale.small_n_values:
        for index in range(scale.datasets_per_config):
            datasets.append(
                uniform_dataset(
                    scale.num_rankings,
                    n,
                    rng,
                    name=f"table5_uniform_m{scale.num_rankings}_n{n}_{index:03d}",
                )
            )
    suite = make_evaluated_suite(
        seed=seed, names=algorithm_names or EVALUATED_ALGORITHMS
    )
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)
    return evaluate_algorithms(
        datasets,
        suite,
        exact_algorithm=exact,
        exact_max_elements=scale.exact_max_elements,
        time_limit=scale.time_limit_seconds,
        engine=engine,
    )


def format_table5(report: EvaluationReport) -> str:
    """Render the report in the layout of the paper's Table 5."""
    rows = []
    for row in sorted(report.summary_rows(), key=lambda r: r["rank"]):
        rows.append(
            {
                "algorithm": row["algorithm"],
                "average gap": format_percentage(row["average_gap"]),
                "rank": f"#{row['rank']}",
                "% gap = 0": format_percentage(row["fraction_optimal"]),
                "% first": format_percentage(row["fraction_first"]),
            }
        )
    columns = [
        ("algorithm", "Algorithm"),
        ("average gap", "Avg gap"),
        ("rank", "Rank"),
        ("% gap = 0", "%gap=0"),
        ("% first", "%first"),
    ]
    return format_table(
        rows, columns, title="Table 5 — uniformly generated datasets"
    )
