"""Ablation A3 — intermediate threshold normalization (Section 8).

Projection and unification are the two extremes of the same standardization
process (Section 8): remove the elements present in fewer than ``k``
rankings, unify the rest.  ``k = 1`` is unification, ``k = m`` is
projection.  The paper proposes studying intermediate values of ``k`` to
"keep a reasonable amount of data while ensuring the presence of relevant
elements".

This ablation runs the sweep on the F1-like season datasets (the group for
which the paper illustrates the projection problem: projection removes
pilots as relevant as a champion).  For every ``k`` it reports

* the number of elements kept,
* how many of the top pilots (by the hidden ground-truth strength used by
  the builder) survive the normalization,
* the quality of the BioConsert consensus on the resulting dataset against
  its own exact reference when feasible.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.bioconsert import BioConsert
from ..core.kemeny import generalized_kemeny_score
from ..datasets.normalization import normalize_with_threshold
from ..datasets.real_like import f1_like_dataset
from .config import AdaptiveExact, ExperimentScale, get_scale
from .report import format_percentage, format_table

__all__ = ["run_normalization_ablation", "format_normalization_ablation"]


def run_normalization_ablation(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    num_races: int = 12,
    num_pilots: int = 26,
    top_relevant: int = 8,
) -> list[dict[str, object]]:
    """Sweep the threshold ``k`` of the generalized normalization process.

    Returns one row per ``k`` with
    ``{"k", "elements_kept", "top_pilots_kept", "bioconsert_gap"}``.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    season = f1_like_dataset(num_races=num_races, num_pilots=num_pilots, rng=rng)
    # The builder's hidden ground truth: pilot_00 is the strongest, etc.
    relevant = {f"pilot_{i:02d}" for i in range(top_relevant)}

    bioconsert = BioConsert()
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)

    rows: list[dict[str, object]] = []
    for k in range(1, num_races + 1):
        normalized = normalize_with_threshold(season, k)
        consensus = bioconsert.aggregate(normalized)
        if normalized.num_elements <= scale.exact_max_elements:
            optimal = exact.aggregate(normalized).score
            gap_value = (
                consensus.score / optimal - 1.0 if optimal > 0 else 0.0
            )
        else:
            gap_value = float("nan")
        kept = normalized.universe()
        rows.append(
            {
                "k": k,
                "elements_kept": len(kept),
                "top_pilots_kept": len(relevant & set(kept)),
                "top_pilots_total": top_relevant,
                "bioconsert_gap": gap_value,
                "bioconsert_score": consensus.score,
            }
        )
    return rows


def format_normalization_ablation(rows: list[dict[str, object]]) -> str:
    """Render the threshold-normalization sweep as a text table."""
    rendered = [
        {
            "k": row["k"],
            "elements kept": row["elements_kept"],
            "top pilots kept": f"{row['top_pilots_kept']}/{row['top_pilots_total']}",
            "BioConsert gap": format_percentage(
                None
                if row["bioconsert_gap"] != row["bioconsert_gap"]
                else float(row["bioconsert_gap"])
            ),
        }
        for row in rows
    ]
    columns = [
        ("k", "k"),
        ("elements kept", "Elements kept"),
        ("top pilots kept", "Top pilots kept"),
        ("BioConsert gap", "BioConsert gap"),
    ]
    return format_table(
        rendered,
        columns,
        title="Ablation — threshold normalization k (projection ↔ unification, §8)",
    )
