"""Figure 5 — gap on unified top-k datasets as a function of the similarity.

Figure 5 of the paper repeats the similarity sweep of Figure 4, but on the
unified top-k datasets of Section 6.1.3 (Figure 1 pipeline): the less the
input rankings agree, the less their top-k lists overlap and the larger the
unification buckets become.  The sweep separates the algorithms into

* those accounting for the cost of (un)tying — BioConsert, KwikSort,
  MEDRank — which stay stable, and
* those that cannot — BordaCount, CopelandMethod, RepeatChoice — whose gap
  explodes with dissimilar unified datasets; FaginSmall also degrades
  because it splits the large unification buckets.

This driver reproduces that sweep and additionally records the average size
of the unification buckets, the dataset feature the paper identifies as the
cause (Section 7.3.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..algorithms.registry import make_evaluated_suite
from ..evaluation.runner import EvaluationReport, evaluate_algorithms
from ..generators.unified_topk import unified_topk_dataset
from .config import AdaptiveExact, ExperimentScale, get_scale
from .figure4 import DEFAULT_FIGURE4_ALGORITHMS
from .report import format_percentage, format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine

__all__ = ["run_figure5", "format_figure5"]


def run_figure5(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    algorithm_names: tuple[str, ...] | None = None,
    engine: "ExecutionEngine | None" = None,
) -> tuple[list[dict[str, object]], dict[int, EvaluationReport]]:
    """Run the unified top-k similarity sweep.

    Returns ``(rows, reports_by_steps)`` where each row is
    ``{"algorithm", "steps", "similarity", "average_bucket_size", "average_gap"}``.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    names = algorithm_names or DEFAULT_FIGURE4_ALGORITHMS
    suite = make_evaluated_suite(seed=seed, names=names)
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)

    rows: list[dict[str, object]] = []
    reports: dict[int, EvaluationReport] = {}
    for steps in scale.unified_steps:
        datasets = [
            unified_topk_dataset(
                scale.num_rankings,
                scale.unified_universe,
                scale.unified_top_k,
                steps,
                rng,
                name=f"figure5_t{steps}_{index:03d}",
            )
            for index in range(scale.datasets_per_config)
        ]
        similarity = float(np.mean([dataset.similarity() for dataset in datasets]))
        bucket_size = float(
            np.mean([dataset.average_bucket_size() for dataset in datasets])
        )
        report = evaluate_algorithms(
            datasets,
            suite,
            exact_algorithm=exact,
            exact_max_elements=scale.exact_max_elements,
            time_limit=scale.time_limit_seconds,
            engine=engine,
        )
        reports[steps] = report
        for algorithm, value in report.average_gaps().items():
            rows.append(
                {
                    "algorithm": algorithm,
                    "steps": steps,
                    "similarity": similarity,
                    "average_bucket_size": bucket_size,
                    "average_gap": value,
                }
            )
    return rows, reports


def format_figure5(rows: list[dict[str, object]]) -> str:
    """Render the unified top-k sweep as a text table."""
    rendered = [
        {
            "algorithm": row["algorithm"],
            "steps": row["steps"],
            "similarity": f"{float(row['similarity']):.3f}",
            "avg bucket": f"{float(row['average_bucket_size']):.2f}",
            "average gap": format_percentage(float(row["average_gap"])),
        }
        for row in rows
    ]
    columns = [
        ("algorithm", "Algorithm"),
        ("steps", "Steps"),
        ("similarity", "s(R)"),
        ("avg bucket", "Avg bucket"),
        ("average gap", "Avg gap"),
    ]
    return format_table(
        rendered,
        columns,
        title="Figure 5 — gap vs similarity on unified top-k datasets",
    )
