"""Table 4 — average gap on the real-world(-like) dataset groups.

The paper's Table 4 reports the average gap (m-gap for the large unified
WebSearch datasets) of every evaluated algorithm on the four real dataset
groups, under the normalization actually used in the literature:

* WebSearch — projected (gap) and unified (m-gap),
* F1        — projected and unified,
* SkiCross  — projected and unified,
* BioMedical — unified only,

plus the percentage of datasets where each algorithm ranks first.

The real datasets are not redistributable, so this driver runs the same
protocol on the synthetic stand-ins of :mod:`repro.datasets.real_like`,
which reproduce the published size / overlap / tie-density / similarity
characteristics of each group (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import TYPE_CHECKING

import numpy as np

from ..algorithms.registry import EVALUATED_ALGORITHMS, make_evaluated_suite
from ..datasets.dataset import Dataset
from ..datasets.normalization import project, unify
from ..datasets.real_like import real_like_collection
from ..evaluation.runner import EvaluationReport, evaluate_algorithms
from .config import AdaptiveExact, ExperimentScale, get_scale
from .report import format_percentage, format_table

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine

__all__ = ["GROUP_NORMALIZATIONS", "run_table4", "format_table4"]

# Which normalizations the paper applies to each group (Table 4 columns).
GROUP_NORMALIZATIONS: dict[str, tuple[str, ...]] = {
    "WebSearch": ("projection", "unification"),
    "F1": ("projection", "unification"),
    "SkiCross": ("projection", "unification"),
    "BioMedical": ("unification",),
}

# Builder parameters per group, scaled by the per-group dataset count only.
_GROUP_BUILDER_KWARGS: dict[str, dict[str, object]] = {
    "WebSearch": {"universe_size": 120, "results_per_engine": 45, "num_engines": 4},
    "F1": {"num_races": 10, "num_pilots": 24},
    "SkiCross": {"num_runs": 4, "num_competitors": 20},
    "BioMedical": {"num_sources": 5, "num_genes": 22},
}


def run_table4(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    algorithm_names: tuple[str, ...] | None = None,
    groups: tuple[str, ...] | None = None,
    engine: "ExecutionEngine | None" = None,
) -> dict[tuple[str, str], EvaluationReport]:
    """Run the Table 4 experiment.

    Returns one :class:`EvaluationReport` per ``(group, normalization)``
    column of the table.  ``engine`` optionally routes the runs through a
    parallel backend and/or persistent result cache.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    suite = make_evaluated_suite(
        seed=seed, names=algorithm_names or EVALUATED_ALGORITHMS
    )
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)

    reports: dict[tuple[str, str], EvaluationReport] = {}
    selected_groups = groups or tuple(GROUP_NORMALIZATIONS)
    for group in selected_groups:
        raw_datasets = real_like_collection(
            group,
            scale.real_datasets_per_group,
            rng,
            **_GROUP_BUILDER_KWARGS.get(group, {}),
        )
        for normalization in GROUP_NORMALIZATIONS[group]:
            normalized = [_normalize(dataset, normalization) for dataset in raw_datasets]
            normalized = [dataset for dataset in normalized if dataset.num_elements >= 2]
            reports[(group, normalization)] = evaluate_algorithms(
                normalized,
                suite,
                exact_algorithm=exact,
                exact_max_elements=scale.exact_max_elements,
                time_limit=scale.time_limit_seconds,
                engine=engine,
            )
    return reports


def _normalize(dataset: Dataset, normalization: str) -> Dataset:
    if normalization == "projection":
        return project(dataset)
    if normalization == "unification":
        return unify(dataset)
    raise ValueError(f"unsupported normalization {normalization!r}")


def format_table4(reports: Mapping[tuple[str, str], EvaluationReport]) -> str:
    """Render the per-group reports in the layout of the paper's Table 4."""
    columns_keys = list(reports)
    algorithms: set[str] = set()
    for report in reports.values():
        algorithms.update(report.average_gaps())
    column_stats = {
        key: (report.average_gaps(), report.algorithm_ranks())
        for key, report in reports.items()
    }
    # %1st over every dataset of every group (the table's last column).
    all_scores = []
    for report in reports.values():
        all_scores.extend(report.scores_by_dataset().values())
    rows = []
    for algorithm in sorted(algorithms):
        row: dict[str, object] = {"algorithm": algorithm}
        for key in columns_keys:
            averages, ranks = column_stats[key]
            if algorithm in averages:
                row[_column_label(key)] = (
                    f"{format_percentage(averages[algorithm])} (#{ranks[algorithm]})"
                )
            else:
                row[_column_label(key)] = "—"
        first_count = sum(
            1
            for scores in all_scores
            if algorithm in scores and scores[algorithm] <= min(scores.values())
        )
        row["%1st"] = format_percentage(
            first_count / len(all_scores) if all_scores else float("nan")
        )
        rows.append(row)
    columns = [("algorithm", "Algorithm")]
    columns += [(_column_label(key), _column_label(key)) for key in columns_keys]
    columns.append(("%1st", "%1st"))
    return format_table(rows, columns, title="Table 4 — real-world-like dataset groups")


def _column_label(key: tuple[str, str]) -> str:
    group, normalization = key
    suffix = "Proj" if normalization == "projection" else "Unif"
    return f"{group} {suffix}"
