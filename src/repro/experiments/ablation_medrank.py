"""Ablation A1 — MEDRank threshold sensitivity (Section 7.1.1).

The paper evaluates MEDRank at thresholds 0.5 and 0.7 and reports that the
algorithm "is very sensitive to its threshold value" and that values higher
than the default 0.5 do not improve the consensus (0.5 is the best choice
in 76% of the synthetic datasets).  This ablation sweeps a finer threshold
grid over uniformly generated datasets and reports the average gap per
threshold, regenerating the evidence behind that recommendation.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.medrank import MEDRank
from ..evaluation.runner import EvaluationReport, evaluate_algorithms
from ..generators.uniform import uniform_dataset
from .config import AdaptiveExact, ExperimentScale, get_scale
from .report import format_percentage, format_table

__all__ = ["DEFAULT_THRESHOLDS", "run_medrank_threshold_ablation", "format_medrank_ablation"]

DEFAULT_THRESHOLDS: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0)


def run_medrank_threshold_ablation(
    scale: str | ExperimentScale = "default",
    *,
    seed: int = 2015,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
) -> tuple[list[dict[str, object]], EvaluationReport]:
    """Sweep the MEDRank threshold and report the average gap per value.

    Returns ``(rows, report)`` where each row is
    ``{"threshold", "average_gap", "rank"}``.
    """
    scale = get_scale(scale)
    rng = np.random.default_rng(seed)
    datasets = []
    for n in scale.small_n_values:
        for index in range(scale.datasets_per_config):
            datasets.append(
                uniform_dataset(
                    scale.num_rankings,
                    n,
                    rng,
                    name=f"medrank_ablation_n{n}_{index:03d}",
                )
            )
    suite = {f"MEDRank({threshold:g})": MEDRank(threshold) for threshold in thresholds}
    exact = AdaptiveExact(milp_time_limit=scale.time_limit_seconds)
    report = evaluate_algorithms(
        datasets,
        suite,
        exact_algorithm=exact,
        exact_max_elements=scale.exact_max_elements,
        time_limit=scale.time_limit_seconds,
    )
    averages = report.average_gaps()
    ranks = report.algorithm_ranks()
    rows = [
        {
            "threshold": threshold,
            "average_gap": averages[f"MEDRank({threshold:g})"],
            "rank": ranks[f"MEDRank({threshold:g})"],
        }
        for threshold in thresholds
    ]
    return rows, report


def format_medrank_ablation(rows: list[dict[str, object]]) -> str:
    """Render the threshold sweep as a text table."""
    rendered = [
        {
            "threshold": f"{row['threshold']:g}",
            "average gap": format_percentage(float(row["average_gap"])),
            "rank": f"#{row['rank']}",
        }
        for row in rows
    ]
    columns = [
        ("threshold", "Threshold h"),
        ("average gap", "Avg gap"),
        ("rank", "Rank"),
    ]
    return format_table(
        rendered, columns, title="Ablation — MEDRank threshold sensitivity (§7.1.1)"
    )
