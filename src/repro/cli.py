"""Command-line interface.

``repro-rankagg`` exposes the library's main entry points from the shell:

* ``aggregate``  — aggregate a dataset file into a consensus ranking;
* ``describe``   — print the features of a dataset (size, ties, similarity);
* ``recommend``  — print the guidance-engine recommendation for a dataset;
* ``generate``   — generate a synthetic dataset (uniform / markov / unified-topk);
* ``experiment`` — run one of the paper's experiments (table4, table5,
  figure2 ... figure6) at a chosen scale and print the resulting table;
* ``batch``      — run one or several experiments through the parallel
  execution engine (``--backend``, ``--workers``) with a persistent result
  cache (``--cache-dir``, ``--no-cache``) so re-runs are incremental;
* ``cache``      — inspect (``stats``) or invalidate (``clear``) the
  persistent result cache;
* ``scenarios``  — list / describe the registered workload scenarios, or
  run a (scenario × algorithm) matrix through the engine and write
  ``workloads_report.json`` (exits non-zero when any run fails or a
  scenario violates its expected shape);
* ``portfolio``  — aggregate a dataset under a wall-clock budget by racing
  the guidance-chosen algorithm portfolio (anytime local search included);
* ``serve``      — replay a synthetic service-load request stream through
  the caching/coalescing service frontend and print its statistics;
* ``serve-http`` — run the async HTTP serving layer (sharded workers,
  consistent-hash routing, backpressure, live sessions) on a TCP port or
  unix socket until SIGTERM/SIGINT or ``--max-requests``, then drain
  gracefully;
* ``load-http``  — drive a seeded closed- or open-loop request schedule
  against a running ``serve-http`` server and print latency percentiles
  (exits non-zero when any request failed);
* ``churn``      — replay a write-heavy mutation stream through a live
  aggregation session (delta-maintained pairwise weights, warm-started
  consensus repairs, cache invalidation) and print its statistics;
* ``recovery-churn`` — SIGKILL a journaled churn worker at seeded points
  mid-stream, replay the write-ahead journal after each death and verify
  no acknowledged write is lost and the recovered weights are
  byte-identical to a from-scratch rebuild (exits non-zero otherwise);
* ``telemetry``  — summarize (``summary``, ``top``) or convert
  (``export``) a saved telemetry bundle (see :mod:`repro.telemetry`);
* ``catalogue``  — print the Table 1 algorithm catalogue.

The execution commands (``batch``, ``scenarios run``, ``portfolio``,
``serve``, ``churn``) accept ``--trace-out FILE`` (write a Chrome ``trace_event``
JSON of the run, loadable in Perfetto / ``chrome://tracing``) and
``--telemetry-out FILE`` (write the raw telemetry bundle for the
``telemetry`` command); either flag activates instrumentation for the
run, which is otherwise disabled and free.

Examples
--------

.. code-block:: console

    $ repro-rankagg generate uniform -m 5 -n 8 -o dataset.txt
    $ repro-rankagg aggregate dataset.txt --algorithm BioConsert
    $ repro-rankagg portfolio dataset.txt --budget 0.5
    $ repro-rankagg serve --requests 50 --budget 0.25 --cache-dir .repro-cache
    $ repro-rankagg experiment table5 --scale smoke
    $ repro-rankagg batch table4 table5 figure6 --scale default \
          --backend process --workers 4 --cache-dir .repro-cache
    $ repro-rankagg cache stats --cache-dir .repro-cache
    $ repro-rankagg scenarios list
    $ repro-rankagg scenarios run --matrix smoke --backend process \
          --output workloads_report.json --trace-out trace.json
    $ repro-rankagg telemetry summary bundle.json
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from collections.abc import Sequence

from . import __version__, aggregate as aggregate_rankings
from .algorithms import available_algorithms, table1_catalogue
from .datasets import load_dataset, normalize, save_dataset
from .evaluation import Priority, recommend
from .experiments import (
    format_figure2,
    format_figure3,
    format_figure4,
    format_figure5,
    format_figure6,
    format_table,
    format_table4,
    format_table5,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table4,
    run_table5,
)
from .generators import markov_dataset, unified_topk_dataset, uniform_dataset

__all__ = ["main", "build_parser"]

_EXPERIMENT_NAMES = (
    "table4",
    "table5",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
)
_DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-rankagg`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-rankagg",
        description="Rank aggregation with ties (VLDB 2015 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    agg = subparsers.add_parser("aggregate", help="aggregate a dataset file")
    agg.add_argument("dataset", help="path to a dataset text file")
    agg.add_argument(
        "--algorithm",
        default="BioConsert",
        choices=available_algorithms(),
        help="aggregation algorithm (default: BioConsert)",
    )
    agg.add_argument("--seed", type=int, default=None, help="seed for randomized algorithms")
    agg.add_argument(
        "--normalize",
        choices=["projection", "unification", "unified-broken"],
        default=None,
        help="normalization applied before aggregating an incomplete dataset",
    )

    desc = subparsers.add_parser("describe", help="print dataset features")
    desc.add_argument("dataset", help="path to a dataset text file")

    reco = subparsers.add_parser("recommend", help="recommend an algorithm for a dataset")
    reco.add_argument("dataset", help="path to a dataset text file")
    reco.add_argument(
        "--priority",
        choices=[priority.value for priority in Priority],
        default=Priority.BALANCED.value,
    )

    gen = subparsers.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("kind", choices=["uniform", "markov", "unified-topk"])
    gen.add_argument("-m", "--rankings", type=int, default=7)
    gen.add_argument("-n", "--elements", type=int, default=20)
    gen.add_argument("-t", "--steps", type=int, default=1000, help="Markov steps")
    gen.add_argument("-k", "--top-k", type=int, default=10, help="top-k cut (unified-topk)")
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("-o", "--output", default=None, help="output file (default: stdout)")

    exp = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    exp.add_argument("name", choices=list(_EXPERIMENT_NAMES))
    exp.add_argument("--scale", default="smoke", choices=["smoke", "default", "paper"])
    exp.add_argument("--seed", type=int, default=2015)

    batch = subparsers.add_parser(
        "batch",
        help="run experiments through the parallel execution engine "
        "with a persistent result cache",
    )
    batch.add_argument(
        "experiments",
        nargs="+",
        choices=list(_EXPERIMENT_NAMES),
        help="experiments to run (several may be given)",
    )
    batch.add_argument("--scale", default="smoke", choices=["smoke", "default", "paper"])
    batch.add_argument("--seed", type=int, default=2015)
    batch.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default="serial",
        help="execution backend fanning out the independent runs",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backends (default: CPU count)",
    )
    batch.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"persistent result cache directory (default: {_DEFAULT_CACHE_DIR})",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache for this run",
    )
    _add_telemetry_flags(batch)

    cache = subparsers.add_parser(
        "cache", help="inspect or invalidate the persistent result cache"
    )
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"persistent result cache directory (default: {_DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--algorithm",
        default=None,
        help="restrict `clear` to the entries of one algorithm",
    )

    scenarios = subparsers.add_parser(
        "scenarios", help="list, describe or run the registered workload scenarios"
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    scenarios_sub.add_parser("list", help="print the scenario catalog")

    sc_describe = scenarios_sub.add_parser(
        "describe", help="print one scenario's full registry card"
    )
    sc_describe.add_argument("name", help="scenario name (see `scenarios list`)")

    sc_run = scenarios_sub.add_parser(
        "run", help="run a (scenario × algorithm) matrix through the engine"
    )
    sc_run.add_argument(
        "--matrix",
        default="smoke",
        choices=["smoke", "default"],
        help="scenario scale preset (default: smoke)",
    )
    sc_run.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to one scenario (repeatable; default: all registered)",
    )
    sc_run.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        metavar="NAME",
        help="algorithm names (default: the fast scalable matrix suite)",
    )
    sc_run.add_argument("--seed", type=int, default=2015)
    sc_run.add_argument(
        "--shard-size",
        type=int,
        default=2,
        help="datasets per engine job (shard-level batching; default: 2)",
    )
    sc_run.add_argument(
        "--backend", choices=["serial", "thread", "process"], default="serial"
    )
    sc_run.add_argument("--workers", type=int, default=None)
    sc_run.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"persistent result cache directory (default: {_DEFAULT_CACHE_DIR})",
    )
    sc_run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache for this run",
    )
    sc_run.add_argument(
        "--output",
        default="workloads_report.json",
        help="machine-readable report path (default: workloads_report.json)",
    )
    _add_telemetry_flags(sc_run)

    portfolio = subparsers.add_parser(
        "portfolio",
        help="aggregate a dataset under a time budget by racing the "
        "guidance-chosen algorithm portfolio",
    )
    portfolio.add_argument("dataset", help="path to a dataset text file")
    portfolio.add_argument(
        "--budget",
        type=float,
        default=1.0,
        help="shared wall-clock budget in seconds (default: 1.0)",
    )
    portfolio.add_argument(
        "--priority",
        choices=[priority.value for priority in Priority],
        default=Priority.BALANCED.value,
        help="guidance priority steering candidate selection",
    )
    portfolio.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        metavar="NAME",
        help="explicit candidate algorithms (default: guidance engine)",
    )
    portfolio.add_argument("--seed", type=int, default=None)
    _add_telemetry_flags(portfolio)

    serve = subparsers.add_parser(
        "serve",
        help="replay a synthetic service-load request stream through the "
        "caching/coalescing service frontend",
    )
    serve.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario(s) providing the request population (repeatable; "
        "default: mallows-ties-diffuse + markov-similarity)",
    )
    serve.add_argument(
        "--scale",
        default="smoke",
        choices=["smoke", "default"],
        help="scenario scale preset (default: smoke)",
    )
    serve.add_argument(
        "--requests", type=int, default=50, help="stream length (default: 50)"
    )
    serve.add_argument(
        "--budget",
        type=float,
        default=0.25,
        help="per-request time budget in seconds (default: 0.25)",
    )
    serve.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="Zipf popularity exponent over the distinct datasets (default: 1.1)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="requests coalesced per batch (default: 8)",
    )
    serve.add_argument(
        "--priority",
        choices=[priority.value for priority in Priority],
        default=Priority.BALANCED.value,
    )
    serve.add_argument("--seed", type=int, default=2015)
    serve.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"persistent result cache directory (default: {_DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (every request is computed)",
    )
    serve.add_argument(
        "--output",
        default=None,
        help="also write the machine-readable load report to this JSON file",
    )
    _add_telemetry_flags(serve)

    serve_http = subparsers.add_parser(
        "serve-http",
        help="run the async HTTP serving layer (sharded workers, "
        "consistent-hash routing, backpressure, graceful drain)",
    )
    serve_http.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default: 127.0.0.1)"
    )
    serve_http.add_argument(
        "--port",
        type=int,
        default=8572,
        help="TCP port; 0 binds an ephemeral port (default: 8572)",
    )
    serve_http.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="bind a unix domain socket at PATH instead of TCP",
    )
    serve_http.add_argument(
        "--shards", type=int, default=2, help="shard worker count (default: 2)"
    )
    serve_http.add_argument(
        "--mode",
        choices=["thread", "process"],
        default="thread",
        help="shard execution mode (default: thread; process gives real "
        "CPU parallelism across shards)",
    )
    serve_http.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="per-shard admission bound before structured 'overloaded' "
        "rejections (default: 64)",
    )
    serve_http.add_argument(
        "--budget",
        type=float,
        default=0.25,
        help="default per-request compute budget in seconds (default: 0.25)",
    )
    serve_http.add_argument("--seed", type=int, default=2015)
    serve_http.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"shared disk cache tier (default: {_DEFAULT_CACHE_DIR})",
    )
    serve_http.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (thread mode only)",
    )
    serve_http.add_argument(
        "--memory-entries",
        type=int,
        default=256,
        help="per-shard memory cache tier capacity (default: 256)",
    )
    serve_http.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port to PATH once listening (lets scripts "
        "use --port 0 without racing)",
    )
    serve_http.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="drain and exit after answering N requests (deterministic "
        "shutdown for CI smoke runs)",
    )
    serve_http.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="journal every live session under DIR (one write-ahead log "
        "per session) and recover the sessions found there on startup",
    )
    serve_http.add_argument(
        "--journal-fsync",
        choices=["always", "batch", "never"],
        default="batch",
        help="journal durability policy (default: batch)",
    )
    serve_http.add_argument(
        "--health-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="probe shard workers this often and eject dead ones "
        "(default: only on-demand failover)",
    )
    _add_telemetry_flags(serve_http)

    load_http = subparsers.add_parser(
        "load-http",
        help="drive a seeded load schedule against a running serve-http "
        "server and print latency percentiles",
    )
    load_http.add_argument(
        "--host", default="127.0.0.1", help="server address (default: 127.0.0.1)"
    )
    load_http.add_argument("--port", type=int, default=8572)
    load_http.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="connect over a unix domain socket instead of TCP",
    )
    load_http.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario(s) providing the request population (repeatable)",
    )
    load_http.add_argument(
        "--scale", default="smoke", choices=["smoke", "default"]
    )
    load_http.add_argument(
        "--requests", type=int, default=50, help="schedule length (default: 50)"
    )
    load_http.add_argument("--skew", type=float, default=1.1)
    load_http.add_argument(
        "--budget", type=float, default=0.25, help="per-request budget (s)"
    )
    load_http.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request total-latency deadline in seconds",
    )
    load_http.add_argument(
        "--algorithm", default=None, help="pin one registry algorithm"
    )
    load_http.add_argument(
        "--loop",
        choices=["closed", "open"],
        default="closed",
        help="closed (concurrency-limited) or open (rate-limited) loop",
    )
    load_http.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop workers"
    )
    load_http.add_argument(
        "--rate", type=float, default=50.0, help="open-loop arrival rate (req/s)"
    )
    load_http.add_argument("--seed", type=int, default=2015)
    load_http.add_argument(
        "--output",
        default=None,
        help="also write the machine-readable load report to this JSON file",
    )

    churn = subparsers.add_parser(
        "churn",
        help="replay a write-heavy mutation stream through a live "
        "aggregation session (delta-maintained weights, warm repairs)",
    )
    churn.add_argument(
        "--scenario",
        default="mallows-ties-diffuse",
        metavar="NAME",
        help="scenario whose first dataset seeds the live population "
        "(default: mallows-ties-diffuse)",
    )
    churn.add_argument(
        "--scale",
        default="smoke",
        choices=["smoke", "default"],
        help="scenario scale preset (default: smoke)",
    )
    churn.add_argument(
        "--mutations", type=int, default=30, help="write-stream length (default: 30)"
    )
    churn.add_argument(
        "--repair-every",
        type=int,
        default=1,
        help="writes between consensus repairs (default: 1)",
    )
    churn.add_argument(
        "--algorithm",
        default="BioConsert",
        help="anytime algorithm running the repairs (default: BioConsert)",
    )
    churn.add_argument(
        "--budget",
        type=float,
        default=0.25,
        help="per-repair time budget in seconds (default: 0.25)",
    )
    churn.add_argument("--seed", type=int, default=2015)
    churn.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        help=f"persistent result cache directory (default: {_DEFAULT_CACHE_DIR})",
    )
    churn.add_argument(
        "--no-cache",
        action="store_true",
        help="run without a serving frontend (no invalidate/re-publish)",
    )
    churn.add_argument(
        "--output",
        default=None,
        help="also write the machine-readable churn report to this JSON file",
    )
    _add_telemetry_flags(churn)

    recovery = subparsers.add_parser(
        "recovery-churn",
        help="SIGKILL a journaled churn worker mid-stream and verify no "
        "acknowledged write is lost on replay (crash-safety smoke)",
    )
    recovery.add_argument(
        "--scenario",
        default="mallows-ties-diffuse",
        metavar="NAME",
        help="scenario whose first dataset seeds the live population "
        "(default: mallows-ties-diffuse)",
    )
    recovery.add_argument(
        "--scale",
        default="smoke",
        choices=["smoke", "default"],
        help="scenario scale preset (default: smoke)",
    )
    recovery.add_argument(
        "--mutations", type=int, default=40, help="write-stream length (default: 40)"
    )
    recovery.add_argument(
        "--kill-at",
        type=int,
        nargs="*",
        default=[12, 27],
        metavar="N",
        help="acknowledged-write counts at which the worker is SIGKILLed "
        "(default: 12 27)",
    )
    recovery.add_argument(
        "--repair-every",
        type=int,
        default=8,
        help="acknowledged writes between consensus repairs (default: 8)",
    )
    recovery.add_argument(
        "--fsync",
        choices=["always", "batch", "never"],
        default="batch",
        help="journal durability policy (default: batch)",
    )
    recovery.add_argument(
        "--algorithm",
        default="BioConsert",
        help="anytime algorithm running the repairs (default: BioConsert)",
    )
    recovery.add_argument(
        "--budget",
        type=float,
        default=0.1,
        help="per-repair time budget in seconds (default: 0.1)",
    )
    recovery.add_argument("--seed", type=int, default=2015)
    recovery.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="journal location (default: a fresh temporary directory)",
    )
    recovery.add_argument(
        "--output",
        default=None,
        help="also write the machine-readable recovery report to this JSON file",
    )
    _add_telemetry_flags(recovery)

    telemetry = subparsers.add_parser(
        "telemetry",
        help="summarize or convert a telemetry bundle saved with --telemetry-out",
    )
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command", required=True)

    t_summary = telemetry_sub.add_parser(
        "summary", help="print span totals, metric counts and convergence headlines"
    )
    t_summary.add_argument("bundle", help="path to a telemetry bundle JSON file")

    t_export = telemetry_sub.add_parser(
        "export", help="convert a bundle to chrome / jsonl / prometheus text"
    )
    t_export.add_argument("bundle", help="path to a telemetry bundle JSON file")
    t_export.add_argument(
        "--format",
        choices=["chrome", "jsonl", "prometheus"],
        default="chrome",
        help="output format (default: chrome, loadable in Perfetto)",
    )
    t_export.add_argument(
        "-o", "--output", default=None, help="output file (default: stdout)"
    )

    t_top = telemetry_sub.add_parser(
        "top", help="print the span names with the largest total time"
    )
    t_top.add_argument("bundle", help="path to a telemetry bundle JSON file")
    t_top.add_argument(
        "--limit", type=int, default=10, help="rows to print (default: 10)"
    )

    subparsers.add_parser("catalogue", help="print the Table 1 algorithm catalogue")

    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace-out`` / ``--telemetry-out`` flags.

    Parameters
    ----------
    parser:
        The execution subcommand's parser.
    """
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record telemetry and write a Chrome trace_event JSON on exit "
        "(open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="FILE",
        help="record telemetry and write the raw bundle on exit "
        "(inspect with `repro-rankagg telemetry`)",
    )


@contextlib.contextmanager
def _telemetry_capture(args: argparse.Namespace):
    """Record a command under a telemetry session when either flag was given.

    Writes the requested artifacts when the command body finishes —
    including on error, so a failing run still leaves its trace behind.

    Parameters
    ----------
    args:
        The parsed command arguments (``trace_out`` / ``telemetry_out``).
    """
    trace_out = getattr(args, "trace_out", None)
    bundle_out = getattr(args, "telemetry_out", None)
    if not trace_out and not bundle_out:
        yield
        return

    import json

    from .telemetry import session as telemetry_session
    from .telemetry.export import save_bundle, to_chrome_trace

    with telemetry_session() as active:
        try:
            yield
        finally:
            bundle = active.to_payload()
            if bundle_out:
                path = save_bundle(bundle, bundle_out)
                print(f"wrote telemetry bundle to {path}")
            if trace_out:
                from pathlib import Path

                path = Path(trace_out)
                path.write_text(
                    json.dumps(to_chrome_trace(bundle)) + "\n", encoding="utf-8"
                )
                print(f"wrote Chrome trace to {path}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "aggregate":
        dataset = load_dataset(args.dataset)
        if args.normalize:
            dataset = normalize(dataset, args.normalize)
        elif not dataset.is_complete:
            print(
                "dataset is not complete; applying unification "
                "(use --normalize to choose)",
                file=sys.stderr,
            )
            dataset = normalize(dataset, "unification")
        result = aggregate_rankings(dataset, algorithm=args.algorithm, seed=args.seed)
        print(f"algorithm: {result.algorithm}")
        print(f"score:     {result.score}")
        print(f"time:      {result.elapsed_seconds:.4f}s")
        print("consensus:")
        for index, bucket in enumerate(result.consensus.buckets, start=1):
            print(f"  {index}. " + ", ".join(str(element) for element in bucket))
        return 0

    if args.command == "describe":
        dataset = load_dataset(args.dataset)
        for key, value in dataset.describe().items():
            print(f"{key}: {value}")
        return 0

    if args.command == "recommend":
        dataset = load_dataset(args.dataset)
        if not dataset.is_complete:
            dataset = normalize(dataset, "unification")
        for entry in recommend(dataset, args.priority):
            print(f"{entry.algorithm}: {entry.reason}")
        return 0

    if args.command == "generate":
        if args.kind == "uniform":
            dataset = uniform_dataset(args.rankings, args.elements, args.seed)
        elif args.kind == "markov":
            dataset = markov_dataset(args.rankings, args.elements, args.steps, args.seed)
        else:
            dataset = unified_topk_dataset(
                args.rankings, args.elements, args.top_k, args.steps, args.seed
            )
        if args.output:
            path = save_dataset(dataset, args.output)
            print(f"wrote {dataset.num_rankings} rankings to {path}")
        else:
            from .datasets import dumps

            sys.stdout.write(dumps(dataset))
        return 0

    if args.command == "experiment":
        print(_run_experiment(args.name, args.scale, args.seed))
        return 0

    if args.command == "batch":
        with _telemetry_capture(args):
            return _run_batch(args)

    if args.command == "cache":
        return _run_cache(args)

    if args.command == "scenarios":
        with _telemetry_capture(args):
            return _run_scenarios(args)

    if args.command == "portfolio":
        with _telemetry_capture(args):
            return _run_portfolio(args)

    if args.command == "serve":
        with _telemetry_capture(args):
            return _run_serve(args)

    if args.command == "serve-http":
        with _telemetry_capture(args):
            return _run_serve_http(args)

    if args.command == "load-http":
        return _run_load_http(args)

    if args.command == "churn":
        with _telemetry_capture(args):
            return _run_churn(args)

    if args.command == "recovery-churn":
        with _telemetry_capture(args):
            return _run_recovery_churn(args)

    if args.command == "telemetry":
        return _run_telemetry(args)

    if args.command == "catalogue":
        rows = table1_catalogue()
        columns = [
            ("reference", "Ref"),
            ("name", "Name"),
            ("approximation", "Approx."),
            ("family", "Family"),
            ("produces_ties", "Produces ties"),
            ("accounts_for_tie_cost", "Untying cost"),
        ]
        print(format_table(rows, columns, title="Table 1 — algorithm catalogue"))
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


def _run_experiment(name: str, scale: str, seed: int, engine=None) -> str:
    if name == "table4":
        return format_table4(run_table4(scale, seed=seed, engine=engine))
    if name == "table5":
        return format_table5(run_table5(scale, seed=seed, engine=engine))
    if name == "figure2":
        return format_figure2(run_figure2(scale, seed=seed, engine=engine))
    if name == "figure3":
        # Pure dataset-statistics sweep: nothing to aggregate, cache or fan out.
        return format_figure3(run_figure3(scale, seed=seed))
    if name == "figure4":
        return format_figure4(run_figure4(scale, seed=seed, engine=engine)[0])
    if name == "figure5":
        return format_figure5(run_figure5(scale, seed=seed, engine=engine)[0])
    if name == "figure6":
        return format_figure6(run_figure6(scale, seed=seed, engine=engine)[0])
    raise ValueError(f"unknown experiment {name!r}")


def _run_batch(args: argparse.Namespace) -> int:
    """Run experiments through the execution engine and print a summary.

    Exit codes mirror the ``scenarios run`` convention: 0 for a clean
    batch, 3 when specs were quarantined (retries exhausted) and 4 when
    specs were marked poison (consecutive worker crashes) — the batch
    still completes and reports structured errors either way.
    """
    from .engine import ExecutionEngine, ResultCache, make_backend

    backend = make_backend(args.backend, workers=args.workers)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    engine = ExecutionEngine(backend=backend, cache=cache)
    try:
        for name in args.experiments:
            print(_run_experiment(name, args.scale, args.seed, engine=engine))
            print()
    finally:
        _shutdown_backend(backend)
    summary = engine.execution_summary()
    fanout = engine.session_fanout
    print("engine summary:")
    print(f"  backend:     {summary['backend']}")
    print(f"  total runs:  {summary['total_runs']}")
    print(f"  executed:    {summary['executed_runs']}")
    print(f"  from cache:  {summary['cached_runs']}")
    print(f"  hit rate:    {100.0 * summary['cache_hit_rate']:.1f}%")
    if cache is not None:
        stats = cache.stats()
        print(f"  cache dir:   {stats.directory}")
        print(f"  cache size:  {stats.entries} entries, {stats.size_bytes} bytes")
        if stats.corrupt:
            print(f"  quarantined: {stats.corrupt} corrupt cache record(s)")
    if (
        fanout.retries
        or fanout.worker_crashes
        or fanout.pool_rebuilds
        or fanout.deadline_hits
    ):
        print(
            f"  resilience:  {fanout.retries} retries, "
            f"{fanout.worker_crashes} worker crashes, "
            f"{fanout.pool_rebuilds} pool rebuilds, "
            f"{fanout.deadline_hits} deadline hits"
        )
    if fanout.poisoned:
        print(
            f"batch degraded: {fanout.poisoned} poison spec(s), "
            f"{fanout.quarantined} quarantined spec(s) "
            "(see error records in the reports above)",
            file=sys.stderr,
        )
        return 4
    if fanout.quarantined:
        print(
            f"batch degraded: {fanout.quarantined} quarantined spec(s) "
            "(see error records in the reports above)",
            file=sys.stderr,
        )
        return 3
    return 0


def _shutdown_backend(backend) -> None:
    """Release pooled workers before interpreter exit.

    Leaving a live ProcessPoolExecutor to the atexit machinery races the
    interpreter shutdown and spews "Exception ignored" noise on stderr.
    """
    shutdown = getattr(backend, "shutdown", None)
    if shutdown is not None:
        shutdown()


def _run_scenarios(args: argparse.Namespace) -> int:
    """List / describe the scenario catalog or run a scenario matrix."""
    from .experiments.report import format_table
    from .workloads import (
        DEFAULT_MATRIX_ALGORITHMS,
        ScenarioMatrix,
        get_scenario,
        list_scenarios,
    )

    if args.scenarios_command == "list":
        rows = [scenario.describe() for scenario in list_scenarios()]
        for row in rows:
            row["tags"] = ", ".join(row["tags"]) or "—"
        columns = [
            ("name", "Name"),
            ("family", "Family"),
            ("normalization", "Normalization"),
            ("seed_policy", "Seed policy"),
            ("paper_section", "Paper section"),
            ("tags", "Tags"),
        ]
        print(format_table(rows, columns, title="Registered workload scenarios"))
        return 0

    if args.scenarios_command == "describe":
        try:
            scenario = get_scenario(args.name)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 1
        card = scenario.describe()
        card["description"] = scenario.description
        for key, value in card.items():
            print(f"{key}: {value}")
        return 0

    # scenarios run
    from .engine import ExecutionEngine, ResultCache, make_backend
    from .workloads import ScenarioShapeError

    backend = make_backend(args.backend, workers=args.workers)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    engine = ExecutionEngine(backend=backend, cache=cache)
    try:
        matrix = ScenarioMatrix(
            scenarios=args.scenario,
            algorithms=tuple(args.algorithms) if args.algorithms else DEFAULT_MATRIX_ALGORITHMS,
            scale=args.matrix,
            seed=args.seed,
            shard_size=args.shard_size,
        )
        report = matrix.run(engine)
    except ScenarioShapeError as error:
        print(f"scenario validation failed: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(error, file=sys.stderr)
        return 1
    finally:
        _shutdown_backend(backend)
    print(report.format())
    path = report.write(args.output)
    print(f"\nwrote machine-readable report to {path}")
    summary = engine.execution_summary()
    print(
        f"engine: backend={summary['backend']} total={summary['total_runs']} "
        f"executed={summary['executed_runs']} cached={summary['cached_runs']}"
    )
    # A run that produced no score (library error, over-budget verdict) must
    # not hide inside the report: fail the command so CI and scripts notice.
    failures = report.failed_runs()
    if failures:
        print(f"\n{len(failures)} run(s) failed:", file=sys.stderr)
        for failure in failures:
            reason = failure["error"] or (
                "over budget" if not failure["within_budget"] else "no score"
            )
            print(
                f"  {failure['scenario']}: {failure['algorithm']} on "
                f"{failure['dataset']}: {reason}",
                file=sys.stderr,
            )
        return 3
    return 0


def _run_portfolio(args: argparse.Namespace) -> int:
    """Race the algorithm portfolio on one dataset under a time budget."""
    from .service import PortfolioScheduler

    dataset = load_dataset(args.dataset)
    if not dataset.is_complete:
        print(
            "dataset is not complete; applying unification before serving",
            file=sys.stderr,
        )
        dataset = normalize(dataset, "unification")
    scheduler = PortfolioScheduler(
        budget_seconds=args.budget,
        priority=args.priority,
        algorithms=args.algorithms,
        seed=args.seed,
    )
    result = scheduler.run(dataset)
    print(f"winner:  {result.algorithm}")
    print(f"score:   {result.score}")
    print(f"budget:  {result.budget_seconds:.3f}s")
    print(f"elapsed: {result.elapsed_seconds:.3f}s")
    print("members:")
    for member in result.members:
        detail = f" ({member.reason})" if member.reason else ""
        score = "—" if member.score is None else str(member.score)
        print(
            f"  {member.algorithm:<18} {member.mode:<9} {member.status:<12} "
            f"score={score:<8} steps={member.steps}{detail}"
        )
    print("consensus:")
    for index, bucket in enumerate(result.consensus.buckets, start=1):
        print(f"  {index}. " + ", ".join(str(element) for element in bucket))
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Replay a service-load stream through the frontend and print stats."""
    import json

    from .service import ServiceFrontend
    from .workloads import ServiceLoadProfile, run_service_load

    profile = ServiceLoadProfile(
        scenarios=tuple(args.scenario)
        if args.scenario
        else ServiceLoadProfile.scenarios,
        scale=args.scale,
        num_requests=args.requests,
        skew=args.skew,
        priority=args.priority,
        budget_seconds=args.budget,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    frontend = ServiceFrontend(
        None if args.no_cache else args.cache_dir,
        default_budget_seconds=args.budget,
        seed=args.seed,
    )
    payload = run_service_load(frontend, profile)
    stats = payload["frontend"]
    print(
        f"service load — scenarios={', '.join(profile.scenarios)} "
        f"scale={profile.scale} requests={profile.num_requests} "
        f"budget={profile.budget_seconds}s"
    )
    print(f"  distinct datasets: {payload['distinct_datasets']}")
    print(f"  by source:         {payload['responses_by_source']}")
    print(f"  hit rate:          {100.0 * stats['hit_rate']:.1f}%")
    print(f"  latency mean:      {1000.0 * stats['latency_mean_seconds']:.2f}ms")
    print(f"  latency p95:       {1000.0 * stats['latency_p95_seconds']:.2f}ms")
    if args.output:
        from pathlib import Path

        path = Path(args.output)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote machine-readable load report to {path}")
    return 0


def _run_serve_http(args: argparse.Namespace) -> int:
    """Run the async HTTP serving layer until a signal or max-requests."""
    import asyncio
    import signal
    from pathlib import Path

    from .service.http import HttpAggregationServer

    async def _serve() -> dict:
        server = HttpAggregationServer(
            None if args.no_cache else args.cache_dir,
            host=args.host,
            port=args.port,
            unix_socket=args.unix_socket,
            shards=args.shards,
            mode=args.mode,
            max_pending=args.max_pending,
            default_budget_seconds=args.budget,
            seed=args.seed,
            memory_entries=args.memory_entries,
            max_requests=args.max_requests,
            journal_dir=args.journal_dir,
            journal_fsync=args.journal_fsync,
            health_interval_seconds=args.health_interval,
        )
        await server.start()
        bind = args.unix_socket or f"http://{server.host}:{server.port}"
        print(
            f"serving on {bind} — shards={args.shards} mode={args.mode} "
            f"max_pending={args.max_pending} budget={args.budget}s",
            flush=True,
        )
        if server.recovered_sessions:
            print(
                f"recovered live sessions: {', '.join(server.recovered_sessions)}",
                flush=True,
            )
        if args.port_file and args.unix_socket is None:
            Path(args.port_file).write_text(f"{server.port}\n")
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-unix event loops
                pass
        drained = asyncio.create_task(server.wait_drained())
        stopped = asyncio.create_task(stop.wait())
        done, _pending = await asyncio.wait(
            {drained, stopped}, return_when=asyncio.FIRST_COMPLETED
        )
        if stopped in done:
            print("signal received — draining", flush=True)
            await server.drain()
        await drained
        stopped.cancel()
        if args.port_file:
            Path(args.port_file).unlink(missing_ok=True)
        return server.stats.describe()

    stats = asyncio.run(_serve())
    print(
        f"drained — requests={stats['requests']} ok={stats['ok']} "
        f"rejected={stats['rejected']} deadline={stats['deadline_expired']} "
        f"failed={stats['failed']} coalesced={stats['coalesced']}"
    )
    return 0


def _run_load_http(args: argparse.Namespace) -> int:
    """Drive a seeded schedule against a running server; non-zero on failures."""
    import json

    from .workloads import HttpLoadProfile, build_http_schedule, run_http_load

    profile = HttpLoadProfile(
        scenarios=tuple(args.scenario)
        if args.scenario
        else HttpLoadProfile.scenarios,
        scale=args.scale,
        num_requests=args.requests,
        skew=args.skew,
        budget_seconds=args.budget,
        deadline_seconds=args.deadline,
        algorithm=args.algorithm,
        loop=args.loop,
        concurrency=args.concurrency,
        rate=args.rate,
        seed=args.seed,
    )
    schedule = build_http_schedule(profile)
    report = run_http_load(
        schedule,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
    )
    latency = report["latency_seconds"]
    print(
        f"http load — {report['transport']} loop={profile.loop} "
        f"requests={report['num_requests']} completed={report['completed']}"
    )
    print(f"  by status:   {report['by_status']}")
    print(f"  by source:   {report['by_source']}")
    print(
        f"  latency:     p50={1000.0 * latency['p50']:.2f}ms "
        f"p99={1000.0 * latency['p99']:.2f}ms "
        f"p999={1000.0 * latency['p999']:.2f}ms"
    )
    print(f"  throughput:  {report['throughput_rps']:.1f} req/s")
    print(f"  results fp:  {report['results_fingerprint'][:16]}")
    if args.output:
        from pathlib import Path

        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote machine-readable load report to {path}")
    return 1 if report["failed"] else 0


def _run_churn(args: argparse.Namespace) -> int:
    """Replay a write-heavy mutation stream through a live session."""
    import json

    from .service import ServiceFrontend
    from .workloads import ChurnProfile, run_churn_load

    profile = ChurnProfile(
        scenario=args.scenario,
        scale=args.scale,
        num_mutations=args.mutations,
        repair_every=args.repair_every,
        algorithm=args.algorithm,
        budget_seconds=args.budget,
        seed=args.seed,
    )
    frontend = (
        None
        if args.no_cache
        else ServiceFrontend(
            args.cache_dir, default_budget_seconds=args.budget, seed=args.seed
        )
    )
    payload = run_churn_load(profile, frontend=frontend)
    print(
        f"churn load — scenario={profile.scenario} scale={profile.scale} "
        f"mutations={profile.num_mutations} algorithm={profile.algorithm}"
    )
    print(
        f"  rankings:        {payload['initial_rankings']} -> "
        f"{payload['final_rankings']} (n={payload['num_elements']})"
    )
    print(f"  delta mean/max:  {1e6 * payload['delta_mean_seconds']:.1f}us / "
          f"{1e6 * payload['delta_max_seconds']:.1f}us per write")
    print(
        f"  repairs:         {payload['repairs']} "
        f"({payload['warm_repairs']} warm-started), "
        f"mean {1000.0 * payload['repair_mean_seconds']:.2f}ms"
    )
    print(f"  score improved:  {payload['score_delta_total']} over the stream "
          f"(final score {payload['final_score']})")
    print(f"  invalidated:     {payload['invalidated']} cached responses")
    print(f"  weights == rebuild: {payload['weights_match_rebuild']}")
    if args.output:
        from pathlib import Path

        path = Path(args.output)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote machine-readable churn report to {path}")
    return 0


def _run_recovery_churn(args: argparse.Namespace) -> int:
    """SIGKILL a journaled churn worker mid-stream; verify replay loses nothing."""
    import json
    import tempfile
    from pathlib import Path

    from .workloads import KillRestartProfile, run_kill_restart_churn

    profile = KillRestartProfile(
        scenario=args.scenario,
        scale=args.scale,
        num_mutations=args.mutations,
        kill_points=tuple(args.kill_at),
        repair_every=args.repair_every,
        fsync=args.fsync,
        algorithm=args.algorithm,
        budget_seconds=args.budget,
        seed=args.seed,
    )
    if args.journal_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-recovery-") as scratch:
            payload = run_kill_restart_churn(
                profile, journal_dir=Path(scratch) / "wal"
            )
    else:
        payload = run_kill_restart_churn(profile, journal_dir=args.journal_dir)
    print(
        f"kill-restart churn — scenario={profile.scenario} "
        f"scale={profile.scale} mutations={profile.num_mutations} "
        f"kills at {list(profile.kill_points)} fsync={profile.fsync}"
    )
    for index, entry in enumerate(payload["rounds"]):
        fate = "SIGKILL" if entry["killed"] else "completed"
        print(
            f"  round {index}: resumed at {entry['resumed_at']}, "
            f"acked {entry['acked']}, recovered generation "
            f"{entry['recovered_generation']}, "
            f"torn records truncated {entry['truncated_records']} ({fate})"
        )
    print(f"  zero lost acks:     {payload['zero_lost_acks']}")
    print(f"  weights == rebuild: {payload['weights_match_rebuild']}")
    print(f"  fingerprint match:  {payload['fingerprint_match']}")
    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote machine-readable recovery report to {path}")
    ok = (
        payload["zero_lost_acks"]
        and payload["weights_match_rebuild"]
        and payload["fingerprint_match"]
        and payload["completed"]
    )
    return 0 if ok else 1


def _run_telemetry(args: argparse.Namespace) -> int:
    """Summarize or convert a saved telemetry bundle."""
    from .telemetry.export import (
        load_bundle,
        summarize_bundle,
        to_chrome_trace,
        to_jsonl,
        to_prometheus,
    )

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, ValueError) as error:
        print(f"cannot load telemetry bundle: {error}", file=sys.stderr)
        return 1

    if args.telemetry_command == "export":
        import json

        if args.format == "chrome":
            text = json.dumps(to_chrome_trace(bundle)) + "\n"
        elif args.format == "jsonl":
            text = to_jsonl(bundle)
        else:
            text = to_prometheus(bundle)
        if args.output:
            from pathlib import Path

            path = Path(args.output)
            path.write_text(text, encoding="utf-8")
            print(f"wrote {args.format} export to {path}")
        else:
            sys.stdout.write(text)
        return 0

    summary = summarize_bundle(bundle)
    if args.telemetry_command == "top":
        rows = summary["spans_by_name"][: args.limit]
        print(f"top spans by total time (trace {summary['trace_id']}):")
        for row in rows:
            print(
                f"  {row['name']:<24} count={row['count']:<6} "
                f"total={row['total']:.4f}s mean={row['mean']:.4f}s "
                f"max={row['max']:.4f}s"
            )
        if not rows:
            print("  (no spans recorded)")
        return 0

    # summary
    print(f"trace:               {summary['trace_id']}")
    print(f"spans:               {summary['num_spans']}")
    print(f"metric series:       {summary['num_metrics']}")
    print(f"convergence streams: {summary['num_convergence_streams']}")
    if summary["spans_by_name"]:
        print("spans by name:")
        for row in summary["spans_by_name"]:
            print(
                f"  {row['name']:<24} count={row['count']:<6} "
                f"total={row['total']:.4f}s mean={row['mean']:.4f}s"
            )
    if summary["convergence"]:
        print("convergence:")
        for stream in summary["convergence"]:
            label = stream["algorithm"]
            if stream["dataset"]:
                label += f" @ {stream['dataset']}"
            print(
                f"  {label:<32} events={stream['events']:<6} "
                f"final_score={stream['final_score']}"
            )
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """Inspect or invalidate the persistent result cache."""
    from pathlib import Path

    from .engine import ResultCache

    if not Path(args.cache_dir).is_dir():
        print(f"cache directory {args.cache_dir!r} does not exist")
        return 1
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"directory: {stats.directory}")
        print(f"entries: {stats.entries}")
        print(f"size_bytes: {stats.size_bytes}")
        return 0
    removed = cache.invalidate(algorithm=args.algorithm)
    scope = f"algorithm {args.algorithm!r}" if args.algorithm else "all entries"
    print(f"removed {removed} cache record(s) ({scope})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
