"""Disk-backed, content-addressed cache of (algorithm, dataset) results.

Every run executed by the engine is persisted as one small JSON record
under ``<cache_dir>/<key[:2]>/<key>.json``, where ``key`` is the content
address computed by :mod:`repro.engine.fingerprint` from the dataset
fingerprint, the algorithm name, the parameter hash, the time budget and
the library version.  Re-running an experiment therefore re-executes
nothing: every (algorithm, dataset) pair resolves to a cache hit, and the
engine rebuilds the report from the stored scores.

The cache is deliberately dumb — no locking, no eviction.  Records are
written atomically (write-to-temp + rename) so concurrent workers can share
a cache directory; the worst case of a race is the same record being
written twice with identical content.

It is self-healing: a lookup that finds an unparseable or structurally
invalid record **quarantines** the file (renamed to ``*.corrupt-*``, which
no record glob matches) instead of silently re-parsing the same broken
JSON on every lookup, ticks the ``cache.corrupt`` telemetry counter, and
reports a miss so the engine recomputes and re-stores a good record.  The
``"cache.store"`` fault-injection site (:mod:`repro.testing.faults`) can
garble a just-written record deterministically to exercise exactly that
path.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..telemetry import runtime as _telemetry
from ..testing import faults as _faults

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the cache content plus this session's hit/miss counters.

    Attributes
    ----------
    directory:
        Filesystem location of the cache.
    entries:
        Number of records currently on disk.
    size_bytes:
        Total size of the records on disk.
    hits, misses:
        Lookup counters of this session (not persisted).
    corrupt:
        Corrupt records quarantined by lookups this session.
    """

    directory: str
    entries: int
    size_bytes: int
    hits: int
    misses: int
    corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> dict[str, object]:
        return {
            "directory": self.directory,
            "entries": self.entries,
            "size_bytes": self.size_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "corrupt": self.corrupt,
        }


class ResultCache:
    """Persistent result store addressed by run content keys.

    Parameters
    ----------
    directory:
        Cache directory; created (with parents) when missing.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._hits = 0
        self._misses = 0
        self._corrupt = 0

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> dict[str, Any] | None:
        """Return the stored record for ``key``, or ``None`` on a miss.

        A present-but-corrupt record (unparseable JSON, or not a JSON
        object) is quarantined on the spot — renamed to a ``*.corrupt-*``
        sibling that no record glob matches — so the next lookup is a
        clean miss and the engine recomputes, instead of re-parsing the
        same broken bytes forever.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
            if not isinstance(record, dict):
                raise json.JSONDecodeError("record is not an object", "", 0)
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._quarantine(path)
            self._misses += 1
            return None
        self._hits += 1
        return record

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt record file out of the cache's namespace."""
        self._corrupt += 1
        if _telemetry.is_enabled():
            _telemetry.count("cache.corrupt", file=path.name)
        target = path.with_name(
            f"{path.name}.corrupt-{os.getpid()}-{self._corrupt}"
        )
        try:
            os.replace(path, target)
        except OSError:
            # Lost a quarantine race with another process, or the file
            # vanished — either way the bad bytes are gone from this path.
            pass

    def store(self, key: str, record: dict[str, Any]) -> None:
        """Persist ``record`` under ``key`` (atomic write)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(record)
        payload.setdefault("key", key)
        payload.setdefault("created_at", time.time())
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # Fault-injection site "cache.store": a ``corrupt`` rule garbles the
        # just-written record, simulating disk corruption deterministically.
        rule = _faults.maybe_decide("cache.store", key)
        if rule is not None and rule.kind == "corrupt":
            path.write_text("{corrupted-record", encoding="utf-8")

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    # ------------------------------------------------------------------ #
    # Introspection / invalidation
    # ------------------------------------------------------------------ #
    def _record_paths(self) -> Iterator[Path]:
        if not self.directory.exists():
            return
        for path in sorted(self.directory.glob("*/*.json")):
            if not path.name.startswith("."):
                yield path

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Yield every stored record (skipping unreadable files)."""
        for path in self._record_paths():
            try:
                with path.open("r", encoding="utf-8") as handle:
                    yield json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue

    def invalidate(
        self,
        *,
        algorithm: str | None = None,
        dataset_fingerprint: str | None = None,
    ) -> int:
        """Remove the records matching the given criteria; return the count.

        With no criterion this clears the whole cache (same as
        :meth:`clear`).
        """
        if algorithm is None and dataset_fingerprint is None:
            return self.clear()
        removed = 0
        for path in list(self._record_paths()):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if algorithm is not None and record.get("algorithm") != algorithm:
                continue
            if (
                dataset_fingerprint is not None
                and record.get("dataset_fingerprint") != dataset_fingerprint
            ):
                continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every record; return the number removed."""
        removed = 0
        for path in list(self._record_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> CacheStats:
        """Entries / size on disk plus the session's hit and miss counters."""
        entries = 0
        size = 0
        for path in self._record_paths():
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                continue
        return CacheStats(
            directory=str(self.directory),
            entries=entries,
            size_bytes=size,
            hits=self._hits,
            misses=self._misses,
            corrupt=self._corrupt,
        )

    def __repr__(self) -> str:
        return f"ResultCache(directory={str(self.directory)!r})"
