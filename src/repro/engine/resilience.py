"""Fault-tolerant fan-out: retries, crash recovery, deadlines, quarantine.

Historically the engine fanned specs out with a bare ``executor.map``: one
worker crash (OOM kill, segfault) raised
:class:`~concurrent.futures.process.BrokenProcessPool` and aborted the
whole batch, and a hung run blocked its worker forever because the time
budget is only checked a-posteriori.  :func:`resilient_map` replaces that
with completion-order futures plus a :class:`RetryPolicy`:

* **error taxonomy** — :func:`classify_exception` sorts failures into
  *crash* (a worker died: a real pool break, or the injected
  :class:`~repro.testing.faults.WorkerCrashError` stand-in), *transient*
  (flaky infrastructure worth retrying) and *permanent* (a bug; no retry);
* **retries** — crash and transient failures are re-attempted up to
  ``max_attempts`` with exponential backoff and *deterministic* jitter
  (hashed from the spec key, so every backend waits the same schedule);
  specs that exhaust their attempts are **quarantined**: the batch
  completes and the spec is reported as a structured
  :class:`~repro.engine.execution.SpecResult` error record;
* **crash isolation** — a broken process pool is rebuilt and only the
  unfinished specs re-run; because a pool break cannot name its killer,
  the suspects re-run one at a time so further kills are attributed
  precisely, and a spec that crashes ``poison_threshold`` consecutive
  times is marked **poison** (structured error record) instead of taking
  the pool down forever;
* **deadlines** — every submitted future gets a hard deadline derived
  from the spec's time limit (``deadline_factor`` × limit + grace); an
  expired future is abandoned and recorded exactly like an over-budget
  run, so serial (a-posteriori budget) and pooled (hard deadline)
  backends produce identical reports.

Retry, crash, rebuild, quarantine, poison and deadline events tick the
``engine.retry`` / ``engine.worker_crash`` / ``engine.pool_rebuild`` /
``engine.quarantine`` / ``engine.poison`` / ``engine.deadline`` telemetry
counters and are summarized in the returned :class:`FanoutStats`.

Determinism contract: with a deterministic fault plan
(:mod:`repro.testing.faults`), serial, thread and process backends walk
identical (attempt, failure-class) sequences per spec and therefore
produce byte-identical reports — the chaos suite asserts exactly that.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from dataclasses import dataclass, field, replace
from typing import Any

from ..core.exceptions import ReproError
from ..telemetry import runtime as _telemetry
from ..telemetry.propagation import ShippedResult, TracedCall
from ..testing.faults import TransientRunError, WorkerCrashError
from .execution import RunSpec, SpecResult

__all__ = [
    "CLASS_CRASH",
    "CLASS_TRANSIENT",
    "CLASS_PERMANENT",
    "classify_exception",
    "RetryPolicy",
    "FanoutStats",
    "resilient_map",
    "WorkerCrashError",
    "TransientRunError",
]

#: Failure classes of the retry taxonomy.
CLASS_CRASH = "crash"
CLASS_TRANSIENT = "transient"
CLASS_PERMANENT = "permanent"

# Exception types retried as transient infrastructure failures.  OSError is
# deliberately absent: it covers too much (missing datasets, bad file
# descriptors) to be retryable wholesale.
_TRANSIENT_TYPES = (
    TransientRunError,
    TimeoutError,
    ConnectionError,
    InterruptedError,
)


def classify_exception(error: BaseException) -> str:
    """Sort ``error`` into the crash / transient / permanent taxonomy.

    Parameters
    ----------
    error:
        The exception a run attempt raised.
    """
    if isinstance(error, (BrokenExecutor, WorkerCrashError)):
        return CLASS_CRASH
    if isinstance(error, _TRANSIENT_TYPES):
        return CLASS_TRANSIENT
    return CLASS_PERMANENT


@dataclass(frozen=True)
class RetryPolicy:
    """How failed run attempts are retried, quarantined and deadlined.

    Attributes
    ----------
    max_attempts:
        Total attempts per spec (first try included); a crash/transient
        failure on the last attempt quarantines the spec.
    backoff_base_seconds:
        Delay before the first retry; doubles (``backoff_factor``) per
        further retry up to ``backoff_max_seconds``.
    backoff_factor:
        Multiplier applied to the delay per additional retry.
    backoff_max_seconds:
        Upper bound on the computed delay (before jitter).
    jitter:
        Fraction of the delay spread deterministically around it (a
        ``jitter`` of 0.5 scales the delay into [0.5×, 1.5×]); hashed
        from ``jitter_seed`` and the spec key, never from a live RNG, so
        every backend waits the same schedule.
    jitter_seed:
        Seed of the deterministic jitter hash.
    poison_threshold:
        Consecutive worker crashes after which a spec is marked poison
        (structured error record) instead of being retried again.
    deadline_factor, deadline_grace_seconds:
        Hard per-future deadline for pooled backends:
        ``time_limit * deadline_factor + deadline_grace_seconds``.  An
        expired future is abandoned and recorded as over-budget.
    default_deadline_seconds:
        Hard deadline applied when a spec has no time limit
        (``None`` = wait forever, the historical behaviour).
    quarantine_unexpected:
        Turn unexpected (permanent, non-library) exceptions into
        quarantine records instead of aborting the batch.  Library
        :class:`~repro.core.exceptions.ReproError` failures always keep
        their historical semantics (handled inside ``execute_spec`` /
        propagated for the exact reference).
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 2.0
    jitter: float = 0.5
    jitter_seed: int = 0
    poison_threshold: int = 2
    deadline_factor: float = 4.0
    deadline_grace_seconds: float = 1.0
    default_deadline_seconds: float | None = None
    quarantine_unexpected: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------ #
    def delay_for(self, key: str, retry: int) -> float:
        """Backoff delay before the ``retry``-th retry of the spec ``key``.

        Exponential in the retry ordinal, capped, and spread by the
        deterministic jitter hash — a pure function, identical in every
        process.

        Parameters
        ----------
        key:
            Spec identity feeding the jitter hash.
        retry:
            1-based retry ordinal (1 = first retry).
        """
        if self.backoff_base_seconds <= 0:
            return 0.0
        delay = self.backoff_base_seconds * self.backoff_factor ** max(0, retry - 1)
        delay = min(delay, self.backoff_max_seconds)
        if self.jitter:
            digest = hashlib.sha256(
                f"{self.jitter_seed}|{key}|{retry}".encode("utf-8")
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay

    def deadline_at(self, spec: RunSpec, now: float) -> float | None:
        """Absolute hard deadline for ``spec`` submitted at ``now``.

        Parameters
        ----------
        spec:
            The spec about to be submitted.
        now:
            The submission timestamp (``time.perf_counter`` domain).
        """
        if spec.time_limit is not None:
            return (
                now
                + spec.time_limit * self.deadline_factor
                + self.deadline_grace_seconds
            )
        if self.default_deadline_seconds is not None:
            return now + self.default_deadline_seconds
        return None


@dataclass
class FanoutStats:
    """Resilience accounting of one fan-out.

    Attributes
    ----------
    retries:
        Attempts re-submitted after a crash/transient failure.
    worker_crashes:
        Attributed worker crashes (real kills and simulated ones).
    pool_rebuilds:
        Times a broken process pool was rebuilt.
    deadline_hits:
        Futures abandoned at their hard deadline.
    quarantined:
        Specs that exhausted their attempts (structured error records).
    poisoned:
        Specs marked poison after consecutive worker crashes.
    """

    retries: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    deadline_hits: int = 0
    quarantined: int = 0
    poisoned: int = 0

    def describe(self) -> dict[str, int]:
        """Flat dictionary form (reports, CLI summaries)."""
        return {
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "deadline_hits": self.deadline_hits,
            "quarantined": self.quarantined,
            "poisoned": self.poisoned,
        }

    def merge(self, other: "FanoutStats") -> None:
        """Fold another fan-out's counters into this one.

        Parameters
        ----------
        other:
            The stats to accumulate.
        """
        self.retries += other.retries
        self.worker_crashes += other.worker_crashes
        self.pool_rebuilds += other.pool_rebuilds
        self.deadline_hits += other.deadline_hits
        self.quarantined += other.quarantined
        self.poisoned += other.poisoned


class _SpecState:
    """Mutable retry bookkeeping of one spec during a fan-out."""

    __slots__ = ("spec", "key", "attempts", "crashes", "deadline", "started")

    def __init__(self, spec: RunSpec):
        self.spec = spec
        self.key = spec.fault_key
        self.attempts = 0  # completed (failed) attempts so far
        self.crashes = 0  # consecutive crash-class failures
        self.deadline: float | None = None
        self.started = time.perf_counter()

    def next_spec(self) -> RunSpec:
        """The spec for the upcoming attempt (attempt ordinal threaded in)."""
        if self.attempts == 0:
            return self.spec
        return replace(self.spec, attempt=self.attempts)


def _poison_result(state: _SpecState) -> SpecResult:
    return SpecResult(
        index=state.spec.index,
        score=None,
        elapsed_seconds=time.perf_counter() - state.started,
        within_budget=True,
        error=f"poisoned after {state.crashes} consecutive worker crashes",
        attempts=state.attempts,
        fault=CLASS_CRASH,
    )


def _quarantine_result(state: _SpecState, failure_class: str, message: str) -> SpecResult:
    return SpecResult(
        index=state.spec.index,
        score=None,
        elapsed_seconds=time.perf_counter() - state.started,
        within_budget=True,
        error=f"quarantined after {state.attempts} attempt(s): {message}",
        attempts=state.attempts,
        fault=failure_class,
    )


def _deadline_result(state: _SpecState, deadline_seconds: float) -> SpecResult:
    # Shaped exactly like an a-posteriori over-budget verdict (score and
    # error both empty, within_budget False) so hard-deadlined pooled runs
    # and serially-overrun runs fingerprint identically.
    return SpecResult(
        index=state.spec.index,
        score=None,
        elapsed_seconds=deadline_seconds,
        within_budget=False,
        attempts=state.attempts + 1,
        fault="deadline",
    )


def _register_failure(
    state: _SpecState,
    error: BaseException,
    policy: RetryPolicy,
    stats: FanoutStats,
) -> SpecResult | None:
    """Account one failed attempt; terminal record, or ``None`` to retry.

    Raises the error through when it must abort the batch (library errors
    of the exact reference, or unexpected errors with
    ``quarantine_unexpected`` disabled).
    """
    failure_class = classify_exception(error)
    state.attempts += 1
    algorithm = state.spec.algorithm_name
    if failure_class == CLASS_CRASH:
        state.crashes += 1
        stats.worker_crashes += 1
        if _telemetry.is_enabled():
            _telemetry.count("engine.worker_crash", algorithm=algorithm)
    else:
        state.crashes = 0

    if failure_class == CLASS_PERMANENT:
        if isinstance(error, ReproError) or not policy.quarantine_unexpected:
            raise error
        stats.quarantined += 1
        if _telemetry.is_enabled():
            _telemetry.count("engine.quarantine", algorithm=algorithm)
        return _quarantine_result(state, failure_class, str(error))

    if failure_class == CLASS_CRASH and state.crashes >= policy.poison_threshold:
        stats.poisoned += 1
        if _telemetry.is_enabled():
            _telemetry.count("engine.poison", algorithm=algorithm)
        return _poison_result(state)

    if state.attempts >= policy.max_attempts:
        message = "worker crash" if failure_class == CLASS_CRASH else str(error)
        stats.quarantined += 1
        if _telemetry.is_enabled():
            _telemetry.count("engine.quarantine", algorithm=algorithm)
        return _quarantine_result(state, failure_class, message)

    stats.retries += 1
    if _telemetry.is_enabled():
        _telemetry.count("engine.retry", algorithm=algorithm, cause=failure_class)
    delay = policy.delay_for(state.key, state.attempts)
    if delay > 0:
        time.sleep(delay)
    return None


def _finish(outcome: SpecResult, state: _SpecState) -> SpecResult:
    """Attach the attempt count to a successful outcome."""
    if state.attempts == 0:
        return outcome
    return replace(outcome, attempts=state.attempts + 1)


# --------------------------------------------------------------------------- #
# Serial execution (serial backend, single-worker pools, single-item batches)
# --------------------------------------------------------------------------- #
def _map_serial(
    call: Callable[[RunSpec], Any],
    specs: Sequence[RunSpec],
    policy: RetryPolicy,
    stats: FanoutStats,
    merge: Callable[[dict], None] | None,
) -> list[SpecResult]:
    results: list[SpecResult] = []
    for spec in specs:
        state = _SpecState(spec)
        while True:
            try:
                outcome = _unwrap(call(state.next_spec()), merge)
            except ReproError:
                raise
            except Exception as error:  # noqa: BLE001 — taxonomy decides below
                record = _register_failure(state, error, policy, stats)
                if record is None:
                    continue
                results.append(record)
                break
            else:
                results.append(_finish(outcome, state))
                break
    return results


# --------------------------------------------------------------------------- #
# Pooled execution (thread / process pools): futures in completion order
# --------------------------------------------------------------------------- #
def _map_pooled(
    backend,
    call: Callable[[RunSpec], Any],
    specs: Sequence[RunSpec],
    policy: RetryPolicy,
    stats: FanoutStats,
    merge: Callable[[dict], None] | None,
) -> list[SpecResult]:
    states = [_SpecState(spec) for spec in specs]
    results: dict[int, SpecResult] = {}
    pending: deque[_SpecState] = deque(states)
    # After an unattributable pool break every unfinished spec is a suspect;
    # suspects re-run one at a time so a further kill names its spec exactly.
    recovery: deque[_SpecState] = deque()
    inflight: dict[Future, _SpecState] = {}

    def rebuild_pool() -> None:
        stats.pool_rebuilds += 1
        if _telemetry.is_enabled():
            _telemetry.count("engine.pool_rebuild", backend=backend.name)
        backend.rebuild()

    def submit(state: _SpecState) -> None:
        while True:
            try:
                future = backend.executor().submit(call, state.next_spec())
            except BrokenExecutor:
                rebuild_pool()
                continue
            state.deadline = policy.deadline_at(state.spec, time.perf_counter())
            inflight[future] = state
            return

    def on_break(first: _SpecState) -> None:
        """A pool break surfaced on ``first``'s future."""
        suspects = [first] + [
            other for other in inflight.values() if other.spec.index not in results
        ]
        inflight.clear()
        rebuild_pool()
        if len(suspects) == 1:
            # Only one task could have been running: the kill is attributed.
            record = _register_failure(first, BrokenExecutor("worker crash"), policy, stats)
            if record is not None:
                results[first.spec.index] = record
            else:
                recovery.appendleft(first)
            return
        # Ambiguous: re-run every suspect serially, without charging anyone.
        suspects.sort(key=lambda state: state.spec.index)
        recovery.extend(suspects)

    while pending or recovery or inflight:
        # Submit: recovery specs one at a time (attribution), the rest in bulk.
        if recovery and not inflight:
            submit(recovery.popleft())
        elif not recovery:
            while pending:
                submit(pending.popleft())
        if not inflight:
            continue

        timeout = None
        now = time.perf_counter()
        deadlines = [
            state.deadline for state in inflight.values() if state.deadline is not None
        ]
        if deadlines:
            timeout = max(0.0, min(deadlines) - now)
        done, _ = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)

        if not done:
            # Deadline sweep: abandon expired futures (a cancelled-or-running
            # task's eventual result is never read) and record them exactly
            # like over-budget runs.
            now = time.perf_counter()
            for future, state in list(inflight.items()):
                if state.deadline is not None and now >= state.deadline:
                    future.cancel()
                    del inflight[future]
                    stats.deadline_hits += 1
                    if _telemetry.is_enabled():
                        _telemetry.count(
                            "engine.deadline", algorithm=state.spec.algorithm_name
                        )
                    results[state.spec.index] = _deadline_result(
                        state, now - state.started
                    )
            continue

        for future in done:
            state = inflight.pop(future, None)
            if state is None or state.spec.index in results:
                continue
            try:
                outcome = future.result()
            except BrokenExecutor:
                on_break(state)
                # Remaining futures of the broken pool surface the same
                # exception; they were already drained into recovery.
                break
            except ReproError:
                for other in inflight:
                    other.cancel()
                raise
            except Exception as error:  # noqa: BLE001 — taxonomy decides below
                record = _register_failure(state, error, policy, stats)
                if record is not None:
                    results[state.spec.index] = record
                elif classify_exception(error) == CLASS_CRASH:
                    # Attributed simulated crash (thread pools): serialize
                    # further retries like the process recovery path.
                    recovery.append(state)
                else:
                    pending.append(state)
            else:
                results[state.spec.index] = _finish(_unwrap(outcome, merge), state)

    return [results[spec.index] for spec in specs]


def _unwrap(outcome: Any, merge: Callable[[dict], None] | None) -> Any:
    """Fold a worker's shipped telemetry bundle back in, keeping the result."""
    if isinstance(outcome, ShippedResult):
        if merge is not None:
            merge(outcome.bundle)
        return outcome.result
    return outcome


def _supports_pooling(backend, specs: Sequence[RunSpec]) -> bool:
    """Whether the backend fans these specs out on a real pool.

    Mirrors ``_PooledBackend.map``'s inline fallback: single-worker pools
    and single-spec batches run in the calling thread.
    """
    return (
        callable(getattr(backend, "executor", None))
        and callable(getattr(backend, "rebuild", None))
        and getattr(backend, "max_workers", 1) > 1
        and len(specs) > 1
    )


def resilient_map(
    backend,
    function: Callable[[RunSpec], SpecResult],
    specs: Sequence[RunSpec],
    *,
    policy: RetryPolicy | None = None,
    span_name: str = "engine.fanout",
) -> tuple[list[SpecResult], FanoutStats]:
    """Fan ``function`` over ``specs`` with retries, crash recovery, deadlines.

    The fault-tolerant replacement for ``backend.map(execute_spec, ...)``:
    results come back in spec order whatever the completion order, one
    crashing or flaky spec is retried/quarantined instead of aborting the
    batch, a broken process pool is rebuilt and only unfinished specs
    re-run, and every failure becomes a structured
    :class:`~repro.engine.execution.SpecResult` error record.  Telemetry
    propagation matches :func:`~repro.telemetry.propagation.traced_map`:
    the fan-out runs under a ``span_name`` span and worker
    spans/metrics/convergence re-attach across thread and process
    boundaries.

    Parameters
    ----------
    backend:
        An :class:`~repro.engine.backends.ExecutionBackend`; pooled
        backends must expose ``executor()`` / ``rebuild()``.
    function:
        The picklable work function (the engine passes ``execute_spec``).
    specs:
        The ordered :class:`~repro.engine.execution.RunSpec` work items.
    policy:
        The :class:`RetryPolicy`; defaults to ``RetryPolicy()``.
    span_name:
        Name of the telemetry span wrapping the fan-out.
    """
    policy = policy or RetryPolicy()
    stats = FanoutStats()
    specs = list(specs)
    if not specs:
        return [], stats

    def dispatch(call, merge) -> list[SpecResult]:
        if _supports_pooling(backend, specs):
            return _map_pooled(backend, call, specs, policy, stats, merge)
        return _map_serial(call, specs, policy, stats, merge)

    active = _telemetry.get_active()
    if active is None:
        return dispatch(function, None), stats
    with active.tracer.span(
        span_name, backend=backend.name, items=len(specs)
    ) as handle:
        call = TracedCall(function, active.tracer.trace_id, handle.span_id)

        def merge(bundle: dict) -> None:
            active.merge_payload(bundle, parent_id=handle.span_id)

        results = dispatch(call, merge)
    return results, stats
