"""The unit of work executed by a backend: one (algorithm, dataset) run.

A :class:`RunSpec` is a self-contained, picklable description of one run —
either a suite algorithm run (``kind="algorithm"``) or the exact reference
computing the per-dataset optimal score (``kind="optimal"``).  The
module-level :func:`execute_spec` function is what backends actually map
over the specs; it must stay a top-level function so that
:class:`~repro.engine.backends.ProcessPoolBackend` can pickle it.

The execution semantics mirror the historical serial runner exactly: the
time budget is enforced *a posteriori* (an over-budget run is recorded with
no score), and library errors (size guards, not-applicable algorithms)
become failed records instead of aborting the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.base import RankAggregator
from ..core.exceptions import ReproError
from ..datasets.dataset import Dataset
from ..evaluation.timing import run_with_budget

__all__ = ["RunSpec", "SpecResult", "execute_spec"]

KIND_ALGORITHM = "algorithm"
KIND_OPTIMAL = "optimal"


@dataclass(frozen=True)
class RunSpec:
    """One scheduled (algorithm, dataset) execution.

    Attributes
    ----------
    index:
        Position of the spec in its batch; the engine reassembles results
        in spec order so reports are independent of completion order.
    kind:
        ``"algorithm"`` for a suite run, ``"optimal"`` for the exact
        reference run whose score becomes the gap denominator.
    algorithm_name:
        Name under which the run is reported (the suite key, which may
        differ from ``algorithm.name`` for configured variants).
    algorithm:
        The algorithm instance to execute.  Each spec carries its own copy
        so concurrent backends never share mutable algorithm state.
    dataset:
        The complete dataset to aggregate.
    time_limit:
        Per-run wall-clock cap in seconds (``None`` = unlimited).
    """

    index: int
    kind: str
    algorithm_name: str
    algorithm: RankAggregator
    dataset: Dataset
    time_limit: float | None = None


@dataclass(frozen=True)
class SpecResult:
    """Outcome of :func:`execute_spec` for one spec."""

    index: int
    score: int | None
    elapsed_seconds: float
    within_budget: bool
    error: str | None = None


def execute_spec(spec: RunSpec) -> SpecResult:
    """Run one spec and return its result record.

    For suite runs (``kind="algorithm"``) library-level failures never
    raise: a :class:`ReproError` (size guard, non-applicable algorithm,
    unavailable solver) is recorded on the result so one failing run cannot
    abort a parallel batch.  For the exact reference (``kind="optimal"``)
    the error propagates, exactly like the historical serial runner: a gap
    table silently degrading to m-gaps because the reference solver is
    broken would look valid while measuring something else.
    """
    try:
        result, elapsed, within = run_with_budget(
            lambda: spec.algorithm.aggregate(spec.dataset), spec.time_limit
        )
    except ReproError as error:
        if spec.kind == KIND_OPTIMAL:
            raise
        return SpecResult(
            index=spec.index,
            score=None,
            elapsed_seconds=0.0,
            within_budget=True,
            error=str(error),
        )
    score = int(result.score) if (within and result is not None) else None
    return SpecResult(
        index=spec.index,
        score=score,
        elapsed_seconds=elapsed,
        within_budget=within,
    )
