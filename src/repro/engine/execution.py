"""The unit of work executed by a backend: one (algorithm, dataset) run.

A :class:`RunSpec` is a self-contained, picklable description of one run —
either a suite algorithm run (``kind="algorithm"``) or the exact reference
computing the per-dataset optimal score (``kind="optimal"``).  The
module-level :func:`execute_spec` function is what backends actually map
over the specs; it must stay a top-level function so that
:class:`~repro.engine.backends.ProcessPoolBackend` can pickle it.

The execution semantics mirror the historical serial runner exactly: the
time budget is enforced *a posteriori* (an over-budget run is recorded with
no score), and library errors (size guards, not-applicable algorithms)
become failed records instead of aborting the batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..algorithms.anytime import run_anytime, supports_anytime
from ..algorithms.base import RankAggregator
from ..core.exceptions import ReproError
from ..datasets.dataset import Dataset
from ..evaluation.timing import run_with_budget
from ..telemetry import runtime as _telemetry
from ..testing import faults as _faults

__all__ = ["RunSpec", "SpecResult", "execute_spec"]

KIND_ALGORITHM = "algorithm"
KIND_OPTIMAL = "optimal"
KIND_ANYTIME = "anytime"


@dataclass(frozen=True)
class RunSpec:
    """One scheduled (algorithm, dataset) execution.

    Attributes
    ----------
    index:
        Position of the spec in its batch; the engine reassembles results
        in spec order so reports are independent of completion order.
    kind:
        ``"algorithm"`` for a suite run, ``"optimal"`` for the exact
        reference run whose score becomes the gap denominator,
        ``"anytime"`` for a deadline-bounded run where the time budget is
        propagated *into* the algorithm (best-so-far is returned instead
        of discarding an over-budget result).
    algorithm_name:
        Name under which the run is reported (the suite key, which may
        differ from ``algorithm.name`` for configured variants).
    algorithm:
        The algorithm instance to execute.  Each spec carries its own copy
        so concurrent backends never share mutable algorithm state.
    dataset:
        The complete dataset to aggregate.
    time_limit:
        Per-run wall-clock cap in seconds (``None`` = unlimited).
    attempt:
        Retry ordinal of this execution (0 = first try).  The resilience
        layer threads it through re-submissions so deterministic fault
        injection (:mod:`repro.testing.faults`) can make a fault fire on
        the first attempt and spare the retry, identically on every
        backend.
    """

    index: int
    kind: str
    algorithm_name: str
    algorithm: RankAggregator
    dataset: Dataset
    time_limit: float | None = None
    attempt: int = 0

    @property
    def fault_key(self) -> str:
        """Stable identity used by fault rules and retry jitter hashes."""
        return f"{self.kind}:{self.algorithm_name}:{self.dataset.name}"


@dataclass(frozen=True)
class SpecResult:
    """Outcome of :func:`execute_spec` for one spec.

    Attributes
    ----------
    index:
        The spec's position in its batch (results are reassembled by it).
    score:
        Generalized Kemeny score, or ``None`` for failed / over-budget runs.
    elapsed_seconds:
        Wall-clock time of the run.
    within_budget:
        Whether the run finished inside its time limit.
    error:
        Library error message for failed runs, ``None`` otherwise.  The
        resilience layer also records quarantine / poison verdicts here
        (canonical, backend-independent messages).
    attempts:
        How many execution attempts the record consumed (1 = first try
        succeeded; retries by the resilience layer increment it).
    fault:
        ``None`` for ordinary outcomes; the failure class (``"crash"``,
        ``"transient"``, ``"permanent"``, ``"deadline"``) when the record
        was produced by the resilience layer instead of a completed run.
        Faulted records are machine-/schedule-dependent and are never
        written to the result cache.
    """

    index: int
    score: int | None
    elapsed_seconds: float
    within_budget: bool
    error: str | None = None
    attempts: int = 1
    fault: str | None = None


def execute_spec(spec: RunSpec) -> SpecResult:
    """Run one spec and return its result record.

    For suite runs (``kind="algorithm"``) library-level failures never
    raise: a :class:`ReproError` (size guard, non-applicable algorithm,
    unavailable solver) is recorded on the result so one failing run cannot
    abort a parallel batch.  For the exact reference (``kind="optimal"``)
    the error propagates, exactly like the historical serial runner: a gap
    table silently degrading to m-gaps because the reference solver is
    broken would look valid while measuring something else.

    Anytime runs (``kind="anytime"``) propagate the time budget into the
    algorithm when it supports the anytime protocol: the search is stepped
    against the deadline and the best consensus found so far is recorded
    as an in-budget score.  Algorithms without anytime support fall back
    to the a-posteriori budget of the suite runs.

    Every run consumes the dataset's preparation plan
    (:meth:`~repro.datasets.Dataset.prepared`): within one process the
    plan is built at most once per dataset and shared by every spec over
    it — serial and thread backends hit the instance memo, process-pool
    workers the fingerprint-keyed worker-local cache of
    :mod:`repro.core.prepared` (the plan itself is never pickled).

    The function is the ``"engine.run"`` fault-injection site
    (:mod:`repro.testing.faults`): with an injector active, crash and
    exception rules fire before any work and slow rules stretch the
    budgeted call.  Failed runs record the wall clock actually spent
    before the error (not 0.0), so failure telemetry counts real time.
    """
    with _telemetry.span(
        "engine.run",
        kind=spec.kind,
        algorithm=spec.algorithm_name,
        dataset=spec.dataset.name,
    ):
        # Fault-injection site "engine.run": crash/exception rules fire here
        # (before any work), slow rules stretch the budgeted call below so
        # the serial a-posteriori budget sees the injected delay too.
        fault_rule = _faults.maybe_decide("engine.run", spec.fault_key, spec.attempt)
        if fault_rule is not None and fault_rule.kind in ("crash", "exception"):
            _faults.maybe_fire("engine.run", spec.fault_key, spec.attempt)
        started = time.perf_counter()
        try:
            prepared = spec.dataset.prepared()
            if spec.kind == KIND_ANYTIME and supports_anytime(spec.algorithm):
                if fault_rule is not None and fault_rule.kind == "slow":
                    time.sleep(fault_rule.delay_seconds)
                result = run_anytime(spec.algorithm, spec.dataset, spec.time_limit)
                return SpecResult(
                    index=spec.index,
                    score=int(result.score),
                    elapsed_seconds=result.elapsed_seconds,
                    within_budget=True,
                )

            def _work():
                if fault_rule is not None and fault_rule.kind == "slow":
                    time.sleep(fault_rule.delay_seconds)
                return spec.algorithm.aggregate(spec.dataset, prepared=prepared)

            result, elapsed, within = run_with_budget(_work, spec.time_limit)
        except ReproError as error:
            if spec.kind == KIND_OPTIMAL:
                raise
            return SpecResult(
                index=spec.index,
                score=None,
                elapsed_seconds=time.perf_counter() - started,
                within_budget=True,
                error=str(error),
            )
        score = int(result.score) if (within and result is not None) else None
        return SpecResult(
            index=spec.index,
            score=score,
            elapsed_seconds=elapsed,
            within_budget=within,
        )
