"""The batch execution engine: cache lookup, backend fan-out, report assembly.

:class:`ExecutionEngine` is the single entry point every experiment and the
CLI route through.  Running a :class:`~repro.engine.job.BatchJob`:

1. the job is flattened into its ordered, independent
   :class:`~repro.engine.execution.RunSpec` work items;
2. with a cache attached, each spec's content address is computed and
   looked up — hits are served from disk without executing anything;
3. the remaining specs are fanned out on the configured
   :class:`~repro.engine.backends.ExecutionBackend` and their results are
   written back to the cache;
4. the :class:`~repro.engine.job.EngineReport` is assembled in spec order,
   so the report is identical whatever the backend or the hit pattern —
   only the wall time and per-run timings differ.

The engine also keeps session-level counters (runs executed / served from
cache across every job it ran), which the ``repro-rankagg batch`` command
prints as its final summary.
"""

from __future__ import annotations

import time
from typing import Any

from ..core.exceptions import ReproError
from ..evaluation.runner import AlgorithmRun
from ..telemetry import runtime as _telemetry
from ..telemetry.propagation import traced_map
from .backends import ExecutionBackend, SerialBackend
from .cache import ResultCache
from .execution import KIND_ANYTIME, KIND_OPTIMAL, RunSpec, SpecResult, execute_spec
from .fingerprint import algorithm_parameters, dataset_fingerprint, run_key
from .job import BatchJob, EngineReport
from .resilience import FanoutStats, RetryPolicy, resilient_map

__all__ = ["ExecutionEngine"]


class ExecutionEngine:
    """Run batches of (algorithm, dataset) work on a backend, through a cache.

    Parameters
    ----------
    backend:
        The :class:`~repro.engine.backends.ExecutionBackend` fanning runs
        out (default: serial).
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`.
    retry_policy:
        The :class:`~repro.engine.resilience.RetryPolicy` governing
        retries, crash recovery, quarantine and deadlines of every batch
        this engine runs (default: ``RetryPolicy()``).
    """

    def __init__(
        self,
        backend: ExecutionBackend | None = None,
        cache: ResultCache | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        self.backend = backend or SerialBackend()
        self.cache = cache
        self.retry_policy = retry_policy or RetryPolicy()
        self.total_executed = 0
        self.total_cached = 0
        self.session_fanout = FanoutStats()

    # ------------------------------------------------------------------ #
    # Generic fan-out (used by timing sweeps, which must not be cached)
    # ------------------------------------------------------------------ #
    def map(self, function, items) -> list[Any]:
        """Fan ``function`` out over ``items`` on the backend, bypassing the
        cache (wall-clock measurements are never valid cache content).

        The items still count as executed work in the session summary —
        a ``batch figure2`` run is not "0 runs"."""
        results = traced_map(
            self.backend, function, list(items), span_name="engine.map"
        )
        self.total_executed += len(results)
        return results

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run(self, job: BatchJob) -> EngineReport:
        """Execute a batch job and return its engine report.

        With telemetry enabled the job runs under an ``engine.batch``
        span: the backend fan-out becomes a child ``engine.fanout`` span
        (worker spans re-attach across thread and process backends, see
        :mod:`repro.telemetry.propagation`) and cache outcomes tick the
        ``engine.cache.hit`` / ``engine.cache.miss`` counters.

        Parameters
        ----------
        job:
            The batch job to execute.
        """
        with _telemetry.span("engine.batch", backend=self.backend.name) as batch_span:
            report = self._run(job)
            if _telemetry.is_enabled():
                batch_span.set(
                    runs=len(report.runs),
                    executed=report.executed_runs,
                    cached=report.cached_runs,
                    retried=report.retried_runs,
                    quarantined=report.quarantined_runs,
                    poisoned=report.poisoned_runs,
                )
        return report

    def _run(self, job: BatchJob) -> EngineReport:
        start = time.perf_counter()
        specs = job.specs()
        report = EngineReport(backend=self.backend.name)
        if job.record_features:
            for dataset in job.datasets:
                report.dataset_features[dataset.name] = dataset.describe()

        results: dict[int, SpecResult] = {}
        keys: dict[int, str] = {}
        fingerprints: dict[int, str] = {}
        pending: list[RunSpec] = []
        if self.cache is not None:
            fingerprints = {
                id(dataset): dataset_fingerprint(dataset) for dataset in job.datasets
            }
            for spec in specs:
                # Anytime results depend on how far the search got under the
                # deadline — machine-dependent, so never cached (in either
                # direction).
                if spec.kind == KIND_ANYTIME:
                    pending.append(spec)
                    continue
                key = run_key(
                    dataset_fingerprint=fingerprints[id(spec.dataset)],
                    algorithm_name=spec.algorithm_name,
                    parameters=algorithm_parameters(spec.algorithm),
                    kind=spec.kind,
                    time_limit=spec.time_limit,
                    context=job.cache_context,
                )
                keys[spec.index] = key
                record = self.cache.lookup(key)
                if _telemetry.is_enabled():
                    _telemetry.count(
                        "engine.cache.hit" if record is not None else "engine.cache.miss",
                        algorithm=spec.algorithm_name,
                    )
                if record is not None:
                    results[spec.index] = SpecResult(
                        index=spec.index,
                        score=record.get("score"),
                        elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
                        within_budget=bool(record.get("within_budget", True)),
                        error=record.get("error"),
                    )
                else:
                    pending.append(spec)
        else:
            pending = list(specs)

        self._prewarm_plans(pending)
        if pending:
            outcomes, fanout = resilient_map(
                self.backend,
                execute_spec,
                pending,
                policy=self.retry_policy,
                span_name="engine.fanout",
            )
        else:
            outcomes, fanout = [], FanoutStats()
        report.apply_fanout(fanout)
        self.session_fanout.merge(fanout)
        for spec, outcome in zip(pending, outcomes):
            results[spec.index] = outcome
            # Over-budget verdicts depend on the wall clock of *this* run
            # (machine load, backend contention); caching one would poison
            # every future run with a non-reproducible failure.  Anytime
            # best-so-far scores are wall-clock-dependent the same way.
            # Faulted records (quarantine/poison/deadline) are schedule-
            # dependent too and never become cache content.
            if (
                self.cache is not None
                and outcome.within_budget
                and outcome.fault is None
                and spec.kind != KIND_ANYTIME
            ):
                self.cache.store(
                    keys[spec.index],
                    self._record(spec, outcome, fingerprints[id(spec.dataset)]),
                )

        pending_indices = {spec.index for spec in pending}
        for spec in specs:
            outcome = results[spec.index]
            if spec.kind == KIND_OPTIMAL:
                if outcome.fault is not None:
                    # A gap table silently missing its reference would look
                    # valid while measuring something else — the exact
                    # reference fails loudly, like its historical ReproError
                    # path.
                    raise ReproError(
                        f"exact reference {spec.algorithm_name!r} on "
                        f"{spec.dataset.name!r} failed: {outcome.error}"
                    )
                if outcome.score is not None:
                    report.optimal_scores[spec.dataset.name] = int(outcome.score)
                continue
            report.runs.append(
                AlgorithmRun(
                    algorithm=spec.algorithm_name,
                    dataset=spec.dataset.name,
                    score=None if outcome.score is None else int(outcome.score),
                    elapsed_seconds=outcome.elapsed_seconds,
                    within_budget=outcome.within_budget,
                    error=outcome.error,
                    cached=self.cache is not None and spec.index not in pending_indices,
                )
            )

        report.executed_runs = len(pending)
        report.cached_runs = len(specs) - len(pending)
        report.wall_seconds = time.perf_counter() - start
        self.total_executed += report.executed_runs
        self.total_cached += report.cached_runs
        return report

    def _prewarm_plans(self, pending: list[RunSpec]) -> None:
        """Build one preparation plan per dataset before the fan-out.

        Shared-memory backends (serial / thread) execute the pending specs
        against the very dataset instances held here, so pre-building each
        plan once guarantees every spec reuses it — and keeps concurrent
        threads from racing to build the same plan.  Process pools receive
        pickled copies instead (plans are never pickled); their workers
        re-prepare once per dataset through the worker-local cache, so
        pre-warming in the parent would be pure waste and is skipped.

        Preparation failures (incomplete / empty datasets) are left for
        :func:`~repro.engine.execution.execute_spec` to surface with its
        historical per-kind error handling.
        """
        if self.backend.name == "process":
            return
        seen: set[int] = set()
        for spec in pending:
            if id(spec.dataset) in seen:
                continue
            seen.add(id(spec.dataset))
            try:
                spec.dataset.prepared()
            except ReproError:
                continue

    def _record(
        self, spec: RunSpec, outcome: SpecResult, fingerprint: str
    ) -> dict[str, Any]:
        """Cache record for one executed spec."""
        return {
            "kind": spec.kind,
            "algorithm": spec.algorithm_name,
            "dataset_name": spec.dataset.name,
            "dataset_fingerprint": fingerprint,
            "time_limit": spec.time_limit,
            "score": outcome.score,
            "elapsed_seconds": outcome.elapsed_seconds,
            "within_budget": outcome.within_budget,
            "error": outcome.error,
        }

    def execution_summary(self) -> dict[str, object]:
        """Session-level accounting across every job this engine ran."""
        total = self.total_executed + self.total_cached
        return {
            "backend": self.backend.name,
            "total_runs": total,
            "executed_runs": self.total_executed,
            "cached_runs": self.total_cached,
            "cache_hit_rate": self.total_cached / total if total else 0.0,
            "resilience": self.session_fanout.describe(),
        }

    def __repr__(self) -> str:
        return (
            f"ExecutionEngine(backend={self.backend!r}, "
            f"cache={self.cache!r})"
        )
