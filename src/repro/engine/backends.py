"""Execution backends: how a batch of independent runs is fanned out.

The engine describes *what* to run (a list of picklable work items) and a
backend decides *how*: in the calling thread (:class:`SerialBackend`), on a
thread pool (:class:`ThreadBackend` — effective when the runs release the
GIL or are I/O bound), or on a process pool (:class:`ProcessPoolBackend` —
true CPU parallelism for the Python-heavy local searches).

Every backend implements the same ordered-``map`` contract, so results are
returned in the order of the submitted items regardless of completion
order.  Combined with per-run seeding (randomized algorithms derive a fresh
generator from their seed on every call), this makes the engine's output
independent of the backend: serial, thread and process execution produce
identical reports.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, TypeVar

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "BACKENDS",
    "make_backend",
]

_Item = TypeVar("_Item")


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class ExecutionBackend(ABC):
    """Strategy deciding how a batch of independent work items is executed."""

    name: str = "abstract"

    @abstractmethod
    def map(
        self, function: Callable[[_Item], Any], items: Sequence[_Item]
    ) -> list[Any]:
        """Apply ``function`` to every item; results in submission order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run everything in the calling thread, one item at a time."""

    name = "serial"

    def map(
        self, function: Callable[[_Item], Any], items: Sequence[_Item]
    ) -> list[Any]:
        return [function(item) for item in items]


class _PooledBackend(ExecutionBackend):
    """Shared machinery of the pool-based backends.

    The executor is created lazily on first use and reused across ``map``
    calls — an experiment like Table 4 issues one batch per table column,
    and paying pool startup (worker process spawn in particular) per batch
    would dominate small workloads.  ``shutdown()`` releases the workers;
    it is safe to keep using the backend afterwards (a fresh pool is
    created on demand).

    The resilience layer (:mod:`repro.engine.resilience`) drives pooled
    backends through :meth:`executor` (``submit`` + completion-order
    collection with per-future deadlines) instead of :meth:`map`, and
    calls :meth:`rebuild` when a worker crash breaks the pool.
    """

    _executor_class: type

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or _default_workers()
        self._executor = None

    def executor(self):
        """The live pool executor, created lazily (see class docstring)."""
        if self._executor is None:
            self._executor = self._executor_class(max_workers=self.max_workers)
        return self._executor

    def rebuild(self) -> None:
        """Replace a broken pool with a fresh one.

        A killed worker process breaks the whole
        :class:`~concurrent.futures.ProcessPoolExecutor` permanently
        (every pending and future submission raises
        :class:`~concurrent.futures.process.BrokenProcessPool`); the
        resilience layer calls this to discard it and continue the batch
        on new workers.
        """
        if self._executor is not None:
            # The broken pool cannot finish anything; don't wait on it.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def map(
        self, function: Callable[[_Item], Any], items: Sequence[_Item]
    ) -> list[Any]:
        if not items:
            return []
        if self.max_workers <= 1 or len(items) == 1:
            return [function(item) for item in items]
        return list(self.executor().map(function, items))

    def shutdown(self) -> None:
        """Release the pooled workers (a later ``map`` recreates them)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PooledBackend):
    """Fan out on a thread pool (shared memory, subject to the GIL).

    Parameters
    ----------
    max_workers:
        Thread count; defaults to the CPU count.
    """

    name = "thread"
    _executor_class = ThreadPoolExecutor


class ProcessPoolBackend(_PooledBackend):
    """Fan out on a process pool (true CPU parallelism).

    ``function`` and the items must be picklable: the engine ships each work
    item (algorithm instance + dataset) to a worker process and collects the
    results in submission order.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to the CPU count.
    """

    name = "process"
    _executor_class = ProcessPoolExecutor


BACKENDS: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessPoolBackend,
}


def make_backend(name: str, *, workers: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by name (``serial`` / ``thread`` / ``process``).

    Parameters
    ----------
    name:
        Backend name, a key of :data:`BACKENDS`.
    workers:
        Pool size for the thread/process backends (default: CPU count);
        ignored by the serial backend.
    """
    try:
        backend_class = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    if backend_class is SerialBackend:
        return SerialBackend()
    return backend_class(max_workers=workers)
