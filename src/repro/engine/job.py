"""Batch description and engine report.

A :class:`BatchJob` is the declarative form of what the historical
``evaluate_algorithms`` loop used to do imperatively: run a suite of
algorithms over a collection of datasets, with an optional exact reference
per dataset and a per-run time budget.  :meth:`BatchJob.specs` flattens the
job into the ordered list of independent :class:`RunSpec` work items the
backends fan out.

An :class:`EngineReport` is an :class:`~repro.evaluation.runner.EvaluationReport`
(so every table/figure formatter keeps working unchanged) extended with
execution accounting: which backend ran the batch, how many runs actually
executed versus how many were served from the cache, and the batch wall
time.  :meth:`EngineReport.result_fingerprint` digests the *results* only
(scores, budgets, errors — never wall-clock times), which is what the
backend-equivalence guarantees and tests are stated against.
"""

from __future__ import annotations

import copy
import hashlib
import json
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from ..algorithms.base import RankAggregator
from ..datasets.dataset import Dataset
from ..evaluation.runner import EvaluationReport
from .execution import KIND_ALGORITHM, KIND_ANYTIME, KIND_OPTIMAL, RunSpec

__all__ = ["BatchJob", "EngineReport"]


@dataclass
class BatchJob:
    """A suite of algorithms to run over a collection of datasets.

    Attributes
    ----------
    datasets:
        The complete datasets to aggregate.
    suite:
        ``{report name: algorithm instance}`` of the suite to run.
    exact_algorithm:
        Optional exact solver computing the per-dataset optimal score.
    exact_max_elements:
        Skip the exact solver on datasets with more elements than this.
    time_limit:
        Per-run wall-clock cap in seconds (``None`` = unlimited).
    record_features:
        Store ``Dataset.describe()`` for every dataset in the report.
    cache_context:
        Optional cache-key namespace (see :func:`repro.engine.run_key`).
    anytime:
        Propagate ``time_limit`` into anytime-capable algorithms (see
        below).
    """

    datasets: list[Dataset]
    suite: dict[str, RankAggregator]
    exact_algorithm: RankAggregator | None = None
    exact_max_elements: int | None = None
    time_limit: float | None = None
    record_features: bool = True
    # Optional cache-key namespace (e.g. {"scenario": ..., "seed_policy": ...});
    # None keeps the historical content-only addresses.
    cache_context: dict[str, object] | None = None
    # Propagate ``time_limit`` *into* anytime-capable algorithms: runs are
    # deadline-bounded (best-so-far) instead of discarded when over budget.
    # Anytime runs bypass the result cache (their scores are wall-clock
    # dependent); the exact reference, when attached, stays a regular run.
    anytime: bool = False

    @classmethod
    def from_algorithms(
        cls,
        datasets: Iterable[Dataset],
        algorithms: Mapping[str, RankAggregator] | Sequence[RankAggregator],
        *,
        exact_algorithm: RankAggregator | None = None,
        exact_max_elements: int | None = None,
        time_limit: float | None = None,
        record_features: bool = True,
        cache_context: Mapping[str, object] | None = None,
        anytime: bool = False,
    ) -> "BatchJob":
        """Build a job from the loose ``evaluate_algorithms`` arguments."""
        if isinstance(algorithms, Mapping):
            suite = dict(algorithms)
        else:
            suite = {algorithm.name: algorithm for algorithm in algorithms}
        return cls(
            datasets=list(datasets),
            suite=suite,
            exact_algorithm=exact_algorithm,
            exact_max_elements=exact_max_elements,
            time_limit=time_limit,
            record_features=record_features,
            cache_context=dict(cache_context) if cache_context else None,
            anytime=anytime,
        )

    def _needs_exact(self, dataset: Dataset) -> bool:
        if self.exact_algorithm is None:
            return False
        return (
            self.exact_max_elements is None
            or dataset.num_elements <= self.exact_max_elements
        )

    def specs(self) -> list[RunSpec]:
        """Flatten the job into its ordered, independent work items.

        Order matches the historical serial runner — per dataset, the exact
        reference first, then the suite in insertion order — so that
        reports assembled from these specs are bit-compatible with the old
        loop.  Every spec carries a deep copy of its algorithm: concurrent
        backends must never share mutable algorithm state.
        """
        specs: list[RunSpec] = []
        for dataset in self.datasets:
            if self._needs_exact(dataset):
                specs.append(
                    RunSpec(
                        index=len(specs),
                        kind=KIND_OPTIMAL,
                        algorithm_name=self.exact_algorithm.name,
                        algorithm=copy.deepcopy(self.exact_algorithm),
                        dataset=dataset,
                        time_limit=self.time_limit,
                    )
                )
            suite_kind = KIND_ANYTIME if self.anytime else KIND_ALGORITHM
            for name, algorithm in self.suite.items():
                specs.append(
                    RunSpec(
                        index=len(specs),
                        kind=suite_kind,
                        algorithm_name=name,
                        algorithm=copy.deepcopy(algorithm),
                        dataset=dataset,
                        time_limit=self.time_limit,
                    )
                )
        return specs

    @property
    def num_runs(self) -> int:
        """Total number of work items the job expands into."""
        per_dataset = len(self.suite)
        return sum(
            per_dataset + (1 if self._needs_exact(dataset) else 0)
            for dataset in self.datasets
        )


@dataclass
class EngineReport(EvaluationReport):
    """Evaluation report plus execution accounting from the engine.

    Attributes
    ----------
    runs, optimal_scores, dataset_features:
        Inherited from :class:`~repro.evaluation.EvaluationReport`.
    backend:
        Name of the backend that executed the batch.
    executed_runs, cached_runs:
        How many runs actually executed vs. were served from the cache.
    wall_seconds:
        Wall-clock time of the whole batch.
    retried_runs, worker_crashes, pool_rebuilds, deadline_runs:
        Resilience accounting from the fan-out: attempts re-submitted
        after crash/transient failures, attributed worker crashes,
        process-pool rebuilds after a crash, and futures abandoned at
        their hard deadline.
    quarantined_runs, poisoned_runs:
        Specs that degraded to structured error records — attempts
        exhausted (quarantine) or consecutive worker crashes (poison) —
        instead of aborting the batch.
    """

    backend: str = "serial"
    executed_runs: int = 0
    cached_runs: int = 0
    wall_seconds: float = 0.0
    retried_runs: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    deadline_runs: int = 0
    quarantined_runs: int = 0
    poisoned_runs: int = 0

    @property
    def total_runs(self) -> int:
        return self.executed_runs + self.cached_runs

    @property
    def degraded_runs(self) -> int:
        """Runs reported as structured errors by the resilience layer."""
        return self.quarantined_runs + self.poisoned_runs

    def apply_fanout(self, stats) -> None:
        """Fold a fan-out's :class:`~repro.engine.resilience.FanoutStats` in.

        Parameters
        ----------
        stats:
            The counters of one backend fan-out.
        """
        self.retried_runs += stats.retries
        self.worker_crashes += stats.worker_crashes
        self.pool_rebuilds += stats.pool_rebuilds
        self.deadline_runs += stats.deadline_hits
        self.quarantined_runs += stats.quarantined
        self.poisoned_runs += stats.poisoned

    def execution_summary(self) -> dict[str, object]:
        """One-line accounting of how the batch was executed."""
        total = self.total_runs
        return {
            "backend": self.backend,
            "total_runs": total,
            "executed_runs": self.executed_runs,
            "cached_runs": self.cached_runs,
            "cache_hit_rate": self.cached_runs / total if total else 0.0,
            "wall_seconds": self.wall_seconds,
            "resilience": {
                "retried_runs": self.retried_runs,
                "worker_crashes": self.worker_crashes,
                "pool_rebuilds": self.pool_rebuilds,
                "deadline_runs": self.deadline_runs,
                "quarantined_runs": self.quarantined_runs,
                "poisoned_runs": self.poisoned_runs,
            },
        }

    def result_fingerprint(self) -> str:
        """Digest of the results, excluding anything timing-dependent.

        Two reports produced by different backends (or by a cached re-run)
        of the same job have the same fingerprint: scores, budget verdicts,
        errors and optimal scores are covered; wall-clock times are not.
        """
        payload = {
            "runs": [
                [run.algorithm, run.dataset, run.score, run.within_budget, run.error]
                for run in self.runs
            ],
            "optimal_scores": dict(sorted(self.optimal_scores.items())),
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()
