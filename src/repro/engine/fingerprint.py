"""Content-addressed fingerprints for the persistent result cache.

A cached result is only valid while everything that determines it is
unchanged: the dataset content, the algorithm and its configuration (seed,
repeat counts, thresholds, ...), the per-run time budget and the library
version.  This module turns each of those into a stable fingerprint and
combines them into the cache key of one (algorithm, dataset) run:

* :func:`dataset_fingerprint` hashes the canonical text serialization of
  the rankings (the same format the datasets are distributed in), so two
  datasets with identical content share cache entries regardless of their
  name or metadata;
* :func:`algorithm_parameters` walks the algorithm instance (including
  nested aggregators, e.g. chained or adaptive-exact solvers) into a
  canonical JSON document, and :func:`parameter_hash` digests it — changing
  any parameter, the seed included, busts the cache;
* :func:`run_key` digests the whole (dataset, algorithm, parameters,
  time limit, version) tuple into the content address of the run.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from .. import __version__
from ..datasets.dataset import Dataset

__all__ = [
    "dataset_fingerprint",
    "algorithm_parameters",
    "parameter_hash",
    "run_key",
]


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def dataset_fingerprint(dataset: Dataset) -> str:
    """Digest of the dataset *content* (rankings only, not name/metadata).

    Delegates to :meth:`~repro.datasets.Dataset.content_fingerprint` (same
    canonical-text digest, memoized on the dataset instance and shared
    with the worker-local preparation-plan cache of
    :mod:`repro.core.prepared`).
    """
    return dataset.content_fingerprint()


def algorithm_parameters(algorithm: object) -> dict[str, Any]:
    """Canonical JSON-able description of an algorithm instance.

    Includes the class and every instance attribute, recursing into nested
    aggregators so that e.g. a chained algorithm's inner configuration is
    part of the fingerprint.
    """
    payload = _jsonable(algorithm)
    if not isinstance(payload, dict):  # pragma: no cover - defensive
        payload = {"value": payload}
    return payload


def parameter_hash(algorithm: object) -> str:
    """Digest of :func:`algorithm_parameters`."""
    return _sha256(_canonical_json(algorithm_parameters(algorithm)))


def run_key(
    *,
    dataset_fingerprint: str,
    algorithm_name: str,
    parameters: dict[str, Any] | str,
    kind: str = "algorithm",
    time_limit: float | None = None,
    version: str | None = None,
    context: dict[str, Any] | None = None,
) -> str:
    """Content address of one (algorithm, dataset) execution.

    Parameters
    ----------
    dataset_fingerprint:
        Digest of the dataset content (:func:`dataset_fingerprint`).
    algorithm_name:
        Name the run is reported under (the suite key).
    parameters:
        The canonical parameter document or its hash.
    kind:
        Run kind (``algorithm`` / ``optimal`` / ``anytime`` / ``service``).
    time_limit:
        Per-run time budget baked into the address.
    version:
        Library version; defaults to the installed :data:`repro.__version__`.
    context:
        Optional caller-supplied namespace mixed into the key (e.g. the
        scenario name and seed policy of a workload-matrix run), so that
        two pipelines producing coincidentally identical dataset
        fingerprints can never alias each other's cache entries.  ``None``
        leaves the key identical to the historical (context-free) address.
    """
    if isinstance(parameters, dict):
        parameters = _sha256(_canonical_json(parameters))
    payload = {
        "kind": kind,
        "dataset": dataset_fingerprint,
        "algorithm": algorithm_name,
        "parameters": parameters,
        "time_limit": time_limit,
        "version": version if version is not None else __version__,
    }
    if context:
        payload["context"] = _jsonable(context)
    return _sha256(_canonical_json(payload))


def _jsonable(value: Any) -> Any:
    """Convert ``value`` into a deterministic JSON-able structure."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(item) for item in value), key=repr)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if callable(value) and not hasattr(value, "__dict__"):
        return getattr(value, "__qualname__", repr(value))
    if hasattr(value, "__dict__"):
        cls = type(value)
        payload: dict[str, Any] = {"__class__": f"{cls.__module__}.{cls.__qualname__}"}
        for key, item in sorted(vars(value).items()):
            payload[key] = _jsonable(item)
        return payload
    return repr(value)
