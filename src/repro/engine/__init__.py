"""Batch execution engine with persistent result caching.

This subsystem is the substrate every experiment and the CLI route through:

* :mod:`repro.engine.backends` — the :class:`ExecutionBackend` abstraction
  (serial / thread pool / process pool) fanning out independent
  (algorithm, dataset) runs with per-run time budgets;
* :mod:`repro.engine.cache` — the content-addressed, disk-backed
  :class:`ResultCache` keyed by (dataset fingerprint, algorithm name,
  parameter hash, library version);
* :mod:`repro.engine.job` — the :class:`BatchJob` description and the
  :class:`EngineReport` it produces (an
  :class:`~repro.evaluation.EvaluationReport` plus execution accounting);
* :mod:`repro.engine.engine` — the :class:`ExecutionEngine` orchestrating
  cache lookups, backend fan-out and report assembly;
* :mod:`repro.engine.resilience` — the fault-tolerant fan-out layer:
  :class:`RetryPolicy` retries with deterministic backoff, worker-crash
  isolation with pool rebuild and poison marking, per-future hard
  deadlines, and quarantine of specs that exhaust their attempts.

Quickstart
----------

>>> from repro.engine import ExecutionEngine, ProcessPoolBackend, ResultCache
>>> engine = ExecutionEngine(
...     backend=ProcessPoolBackend(max_workers=4),
...     cache=ResultCache(".repro-cache"),
... )
>>> report = run_table5("smoke", engine=engine)      # doctest: +SKIP
>>> report.execution_summary()                       # doctest: +SKIP
{'backend': 'process', 'total_runs': 56, 'executed_runs': 56, ...}

A second run of the same experiment is a pure cache hit
(``executed_runs == 0``) and produces a byte-identical table.
"""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .cache import CacheStats, ResultCache
from .engine import ExecutionEngine
from .execution import RunSpec, SpecResult, execute_spec
from .tiering import MemoryCacheTier, TieredCacheStats, TieredResultCache
from .fingerprint import (
    algorithm_parameters,
    dataset_fingerprint,
    parameter_hash,
    run_key,
)
from .job import BatchJob, EngineReport
from .resilience import (
    CLASS_CRASH,
    CLASS_PERMANENT,
    CLASS_TRANSIENT,
    FanoutStats,
    RetryPolicy,
    TransientRunError,
    WorkerCrashError,
    classify_exception,
    resilient_map,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "BACKENDS",
    "make_backend",
    "ResultCache",
    "CacheStats",
    "MemoryCacheTier",
    "TieredResultCache",
    "TieredCacheStats",
    "ExecutionEngine",
    "BatchJob",
    "EngineReport",
    "RunSpec",
    "SpecResult",
    "execute_spec",
    "RetryPolicy",
    "FanoutStats",
    "resilient_map",
    "classify_exception",
    "CLASS_CRASH",
    "CLASS_TRANSIENT",
    "CLASS_PERMANENT",
    "WorkerCrashError",
    "TransientRunError",
    "dataset_fingerprint",
    "algorithm_parameters",
    "parameter_hash",
    "run_key",
]
