"""Cache tiering: an in-memory LRU tier layered over the disk ResultCache.

The disk :class:`~repro.engine.cache.ResultCache` makes re-runs free across
processes, but a request-serving frontend hits the same handful of keys
thousands of times per second — paying a file open + JSON parse per hit.
:class:`TieredResultCache` keeps the hottest records in a bounded
in-memory LRU tier (:class:`MemoryCacheTier`) in front of the disk store:

* a lookup first consults the memory tier (O(1), no I/O); on a memory miss
  it falls through to the disk tier and *promotes* the record into memory;
* a store writes through to both tiers, so a warm process never touches
  the disk for reads while other processes still see every record;
* invalidation and clearing propagate to both tiers.

Both tiers and the combined cache expose the same duck-typed contract the
:class:`~repro.engine.engine.ExecutionEngine` consumes (``lookup`` /
``store`` / ``invalidate`` / ``clear`` / ``stats``), so a
``TieredResultCache`` can be dropped anywhere a ``ResultCache`` is used.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..telemetry import runtime as _telemetry
from .cache import CacheStats, ResultCache

__all__ = ["MemoryCacheTier", "TieredCacheStats", "TieredResultCache"]

DEFAULT_MEMORY_ENTRIES = 1024


class MemoryCacheTier:
    """Bounded in-memory LRU store of cache records.

    Parameters
    ----------
    max_entries:
        Capacity; inserting beyond it evicts the least-recently-used
        record.  Must be positive.
    """

    def __init__(self, max_entries: int = DEFAULT_MEMORY_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._records: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> dict[str, Any] | None:
        """Return the record for ``key`` (refreshing its recency) or ``None``."""
        record = self._records.get(key)
        if record is None:
            self._misses += 1
            return None
        self._records.move_to_end(key)
        self._hits += 1
        return record

    def store(self, key: str, record: dict[str, Any]) -> None:
        """Insert ``record`` under ``key``, evicting the LRU entry if full."""
        if key in self._records:
            self._records.move_to_end(key)
        self._records[key] = record
        while len(self._records) > self.max_entries:
            self._records.popitem(last=False)
            self._evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop one record; return whether it was present."""
        return self._records.pop(key, None) is not None

    def clear(self) -> int:
        """Drop every record; return the number removed."""
        removed = len(self._records)
        self._records.clear()
        return removed

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def hits(self) -> int:
        """Session lookup hits."""
        return self._hits

    @property
    def misses(self) -> int:
        """Session lookup misses."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Records evicted by the LRU policy this session."""
        return self._evictions

    def __repr__(self) -> str:
        return (
            f"MemoryCacheTier(entries={len(self._records)}, "
            f"max_entries={self.max_entries})"
        )


@dataclass(frozen=True)
class TieredCacheStats:
    """Combined accounting of the memory and disk tiers.

    Attributes
    ----------
    memory_entries, memory_max_entries:
        Current fill and capacity of the LRU tier.
    memory_hits, memory_misses, memory_evictions:
        Session counters of the LRU tier.
    disk:
        The disk tier's own :class:`~repro.engine.cache.CacheStats`.
    """

    memory_entries: int
    memory_max_entries: int
    memory_hits: int
    memory_misses: int
    memory_evictions: int
    disk: CacheStats

    @property
    def total_hits(self) -> int:
        """Hits served without executing anything (memory + disk)."""
        return self.memory_hits + self.disk.hits

    def describe(self) -> dict[str, object]:
        """Flat dictionary form (used by the CLI and the service stats)."""
        return {
            "memory_entries": self.memory_entries,
            "memory_max_entries": self.memory_max_entries,
            "memory_hits": self.memory_hits,
            "memory_misses": self.memory_misses,
            "memory_evictions": self.memory_evictions,
            "disk": self.disk.describe(),
        }


class TieredResultCache:
    """Memory-LRU tier over a persistent disk :class:`ResultCache`.

    Parameters
    ----------
    disk:
        The persistent tier — a :class:`ResultCache` instance or a
        directory path one is created from.
    memory_entries:
        Capacity of the in-memory LRU tier.
    """

    def __init__(
        self,
        disk: ResultCache | str | Path,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ):
        self.disk = disk if isinstance(disk, ResultCache) else ResultCache(disk)
        self.memory = MemoryCacheTier(memory_entries)

    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> dict[str, Any] | None:
        """Memory tier first; on a disk hit, promote the record to memory."""
        return self.lookup_with_source(key)[0]

    def lookup_with_source(self, key: str) -> tuple[dict[str, Any] | None, str]:
        """Like :meth:`lookup`, also reporting which tier answered.

        Returns ``(record, source)`` with ``source`` one of ``"memory"``,
        ``"disk"`` or ``"none"`` — the single implementation of the
        fallthrough-and-promote policy, shared with the service frontend's
        per-tier accounting.  With telemetry enabled every lookup ticks
        the per-tier ``cache.lookup`` counter (labelled by tier and
        outcome) and LRU evictions tick ``cache.evict``.
        """
        evictions_before = self.memory.evictions if _telemetry.is_enabled() else 0
        record = self.memory.lookup(key)
        if record is not None:
            if _telemetry.is_enabled():
                _telemetry.count("cache.lookup", tier="memory", outcome="hit")
            return record, "memory"
        record = self.disk.lookup(key)
        if _telemetry.is_enabled():
            _telemetry.count("cache.lookup", tier="memory", outcome="miss")
            _telemetry.count(
                "cache.lookup",
                tier="disk",
                outcome="hit" if record is not None else "miss",
            )
        if record is not None:
            self.memory.store(key, record)
            if _telemetry.is_enabled():
                evicted = self.memory.evictions - evictions_before
                if evicted:
                    _telemetry.count("cache.evict", evicted, tier="memory")
            return record, "disk"
        return None, "none"

    def store(self, key: str, record: dict[str, Any]) -> None:
        """Write through to both tiers."""
        evictions_before = self.memory.evictions if _telemetry.is_enabled() else 0
        self.disk.store(key, record)
        self.memory.store(key, record)
        if _telemetry.is_enabled():
            evicted = self.memory.evictions - evictions_before
            if evicted:
                _telemetry.count("cache.evict", evicted, tier="memory")

    def __contains__(self, key: str) -> bool:
        return key in self.memory or key in self.disk

    # ------------------------------------------------------------------ #
    def invalidate(
        self,
        *,
        algorithm: str | None = None,
        dataset_fingerprint: str | None = None,
    ) -> int:
        """Remove matching records from both tiers; return the disk count.

        The memory tier holds copies of disk records, so it is cleared
        wholesale on a filtered invalidation (records matching the filter
        cannot be identified without re-reading the disk).
        """
        removed = self.disk.invalidate(
            algorithm=algorithm, dataset_fingerprint=dataset_fingerprint
        )
        self.memory.clear()
        return removed

    def clear(self) -> int:
        """Remove every record from both tiers; return the disk count."""
        removed = self.disk.clear()
        self.memory.clear()
        return removed

    def stats(self) -> TieredCacheStats:
        """Combined snapshot of both tiers."""
        return TieredCacheStats(
            memory_entries=len(self.memory),
            memory_max_entries=self.memory.max_entries,
            memory_hits=self.memory.hits,
            memory_misses=self.memory.misses,
            memory_evictions=self.memory.evictions,
            disk=self.disk.stats(),
        )

    def __repr__(self) -> str:
        return f"TieredResultCache(disk={self.disk!r}, memory={self.memory!r})"
