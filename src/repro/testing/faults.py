"""Deterministic, seed-driven fault injection at named sites.

The resilience layer (:mod:`repro.engine.resilience`) is only trustworthy
if its failure paths are exercised on every CI run — which needs faults
that are *reproducible*: the same seed must kill the same worker on the
same spec whatever the backend, so that chaos tests can assert
serial/thread/process batches converge to byte-identical reports.

A :class:`FaultInjector` holds a seed and a list of :class:`FaultRule`
entries.  Production code calls :func:`maybe_fire` (or
:func:`maybe_decide` for faults the site must apply itself, like cache
corruption) at named sites; with no injector active both are a dictionary
lookup and an ``is None`` check — nothing else.  Whether a rule fires for
a given ``(site, key, attempt)`` is a pure function of the seed
(:meth:`FaultInjector.decide` hashes the triple), so a fault that fired on
attempt 0 deterministically fires — or not — on the retry, on every
backend, in every process.

Fault kinds
-----------

``crash``
    Simulates a worker being killed.  Inside a pool worker process the
    injector calls ``os._exit`` (the pool genuinely breaks, exercising
    :class:`concurrent.futures.process.BrokenProcessPool` recovery); in
    the driver process (serial and thread backends) it raises
    :class:`WorkerCrashError`, which the resilience layer classifies
    exactly like a real pool break.
``exception``
    Raises :class:`TransientRunError` — the "flaky infrastructure" class
    that retry policies re-attempt.
``slow``
    Sleeps ``delay_seconds`` before letting the run proceed, driving
    budget and deadline enforcement.
``corrupt``
    Never raises; the call site asks :func:`maybe_decide` and applies the
    corruption itself (e.g. the result cache garbles the just-written
    record file).

Activation
----------

Programmatic: :func:`install` / :func:`clear_installed`, or the
:func:`injected` context manager.  Cross-process: the ``REPRO_FAULTS``
environment variable holds the injector's JSON payload (or ``@path`` to a
file containing it); pool workers inherit the variable and parse it
lazily, so injection reaches process backends without any plumbing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ENV_VAR",
    "FaultRule",
    "FaultInjector",
    "WorkerCrashError",
    "TransientRunError",
    "active_injector",
    "install",
    "clear_installed",
    "injected",
    "maybe_decide",
    "maybe_fire",
]

#: Environment variable carrying an injector payload (JSON, or ``@path``).
ENV_VAR = "REPRO_FAULTS"

_KINDS = frozenset({"crash", "exception", "slow", "corrupt"})


class WorkerCrashError(RuntimeError):
    """A simulated worker crash (in-process stand-in for a killed worker).

    Raised by ``crash`` rules when the code runs in the driver process
    (serial / thread backends), where the real thing — the worker process
    dying and the pool breaking — cannot happen.  The resilience layer
    classifies it identically to a genuine
    :class:`~concurrent.futures.process.BrokenProcessPool`.
    """


class TransientRunError(RuntimeError):
    """A transient infrastructure failure worth retrying.

    The canonical member of the retry policy's transient taxonomy; raised
    by ``exception`` rules and available to production code for genuinely
    retryable conditions.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, and how often.

    Attributes
    ----------
    site:
        Name of the instrumented site the rule applies to (e.g.
        ``"engine.run"``, ``"cache.store"``, ``"portfolio.member"``).
    kind:
        ``"crash"``, ``"exception"``, ``"slow"`` or ``"corrupt"``.
    probability:
        Chance the rule fires for a given (key, attempt), decided
        deterministically from the injector seed.  1.0 always fires.
    match:
        Substring filter on the site key; empty matches every key.
    delay_seconds:
        Sleep duration for ``slow`` rules.
    max_attempt:
        Only fire while ``attempt < max_attempt`` (``None`` = always).
        Setting it to the retry budget minus one makes a fault transient
        by construction: the final retry is allowed through.
    """

    site: str
    kind: str
    probability: float = 1.0
    match: str = ""
    delay_seconds: float = 0.0
    max_attempt: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {sorted(_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_payload`)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
            "match": self.match,
            "delay_seconds": self.delay_seconds,
            "max_attempt": self.max_attempt,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultRule":
        """Rebuild a rule from its :meth:`to_payload` dictionary.

        Parameters
        ----------
        payload:
            The rule dictionary (unknown keys are rejected by the
            constructor signature).
        """
        return cls(
            site=str(payload["site"]),
            kind=str(payload["kind"]),
            probability=float(payload.get("probability", 1.0)),
            match=str(payload.get("match", "")),
            delay_seconds=float(payload.get("delay_seconds", 0.0)),
            max_attempt=(
                None
                if payload.get("max_attempt") is None
                else int(payload["max_attempt"])
            ),
        )


def _hash01(seed: int, site: str, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (seed, site, key, attempt)."""
    digest = hashlib.sha256(
        f"{seed}|{site}|{key}|{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _in_worker_process() -> bool:
    """Whether the current process is a multiprocessing child."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class FaultInjector:
    """A seed plus the list of rules deciding which faults fire where.

    Attributes
    ----------
    seed:
        Root of every probabilistic decision; two injectors with the same
        seed and rules make identical decisions in every process.
    rules:
        The :class:`FaultRule` entries, checked in order (first match that
        fires wins).
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ #
    def decide(self, site: str, key: str = "", attempt: int = 0) -> FaultRule | None:
        """The rule firing at ``site`` for ``(key, attempt)``, or ``None``.

        Pure and deterministic: no state is consumed, so the driver and a
        worker process reach the same verdict for the same triple.

        Parameters
        ----------
        site:
            Instrumented site name.
        key:
            Site-specific identity of the work (e.g. a spec key) the
            ``match`` filter and the hash draw are applied to.
        attempt:
            Retry ordinal of the work (0 = first try).
        """
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.match and rule.match not in key:
                continue
            if rule.max_attempt is not None and attempt >= rule.max_attempt:
                continue
            if rule.probability >= 1.0:
                return rule
            if _hash01(self.seed, site, key, attempt) < rule.probability:
                return rule
        return None

    def fire(self, site: str, key: str = "", attempt: int = 0) -> FaultRule | None:
        """Apply the fault firing at ``site`` (if any) and return its rule.

        ``crash`` rules terminate the process when running inside a pool
        worker (``os._exit``) and raise :class:`WorkerCrashError`
        otherwise; ``exception`` rules raise :class:`TransientRunError`;
        ``slow`` rules sleep; ``corrupt`` rules only *return* — the call
        site applies the corruption itself.

        Parameters
        ----------
        site, key, attempt:
            Forwarded to :meth:`decide`.
        """
        rule = self.decide(site, key, attempt)
        if rule is None:
            return None
        if rule.kind == "crash":
            if _in_worker_process():
                os._exit(173)
            raise WorkerCrashError(
                f"injected worker crash at {site} [{key}]"
            )
        if rule.kind == "exception":
            raise TransientRunError(
                f"injected transient fault at {site} [{key}]"
            )
        if rule.kind == "slow":
            time.sleep(rule.delay_seconds)
        return rule

    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_payload`)."""
        return {
            "seed": self.seed,
            "rules": [rule.to_payload() for rule in self.rules],
        }

    def to_env(self) -> str:
        """The :data:`ENV_VAR` value activating this injector in any process."""
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FaultInjector":
        """Rebuild an injector from its :meth:`to_payload` dictionary.

        Parameters
        ----------
        payload:
            A ``{"seed": ..., "rules": [...]}`` dictionary.
        """
        return cls(
            seed=int(payload.get("seed", 0)),
            rules=tuple(
                FaultRule.from_payload(rule) for rule in payload.get("rules", [])
            ),
        )


# --------------------------------------------------------------------------- #
# Activation: explicit install or the REPRO_FAULTS environment variable
# --------------------------------------------------------------------------- #
_INSTALLED: FaultInjector | None = None
# Parse cache for the environment payload: (raw env value, parsed injector).
_ENV_CACHE: tuple[str, FaultInjector] | None = None


def install(injector: FaultInjector) -> FaultInjector:
    """Activate ``injector`` in this process (overrides the environment).

    Parameters
    ----------
    injector:
        The injector to install; returned for chaining.
    """
    global _INSTALLED
    _INSTALLED = injector
    return injector


def clear_installed() -> None:
    """Remove a programmatically installed injector (environment still applies)."""
    global _INSTALLED
    _INSTALLED = None


@contextmanager
def injected(injector: FaultInjector):
    """Install ``injector`` for the duration of a ``with`` block.

    Parameters
    ----------
    injector:
        The injector to install; bound by ``as``.
    """
    global _INSTALLED
    previous = _INSTALLED
    install(injector)
    try:
        yield injector
    finally:
        _INSTALLED = previous


def active_injector() -> FaultInjector | None:
    """The injector governing this process, or ``None``.

    A programmatically installed injector wins; otherwise the
    :data:`ENV_VAR` environment variable is consulted — its value is the
    injector JSON payload, or ``@path`` naming a file that contains it.
    The parse is cached against the raw value, so the steady-state cost of
    an *inactive* harness is one dictionary lookup.
    """
    if _INSTALLED is not None:
        return _INSTALLED
    value = os.environ.get(ENV_VAR)
    if not value:
        return None
    global _ENV_CACHE
    if _ENV_CACHE is not None and _ENV_CACHE[0] == value:
        return _ENV_CACHE[1]
    text = value
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            text = handle.read()
    injector = FaultInjector.from_payload(json.loads(text))
    _ENV_CACHE = (value, injector)
    return injector


def maybe_decide(site: str, key: str = "", attempt: int = 0) -> FaultRule | None:
    """Consult the active injector without applying the fault.

    For faults the call site must apply itself (``corrupt``).  Returns
    the firing rule, or ``None`` when no injector is active or no rule
    fires.

    Parameters
    ----------
    site, key, attempt:
        Forwarded to :meth:`FaultInjector.decide`.
    """
    injector = active_injector()
    if injector is None:
        return None
    return injector.decide(site, key, attempt)


def maybe_fire(site: str, key: str = "", attempt: int = 0) -> FaultRule | None:
    """Apply any fault the active injector fires at ``site``.

    The production-side hook: a no-op (one env lookup) when no injector
    is active.

    Parameters
    ----------
    site, key, attempt:
        Forwarded to :meth:`FaultInjector.fire`.
    """
    injector = active_injector()
    if injector is None:
        return None
    return injector.fire(site, key, attempt)
