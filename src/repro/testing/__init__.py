"""Test support utilities shipped with the library.

This package holds machinery that *production* code hooks into but that
only ever activates under explicit opt-in — most importantly the
deterministic fault-injection harness of :mod:`repro.testing.faults`,
which the chaos test suite and the CI chaos job use to prove the engine,
the caches and the serving layer degrade gracefully instead of aborting.
"""

from .faults import (
    ENV_VAR,
    FaultInjector,
    FaultRule,
    TransientRunError,
    WorkerCrashError,
    active_injector,
    clear_installed,
    install,
    injected,
    maybe_decide,
    maybe_fire,
)

__all__ = [
    "ENV_VAR",
    "FaultRule",
    "FaultInjector",
    "WorkerCrashError",
    "TransientRunError",
    "active_injector",
    "install",
    "clear_installed",
    "injected",
    "maybe_decide",
    "maybe_fire",
]
