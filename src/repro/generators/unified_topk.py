"""Unified top-k synthetic datasets (Section 6.1.3, Figure 1).

The paper studies the impact of the unification process on datasets made of
*top-k* rankings (the WebSearch use case): rankings over a large universe
are generated with a controlled level of similarity, only the first ``k``
elements of each ranking are retained, and the unification process is then
applied so that the resulting rankings are over the same elements.

Pipeline (Figure 1 of the paper):

1. generate a dataset of ``m`` rankings with ties over ``n`` elements with a
   common seed and ``t`` Markov-chain steps (Section 6.1.2);
2. retain only the top-``k`` elements of each ranking (cutting inside a
   bucket keeps the whole bucket prefix needed to reach ``k`` elements);
3. unify: every ranking receives a final bucket with the retained elements
   it is missing.

The smaller the similarity (larger ``t``), the less the top-k lists overlap
and the larger the unification buckets become — which is precisely the
effect Figure 5 of the paper measures.
"""

from __future__ import annotations

import numpy as np

from ..core.ranking import Element, Ranking
from ..datasets.dataset import Dataset
from ..datasets.normalization import unify
from .markov import markov_dataset

__all__ = ["retain_top_k", "unified_topk_dataset", "unified_topk_dataset_collection"]


def retain_top_k(ranking: Ranking, k: int) -> Ranking:
    """Keep the best-ranked ``k`` elements of a ranking with ties.

    Buckets are consumed from the best one; if a bucket would overflow the
    budget, only part of it is kept (a deterministic, sorted part) so that
    exactly ``min(k, n)`` elements remain — mirroring a search engine
    truncating its result list at ``k`` documents.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    kept: list[list[Element]] = []
    budget = k
    for bucket in ranking.buckets:
        if budget <= 0:
            break
        if len(bucket) <= budget:
            kept.append(list(bucket))
            budget -= len(bucket)
        else:
            partial = sorted(bucket, key=_element_key)[:budget]
            kept.append(partial)
            budget = 0
    return Ranking(kept)


def unified_topk_dataset(
    num_rankings: int,
    universe_size: int,
    top_k: int,
    steps: int,
    rng: np.random.Generator | int | None = None,
    *,
    name: str | None = None,
) -> Dataset:
    """Generate one unified top-k dataset (Figure 1 pipeline).

    Parameters
    ----------
    num_rankings:
        Number of rankings ``m``.
    universe_size:
        Number of elements of the underlying full rankings (100 in the paper).
    top_k:
        Number of elements retained from each ranking before unification
        (``k ∈ [1; 35]`` in the paper).
    steps:
        Markov-chain steps controlling the similarity of the full rankings.
    """
    generator = _as_generator(rng)
    full = markov_dataset(num_rankings, universe_size, steps, generator)
    truncated = [retain_top_k(ranking, top_k) for ranking in full.rankings]
    sub_dataset = Dataset(
        truncated,
        name=name or f"unified_topk_m{num_rankings}_N{universe_size}_k{top_k}_t{steps}",
        metadata={
            "generator": "unified-topk",
            "num_rankings": num_rankings,
            "universe_size": universe_size,
            "top_k": top_k,
            "steps": steps,
        },
    )
    return unify(sub_dataset)


def unified_topk_dataset_collection(
    num_datasets: int,
    num_rankings: int,
    universe_size: int,
    top_k: int,
    steps: int,
    rng: np.random.Generator | int | None = None,
) -> list[Dataset]:
    """Generate several independent unified top-k datasets."""
    generator = _as_generator(rng)
    return [
        unified_topk_dataset(
            num_rankings,
            universe_size,
            top_k,
            steps,
            generator,
            name=(
                f"unified_topk_m{num_rankings}_N{universe_size}_k{top_k}"
                f"_t{steps}_{index:03d}"
            ),
        )
        for index in range(num_datasets)
    ]


def _element_key(element: Element) -> tuple[str, str]:
    return (type(element).__name__, repr(element))


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
