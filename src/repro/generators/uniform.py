"""Uniform random generation of rankings with ties.

Section 6.1.1 of the paper generates datasets in which *every ranking with
ties over n elements has the same probability of appearing*.  The original
study relied on the MuPAD-Combinat package; here the sampler is implemented
directly.

A ranking with ties over ``[n]`` with exactly ``k`` buckets corresponds to a
surjection from the ``n`` elements onto the ``k`` ordered buckets, and there
are ``k! · S(n, k)`` of them, where ``S(n, k)`` is the Stirling number of
the second kind.  The total number of rankings with ties is the ordered
Bell (Fubini) number ``a(n) = Σ_k k! · S(n, k)``.

Uniform sampling therefore proceeds in three exact steps using big-integer
arithmetic (no floating point, no rejection):

1. draw the number of buckets ``k`` with probability ``k!·S(n,k) / a(n)``;
2. draw a uniform set partition of the elements into exactly ``k`` unlabeled
   blocks, using the standard recursive decomposition of ``S(n, k)``
   (element ``n`` is either a singleton block or joins one of the ``k``
   blocks of a partition of the remaining elements);
3. assign the ``k`` blocks to the ``k`` bucket positions uniformly at random.

The module also exposes the counting functions themselves, which are reused
by the tests to check that the sampler's distribution is exactly uniform on
small ``n``.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache
from math import factorial

import numpy as np

from ..core.ranking import Element, Ranking
from ..datasets.dataset import Dataset

__all__ = [
    "stirling2",
    "ordered_bell_number",
    "count_rankings_with_ties",
    "sample_uniform_ranking",
    "uniform_dataset",
    "uniform_dataset_collection",
]


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind ``S(n, k)`` (exact integer).

    ``S(n, k)`` counts the partitions of an ``n``-element set into exactly
    ``k`` non-empty unlabeled blocks.
    """
    if n < 0 or k < 0:
        raise ValueError("n and k must be non-negative")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0 or k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


@lru_cache(maxsize=None)
def ordered_bell_number(n: int) -> int:
    """Ordered Bell (Fubini) number: the number of rankings with ties over n elements."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 1
    return sum(factorial(k) * stirling2(n, k) for k in range(1, n + 1))


def count_rankings_with_ties(n: int, num_buckets: int | None = None) -> int:
    """Number of rankings with ties over ``n`` elements.

    With ``num_buckets`` given, counts only the rankings with exactly that
    many buckets (``k! · S(n, k)``); otherwise returns the ordered Bell
    number.
    """
    if num_buckets is None:
        return ordered_bell_number(n)
    return factorial(num_buckets) * stirling2(n, num_buckets)


def _sample_bucket_count(n: int, rng: np.random.Generator) -> int:
    """Draw the number of buckets k with probability k!·S(n,k)/a(n)."""
    total = ordered_bell_number(n)
    # Draw a uniform integer in [0, total) with big-int precision: compose it
    # from 30-bit chunks so that arbitrarily large totals remain exact.
    target = _randint_below(total, rng)
    cumulative = 0
    for k in range(1, n + 1):
        cumulative += count_rankings_with_ties(n, k)
        if target < cumulative:
            return k
    return n  # pragma: no cover - unreachable, kept as a safety net


def _randint_below(bound: int, rng: np.random.Generator) -> int:
    """Uniform big integer in ``[0, bound)`` built from the NumPy generator."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    bits = bound.bit_length()
    while True:
        value = 0
        remaining = bits
        while remaining > 0:
            chunk = min(remaining, 30)
            value = (value << chunk) | int(rng.integers(0, 1 << chunk))
            remaining -= chunk
        if value < bound:
            return value


def _sample_partition_into_k_blocks(
    elements: Sequence[Element], k: int, rng: np.random.Generator
) -> list[list[Element]]:
    """Uniform set partition of ``elements`` into exactly ``k`` unlabeled blocks.

    Recursive sampling based on ``S(n, k) = S(n-1, k-1) + k·S(n-1, k)``: the
    last element either forms a singleton block (with probability
    ``S(n-1, k-1)/S(n, k)``) or joins one of the ``k`` blocks of a uniform
    partition of the remaining elements into ``k`` blocks.

    The recursion is unrolled into two passes: a backward pass that records,
    for each element, whether it creates a new block or joins an existing
    one, and a forward pass that replays the decisions and materialises the
    blocks (drawing the uniform block choice when the blocks exist).
    """
    n = len(elements)
    creates_block: list[bool] = [False] * n
    remaining_k = k
    for index in range(n - 1, -1, -1):
        remaining_n = index + 1
        total = stirling2(remaining_n, remaining_k)
        singleton_weight = stirling2(remaining_n - 1, remaining_k - 1)
        draw = _randint_below(total, rng)
        if draw < singleton_weight:
            creates_block[index] = True
            remaining_k -= 1
    blocks: list[list[Element]] = []
    for index, element in enumerate(elements):
        if creates_block[index]:
            blocks.append([element])
        else:
            target_block = int(rng.integers(0, len(blocks)))
            blocks[target_block].append(element)
    return blocks


def sample_uniform_ranking(
    elements: Sequence[Element], rng: np.random.Generator
) -> Ranking:
    """Draw one ranking with ties uniformly among all rankings over ``elements``.

    Parameters
    ----------
    elements:
        The elements to rank (any hashable objects, order irrelevant).
    rng:
        NumPy random generator; the function is fully deterministic given it.
    """
    elements = list(elements)
    n = len(elements)
    if n == 0:
        return Ranking([])
    k = _sample_bucket_count(n, rng)
    blocks = _sample_partition_into_k_blocks(elements, k, rng)
    order = rng.permutation(len(blocks))
    buckets = [blocks[i] for i in order]
    return Ranking(buckets)


def uniform_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    elements: Sequence[Element] | None = None,
    name: str | None = None,
) -> Dataset:
    """Generate one dataset of uniformly random rankings with ties.

    Mirrors Section 6.1.1 of the paper: ``num_rankings`` rankings, each drawn
    uniformly and independently among all rankings with ties over the same
    ``num_elements`` elements.

    Parameters
    ----------
    num_rankings:
        Number of rankings ``m``.
    num_elements:
        Number of elements ``n`` (ignored if ``elements`` is given).
    rng:
        NumPy generator or integer seed.
    elements:
        Optional explicit universe; defaults to ``0 .. n-1``.
    name:
        Optional dataset name.
    """
    generator = _as_generator(rng)
    if elements is None:
        elements = list(range(num_elements))
    else:
        elements = list(elements)
    rankings = [sample_uniform_ranking(elements, generator) for _ in range(num_rankings)]
    dataset_name = name or f"uniform_m{num_rankings}_n{len(elements)}"
    return Dataset(
        rankings,
        name=dataset_name,
        metadata={
            "generator": "uniform",
            "num_rankings": num_rankings,
            "num_elements": len(elements),
        },
    )


def uniform_dataset_collection(
    num_datasets: int,
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
) -> list[Dataset]:
    """Generate a collection of independent uniform datasets.

    The paper generates 100 datasets per ``<m, n>`` pair; this helper mirrors
    that loop with a configurable count.
    """
    generator = _as_generator(rng)
    return [
        uniform_dataset(
            num_rankings,
            num_elements,
            generator,
            name=f"uniform_m{num_rankings}_n{num_elements}_{index:03d}",
        )
        for index in range(num_datasets)
    ]


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
