"""Synthetic dataset generators (Section 6.1 of the paper, plus the
scenario-workload families: Mallows-with-ties, skewed Plackett–Luce and the
adversarial regimes)."""

from .adversarial import (
    disjoint_support_dataset,
    heavy_tailed_length_dataset,
    near_total_tie_dataset,
)
from .mallows_ties import (
    mallows_ties_dataset,
    sample_mallows_ties_ranking,
    uniform_composition_weights,
)
from .markov import (
    PAPER_STEP_GRID,
    PAPER_UNIFIED_STEP_GRID,
    markov_dataset,
    markov_dataset_collection,
    markov_walk,
)
from .permutations import (
    mallows_dataset,
    mallows_permutation,
    plackett_luce_dataset,
    plackett_luce_permutation,
    plackett_luce_utilities,
    uniform_permutation,
    uniform_permutation_dataset,
)
from .unified_topk import (
    retain_top_k,
    unified_topk_dataset,
    unified_topk_dataset_collection,
)
from .uniform import (
    count_rankings_with_ties,
    ordered_bell_number,
    sample_uniform_ranking,
    stirling2,
    uniform_dataset,
    uniform_dataset_collection,
)

__all__ = [
    "stirling2",
    "ordered_bell_number",
    "count_rankings_with_ties",
    "sample_uniform_ranking",
    "uniform_dataset",
    "uniform_dataset_collection",
    "markov_walk",
    "markov_dataset",
    "markov_dataset_collection",
    "PAPER_STEP_GRID",
    "PAPER_UNIFIED_STEP_GRID",
    "retain_top_k",
    "unified_topk_dataset",
    "unified_topk_dataset_collection",
    "uniform_permutation",
    "uniform_permutation_dataset",
    "mallows_permutation",
    "mallows_dataset",
    "plackett_luce_permutation",
    "plackett_luce_dataset",
    "plackett_luce_utilities",
    "mallows_ties_dataset",
    "sample_mallows_ties_ranking",
    "uniform_composition_weights",
    "near_total_tie_dataset",
    "disjoint_support_dataset",
    "heavy_tailed_length_dataset",
]
