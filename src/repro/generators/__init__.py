"""Synthetic dataset generators (Section 6.1 of the paper)."""

from .markov import (
    PAPER_STEP_GRID,
    PAPER_UNIFIED_STEP_GRID,
    markov_dataset,
    markov_dataset_collection,
    markov_walk,
)
from .permutations import (
    mallows_dataset,
    mallows_permutation,
    plackett_luce_dataset,
    plackett_luce_permutation,
    uniform_permutation,
    uniform_permutation_dataset,
)
from .unified_topk import (
    retain_top_k,
    unified_topk_dataset,
    unified_topk_dataset_collection,
)
from .uniform import (
    count_rankings_with_ties,
    ordered_bell_number,
    sample_uniform_ranking,
    stirling2,
    uniform_dataset,
    uniform_dataset_collection,
)

__all__ = [
    "stirling2",
    "ordered_bell_number",
    "count_rankings_with_ties",
    "sample_uniform_ranking",
    "uniform_dataset",
    "uniform_dataset_collection",
    "markov_walk",
    "markov_dataset",
    "markov_dataset_collection",
    "PAPER_STEP_GRID",
    "PAPER_UNIFIED_STEP_GRID",
    "retain_top_k",
    "unified_topk_dataset",
    "unified_topk_dataset_collection",
    "uniform_permutation",
    "uniform_permutation_dataset",
    "mallows_permutation",
    "mallows_dataset",
    "plackett_luce_permutation",
    "plackett_luce_dataset",
]
