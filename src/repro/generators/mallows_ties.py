"""Mallows-with-ties: a dispersion-controlled model over rankings *with ties*.

The classical Mallows model (:mod:`repro.generators.permutations`) only
produces permutations, so it cannot stress the tie-handling machinery that
is the whole point of the paper.  This module defines a two-stage sampler
over rankings with ties around a reference ranking ``r0``, controlled by a
dispersion ``phi`` in ``[0, 1]``:

1. **Order stage** — a permutation is drawn by repeated insertion around the
   reference order with displacement weights ``phi**j`` (the standard
   Mallows insertion sampler re-parameterised by ``phi = exp(-theta)``):
   ``phi = 0`` returns the reference order, ``phi = 1`` a uniform
   permutation.
2. **Tie stage** — the permutation is cut into buckets by drawing the bucket
   size composition ``(s1, ..., sk)`` sequentially.  With ``j`` elements
   remaining, the next bucket size ``s`` is drawn with weight
   ``phi**|s - t| · C(j, s) · a(j - s) / a(j)`` where ``t`` is the
   reference's next bucket size and ``a`` is the ordered Bell number:
   ``phi = 0`` replays the reference's bucket sizes, ``phi = 1`` draws the
   composition with its exact probability under the *uniform* distribution
   over rankings with ties.

The two limits are exact, which the statistical tests rely on:

* ``phi = 0`` returns the reference ranking itself (same order, same
  bucket sizes) with probability one;
* ``phi = 1`` is *exactly* the uniform distribution over all rankings with
  ties: a ranking with bucket sizes ``(s1, ..., sk)`` is produced by
  ``s1!···sk!`` equiprobable permutations, each with composition
  probability ``n! / (a(n)·s1!···sk!)``, hence probability ``1/a(n)``
  overall — the same law as :func:`repro.generators.uniform.sample_uniform_ranking`,
  checkable against the exact counting functions of that module.

In between, ``phi`` sweeps smoothly from a point mass on the reference to
the uniform baseline, jointly dispersing the order *and* the tie pattern.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import comb, lgamma, log

import numpy as np

from ..core.ranking import Element, Ranking
from ..datasets.dataset import Dataset
from .uniform import _randint_below, ordered_bell_number

__all__ = [
    "uniform_composition_weights",
    "sample_mallows_ties_ranking",
    "mallows_ties_dataset",
]


def uniform_composition_weights(remaining: int) -> list[int]:
    """Unnormalized weights of the next bucket size under the uniform law.

    With ``remaining`` elements left to place, the next bucket of a
    uniformly random ranking with ties has size ``s`` with probability
    ``C(remaining, s) · a(remaining - s) / a(remaining)``; this returns the
    exact integer numerators for ``s = 1 .. remaining``.
    """
    return [
        comb(remaining, size) * ordered_bell_number(remaining - size)
        for size in range(1, remaining + 1)
    ]


def _mallows_order(
    center: Sequence[Element], phi: float, rng: np.random.Generator
) -> list[Element]:
    """Repeated-insertion Mallows permutation with weights ``phi**j``."""
    prefix: list[Element] = []
    for index, element in enumerate(center):
        if phi == 0.0:
            displacement = 0
        else:
            weights = phi ** np.arange(index + 1, dtype=float)
            weights /= weights.sum()
            displacement = int(rng.choice(index + 1, p=weights))
        prefix.insert(len(prefix) - displacement, element)
    return prefix


def _uniform_composition_size(remaining: int, rng: np.random.Generator) -> int:
    """Exact draw of the next bucket size under the uniform rankings law.

    Pure big-integer arithmetic (the weights ``C(j, s)·a(j-s)`` overflow
    float64 around j ≈ 160), mirroring the exactness discipline of
    :mod:`repro.generators.uniform`.
    """
    target = _randint_below(ordered_bell_number(remaining), rng)
    cumulative = 0
    for size in range(1, remaining + 1):
        cumulative += comb(remaining, size) * ordered_bell_number(remaining - size)
        if target < cumulative:
            return size
    return remaining  # pragma: no cover - unreachable, kept as a safety net


def _tempered_composition_size(
    remaining: int, target: int, phi: float, rng: np.random.Generator
) -> int:
    """Draw the next bucket size with weight ``phi**|s - t| · U(s)``.

    The uniform-law weights ``U(s) = C(j, s)·a(j-s)`` are astronomically
    large integers, so the softmax runs in log space (``math.log`` accepts
    arbitrary-precision ints; ``lgamma`` provides the binomial term).
    """
    sizes = np.arange(1, remaining + 1)
    log_binom = np.array(
        [
            lgamma(remaining + 1) - lgamma(s + 1) - lgamma(remaining - s + 1)
            for s in range(1, remaining + 1)
        ]
    )
    log_bell = np.array([log(ordered_bell_number(remaining - s)) for s in sizes])
    logits = log_binom + log_bell + np.abs(sizes - target) * log(phi)
    logits -= logits.max()
    weights = np.exp(logits)
    weights /= weights.sum()
    return 1 + int(rng.choice(remaining, p=weights))


def _tempered_composition(
    n: int,
    reference_sizes: Sequence[int],
    phi: float,
    rng: np.random.Generator,
) -> list[int]:
    """Bucket-size composition interpolating reference (phi=0) and uniform (phi=1).

    Each step draws the next bucket size with weight
    ``phi**|s - t| · U(s)`` where ``U`` is the exact uniform-law weight and
    ``t`` the reference's next bucket size (1 once the reference is
    exhausted, the natural singleton default).  Both limits bypass the
    float softmax entirely: phi=0 replays the reference sizes, phi=1 uses
    exact big-integer sampling, so the uniform law holds for every ``n``.
    """
    sizes: list[int] = []
    remaining = n
    step = 0
    while remaining > 0:
        target = reference_sizes[step] if step < len(reference_sizes) else 1
        target = min(target, remaining)
        if phi == 0.0:
            choice = target
        elif phi == 1.0:
            choice = _uniform_composition_size(remaining, rng)
        else:
            choice = _tempered_composition_size(remaining, target, phi, rng)
        sizes.append(choice)
        remaining -= choice
        step += 1
    return sizes


def sample_mallows_ties_ranking(
    reference: Ranking, phi: float, rng: np.random.Generator
) -> Ranking:
    """Draw one ranking with ties from the Mallows-with-ties model.

    Parameters
    ----------
    reference:
        The reference ranking ``r0`` (may itself contain ties).
    phi:
        Dispersion in ``[0, 1]``: 0 returns ``reference`` exactly, 1 draws
        uniformly among all rankings with ties over its domain.
    rng:
        NumPy random generator; the draw is deterministic given it.
    """
    if not 0.0 <= phi <= 1.0:
        raise ValueError(f"phi must be in [0, 1], got {phi}")
    center = list(reference.elements())
    if not center:
        return Ranking([])
    order = _mallows_order(center, phi, rng)
    sizes = _tempered_composition(len(order), reference.bucket_sizes(), phi, rng)
    buckets: list[list[Element]] = []
    cursor = 0
    for size in sizes:
        buckets.append(order[cursor : cursor + size])
        cursor += size
    return Ranking(buckets)


def mallows_ties_dataset(
    num_rankings: int,
    num_elements: int,
    phi: float,
    rng: np.random.Generator | int | None = None,
    *,
    reference: Ranking | None = None,
    name: str | None = None,
) -> Dataset:
    """Dataset of Mallows-with-ties rankings sharing one reference ranking.

    Without an explicit ``reference``, the identity permutation over
    ``0 .. num_elements-1`` is used, so datasets are reproducible from the
    seed alone.
    """
    generator = _as_generator(rng)
    if reference is None:
        reference = Ranking.from_permutation(list(range(num_elements)))
    rankings = [
        sample_mallows_ties_ranking(reference, phi, generator)
        for _ in range(num_rankings)
    ]
    return Dataset(
        rankings,
        name=name or f"mallows_ties_m{num_rankings}_n{len(reference)}_phi{phi}",
        metadata={"generator": "mallows-ties", "phi": phi},
    )


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
