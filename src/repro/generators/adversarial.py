"""Adversarial dataset regimes stressing structural edge cases.

The paper's synthetic datasets (uniform, Markov similarity, unified top-k)
are well-behaved: complete, moderately tied, homogeneous lengths.  The
scenario workloads additionally stress the algorithms and the normalization
machinery with deliberately hostile regimes:

* **near-total ties** — every ranking is one giant bucket with a handful of
  elements split off, so the tie-handling terms of the generalized
  Kendall-τ distance dominate the score (the regime where Kendall-τ-based
  methods degenerate, Section 2.2);
* **disjoint-support shards** — rankings cover (nearly) disjoint slices of
  the universe, the worst case for unification: almost every element of
  every unified ranking lands in the unification bucket (the pathology
  behind the WebSearch 98% figure of Section 7.3.1);
* **heavy-tailed lengths** — ranking lengths follow a truncated Zipf law,
  mixing a few long rankings with many short ones, so completion work is
  extremely skewed across the dataset.

The shard and heavy-tail regimes produce *incomplete* datasets on purpose;
scenarios route them through the normalization hooks before aggregation.
"""

from __future__ import annotations

import numpy as np

from ..core.ranking import Element, Ranking
from ..datasets.dataset import Dataset

__all__ = [
    "near_total_tie_dataset",
    "disjoint_support_dataset",
    "heavy_tailed_length_dataset",
]


def near_total_tie_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    num_singletons: int = 2,
    name: str | None = None,
) -> Dataset:
    """Rankings that tie almost everything: a few singletons, one huge bucket.

    Each ranking promotes ``num_singletons`` random elements to leading
    singleton buckets and ties every other element in one final bucket.
    """
    generator = _as_generator(rng)
    if num_singletons >= num_elements:
        raise ValueError("num_singletons must be smaller than num_elements")
    elements = list(range(num_elements))
    rankings = []
    for _ in range(num_rankings):
        chosen = generator.choice(num_elements, size=num_singletons, replace=False)
        leaders = [elements[i] for i in chosen]
        rest = [element for element in elements if element not in set(leaders)]
        buckets: list[list[Element]] = [[leader] for leader in leaders]
        buckets.append(rest)
        rankings.append(Ranking(buckets))
    return Dataset(
        rankings,
        name=name or f"near_total_ties_m{num_rankings}_n{num_elements}",
        metadata={"generator": "near-total-ties", "num_singletons": num_singletons},
    )


def disjoint_support_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    overlap: int = 1,
    name: str | None = None,
) -> Dataset:
    """Rankings over (nearly) disjoint shards of the universe.

    The universe is cut into ``num_rankings`` contiguous shards; ranking
    ``i`` is a random permutation of shard ``i`` plus ``overlap`` elements
    borrowed from the next shard (0 gives fully disjoint supports, in which
    case projection would empty the dataset entirely).  The result is
    incomplete by construction and must be unified before aggregation.
    """
    generator = _as_generator(rng)
    if num_rankings < 2:
        raise ValueError("disjoint shards need at least two rankings")
    if num_elements < num_rankings:
        raise ValueError("need at least one element per shard")
    elements = list(range(num_elements))
    boundaries = np.linspace(0, num_elements, num_rankings + 1, dtype=int)
    rankings = []
    for index in range(num_rankings):
        shard = elements[boundaries[index] : boundaries[index + 1]]
        if overlap > 0:
            start = boundaries[(index + 1) % num_rankings]
            borrowed = elements[start : start + overlap]
            shard = list(dict.fromkeys(shard + borrowed))
        order = generator.permutation(len(shard))
        rankings.append(Ranking.from_permutation([shard[i] for i in order]))
    return Dataset(
        rankings,
        name=name or f"disjoint_shards_m{num_rankings}_n{num_elements}",
        metadata={"generator": "disjoint-shards", "overlap": overlap},
    )


def heavy_tailed_length_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    exponent: float = 1.5,
    min_length: int = 2,
    name: str | None = None,
) -> Dataset:
    """Rankings whose lengths follow a truncated Zipf law over the universe.

    Length ``L`` is drawn with probability proportional to ``rank**-exponent``
    over ``[min_length, num_elements]``; each ranking then ranks ``L``
    uniformly chosen elements in random order.  The first ranking is forced
    to full length so the universe stays identifiable, and the second to
    ``min_length`` so the dataset is incomplete by construction.
    """
    generator = _as_generator(rng)
    if min_length > num_elements:
        raise ValueError("min_length exceeds the universe size")
    if num_rankings >= 2 and min_length >= num_elements:
        raise ValueError("min_length must be below the universe size for skewed lengths")
    elements = list(range(num_elements))
    lengths = np.arange(min_length, num_elements + 1)
    weights = (lengths - min_length + 1.0) ** -exponent
    weights /= weights.sum()
    rankings = []
    for index in range(num_rankings):
        if index == 0:
            size = num_elements
        elif index == 1:
            size = min_length
        else:
            size = int(generator.choice(lengths, p=weights))
        chosen = generator.choice(num_elements, size=size, replace=False)
        rankings.append(Ranking.from_permutation([elements[i] for i in chosen]))
    return Dataset(
        rankings,
        name=name or f"heavy_tail_m{num_rankings}_n{num_elements}",
        metadata={"generator": "heavy-tailed-lengths", "exponent": exponent},
    )


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
