"""Permutation models: uniform, Mallows and Plackett–Luce.

Table 2 of the paper lists synthetic permutation datasets used by earlier
studies ([3], [5]): the Mallows model and the Plackett–Luce model, plus
plain uniform permutations.  They are implemented here both for completeness
(so that the prior studies' generation protocols can be replayed on our
algorithm implementations) and because they are useful baselines when
studying the behaviour of the algorithms on tie-free inputs.

* **Uniform permutations** — every strict total order is equally likely.
* **Mallows model** — permutations are drawn with probability proportional
  to ``exp(-theta · D(pi, pi0))`` where ``D`` is the Kendall-τ distance to a
  central permutation ``pi0``.  Sampling uses the repeated-insertion
  procedure (exact, O(n²)).
* **Plackett–Luce model** — elements are drawn without replacement with
  probability proportional to positive weights; higher-weight elements tend
  to appear earlier.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..core.ranking import Element, Ranking
from ..datasets.dataset import Dataset

__all__ = [
    "uniform_permutation",
    "mallows_permutation",
    "plackett_luce_permutation",
    "plackett_luce_utilities",
    "uniform_permutation_dataset",
    "mallows_dataset",
    "plackett_luce_dataset",
]


def uniform_permutation(
    elements: Sequence[Element], rng: np.random.Generator
) -> Ranking:
    """Draw a uniformly random permutation of ``elements``."""
    order = rng.permutation(len(elements))
    return Ranking.from_permutation([elements[i] for i in order])


def mallows_permutation(
    center: Sequence[Element],
    dispersion: float,
    rng: np.random.Generator,
) -> Ranking:
    """Draw one permutation from the Mallows model.

    Uses the repeated-insertion method: elements of the central permutation
    are inserted one by one; the ``i``-th element is inserted at displacement
    ``j`` positions from the end of the current prefix with probability
    proportional to ``exp(-dispersion · j)``.

    Parameters
    ----------
    center:
        The central (modal) permutation ``pi0``.
    dispersion:
        The concentration parameter ``theta >= 0``: 0 gives uniform
        permutations, large values concentrate the distribution around the
        center.
    """
    if dispersion < 0:
        raise ValueError("dispersion must be non-negative")
    prefix: list[Element] = []
    for index, element in enumerate(center):
        # Insertion position counted from the end: displacement j in [0, index]
        # costs j inversions with respect to the center.
        weights = np.array(
            [math.exp(-dispersion * j) for j in range(index + 1)], dtype=float
        )
        weights /= weights.sum()
        displacement = int(rng.choice(index + 1, p=weights))
        prefix.insert(len(prefix) - displacement, element)
    return Ranking.from_permutation(prefix)


def plackett_luce_permutation(
    weights: dict[Element, float], rng: np.random.Generator
) -> Ranking:
    """Draw one permutation from the Plackett–Luce model.

    Elements are selected sequentially without replacement, each draw picking
    element ``e`` with probability ``w(e) / Σ w(remaining)``.
    """
    if any(weight <= 0 for weight in weights.values()):
        raise ValueError("Plackett–Luce weights must be strictly positive")
    remaining = list(weights)
    order: list[Element] = []
    while remaining:
        values = np.array([weights[element] for element in remaining], dtype=float)
        values /= values.sum()
        chosen = int(rng.choice(len(remaining), p=values))
        order.append(remaining.pop(chosen))
    return Ranking.from_permutation(order)


def uniform_permutation_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    name: str | None = None,
) -> Dataset:
    """Dataset of independent uniformly random permutations."""
    generator = _as_generator(rng)
    elements = list(range(num_elements))
    rankings = [uniform_permutation(elements, generator) for _ in range(num_rankings)]
    return Dataset(
        rankings,
        name=name or f"uniform_perm_m{num_rankings}_n{num_elements}",
        metadata={"generator": "uniform-permutations"},
    )


def mallows_dataset(
    num_rankings: int,
    num_elements: int,
    dispersion: float,
    rng: np.random.Generator | int | None = None,
    *,
    name: str | None = None,
) -> Dataset:
    """Dataset of Mallows permutations sharing a common random center."""
    generator = _as_generator(rng)
    elements = list(range(num_elements))
    center_order = generator.permutation(num_elements)
    center = [elements[i] for i in center_order]
    rankings = [
        mallows_permutation(center, dispersion, generator) for _ in range(num_rankings)
    ]
    return Dataset(
        rankings,
        name=name or f"mallows_m{num_rankings}_n{num_elements}_theta{dispersion}",
        metadata={"generator": "mallows", "dispersion": dispersion},
    )


def plackett_luce_utilities(
    num_elements: int,
    skew: float,
    *,
    kind: str = "geometric",
) -> dict[Element, float]:
    """Utility weights over ``0 .. num_elements-1`` with a configurable skew.

    Three skew profiles are provided (all reduce to equal utilities, i.e.
    uniform permutations, at ``skew = 0``):

    * ``"geometric"`` — ``w_i = exp(-skew · i)``: element 0 is best, each
      subsequent element loses a constant log-utility step (the classical
      log-linear quality model);
    * ``"zipf"`` — ``w_i = (i + 1)**-skew``: a heavy-tailed profile where a
      few head elements dominate but the tail stays comparatively flat;
    * ``"linear"`` — ``w_i = 1 + skew·(n-1-i)/(n-1)``: utilities differ by
      at most a factor ``1 + skew``, a weak-signal regime.
    """
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    indices = np.arange(num_elements, dtype=float)
    if kind == "geometric":
        values = np.exp(-skew * indices)
    elif kind == "zipf":
        values = (indices + 1.0) ** -skew
    elif kind == "linear":
        if num_elements > 1:
            values = 1.0 + skew * (num_elements - 1 - indices) / (num_elements - 1)
        else:
            values = np.ones(num_elements)
    else:
        raise ValueError(
            f"unknown utility profile {kind!r}; expected 'geometric', 'zipf' or 'linear'"
        )
    return {int(element): float(value) for element, value in enumerate(values)}


def plackett_luce_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    weight_spread: float = 2.0,
    utilities: dict[Element, float] | None = None,
    skew: float | None = None,
    skew_kind: str = "geometric",
    name: str | None = None,
) -> Dataset:
    """Dataset of Plackett–Luce permutations with configurable utilities.

    By default the historical log-spaced weights are used: ``weight_spread``
    controls how strongly the hidden quality of the elements separates them
    (0 gives uniform permutations, larger values give increasingly
    consistent rankings).  Passing ``skew`` (with ``skew_kind``) switches to
    the :func:`plackett_luce_utilities` profiles, and ``utilities`` supplies
    explicit weights directly.
    """
    generator = _as_generator(rng)
    if utilities is not None:
        weights = dict(utilities)
        metadata: dict[str, object] = {"generator": "plackett-luce", "utilities": "explicit"}
    elif skew is not None:
        weights = plackett_luce_utilities(num_elements, skew, kind=skew_kind)
        metadata = {"generator": "plackett-luce", "skew": skew, "skew_kind": skew_kind}
    else:
        elements = list(range(num_elements))
        exponents = np.linspace(0.0, weight_spread, num_elements)
        weights = {
            element: float(np.exp(exponent))
            for element, exponent in zip(elements, exponents)
        }
        metadata = {"generator": "plackett-luce", "weight_spread": weight_spread}
    rankings = [plackett_luce_permutation(weights, generator) for _ in range(num_rankings)]
    return Dataset(
        rankings,
        name=name or f"plackett_luce_m{num_rankings}_n{num_elements}",
        metadata=metadata,
    )


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
