"""Permutation models: uniform, Mallows and Plackett–Luce.

Table 2 of the paper lists synthetic permutation datasets used by earlier
studies ([3], [5]): the Mallows model and the Plackett–Luce model, plus
plain uniform permutations.  They are implemented here both for completeness
(so that the prior studies' generation protocols can be replayed on our
algorithm implementations) and because they are useful baselines when
studying the behaviour of the algorithms on tie-free inputs.

* **Uniform permutations** — every strict total order is equally likely.
* **Mallows model** — permutations are drawn with probability proportional
  to ``exp(-theta · D(pi, pi0))`` where ``D`` is the Kendall-τ distance to a
  central permutation ``pi0``.  Sampling uses the repeated-insertion
  procedure (exact, O(n²)).
* **Plackett–Luce model** — elements are drawn without replacement with
  probability proportional to positive weights; higher-weight elements tend
  to appear earlier.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..core.ranking import Element, Ranking
from ..datasets.dataset import Dataset

__all__ = [
    "uniform_permutation",
    "mallows_permutation",
    "plackett_luce_permutation",
    "uniform_permutation_dataset",
    "mallows_dataset",
    "plackett_luce_dataset",
]


def uniform_permutation(
    elements: Sequence[Element], rng: np.random.Generator
) -> Ranking:
    """Draw a uniformly random permutation of ``elements``."""
    order = rng.permutation(len(elements))
    return Ranking.from_permutation([elements[i] for i in order])


def mallows_permutation(
    center: Sequence[Element],
    dispersion: float,
    rng: np.random.Generator,
) -> Ranking:
    """Draw one permutation from the Mallows model.

    Uses the repeated-insertion method: elements of the central permutation
    are inserted one by one; the ``i``-th element is inserted at displacement
    ``j`` positions from the end of the current prefix with probability
    proportional to ``exp(-dispersion · j)``.

    Parameters
    ----------
    center:
        The central (modal) permutation ``pi0``.
    dispersion:
        The concentration parameter ``theta >= 0``: 0 gives uniform
        permutations, large values concentrate the distribution around the
        center.
    """
    if dispersion < 0:
        raise ValueError("dispersion must be non-negative")
    prefix: list[Element] = []
    for index, element in enumerate(center):
        # Insertion position counted from the end: displacement j in [0, index]
        # costs j inversions with respect to the center.
        weights = np.array(
            [math.exp(-dispersion * j) for j in range(index + 1)], dtype=float
        )
        weights /= weights.sum()
        displacement = int(rng.choice(index + 1, p=weights))
        prefix.insert(len(prefix) - displacement, element)
    return Ranking.from_permutation(prefix)


def plackett_luce_permutation(
    weights: dict[Element, float], rng: np.random.Generator
) -> Ranking:
    """Draw one permutation from the Plackett–Luce model.

    Elements are selected sequentially without replacement, each draw picking
    element ``e`` with probability ``w(e) / Σ w(remaining)``.
    """
    if any(weight <= 0 for weight in weights.values()):
        raise ValueError("Plackett–Luce weights must be strictly positive")
    remaining = list(weights)
    order: list[Element] = []
    while remaining:
        values = np.array([weights[element] for element in remaining], dtype=float)
        values /= values.sum()
        chosen = int(rng.choice(len(remaining), p=values))
        order.append(remaining.pop(chosen))
    return Ranking.from_permutation(order)


def uniform_permutation_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    name: str | None = None,
) -> Dataset:
    """Dataset of independent uniformly random permutations."""
    generator = _as_generator(rng)
    elements = list(range(num_elements))
    rankings = [uniform_permutation(elements, generator) for _ in range(num_rankings)]
    return Dataset(
        rankings,
        name=name or f"uniform_perm_m{num_rankings}_n{num_elements}",
        metadata={"generator": "uniform-permutations"},
    )


def mallows_dataset(
    num_rankings: int,
    num_elements: int,
    dispersion: float,
    rng: np.random.Generator | int | None = None,
    *,
    name: str | None = None,
) -> Dataset:
    """Dataset of Mallows permutations sharing a common random center."""
    generator = _as_generator(rng)
    elements = list(range(num_elements))
    center_order = generator.permutation(num_elements)
    center = [elements[i] for i in center_order]
    rankings = [
        mallows_permutation(center, dispersion, generator) for _ in range(num_rankings)
    ]
    return Dataset(
        rankings,
        name=name or f"mallows_m{num_rankings}_n{num_elements}_theta{dispersion}",
        metadata={"generator": "mallows", "dispersion": dispersion},
    )


def plackett_luce_dataset(
    num_rankings: int,
    num_elements: int,
    rng: np.random.Generator | int | None = None,
    *,
    weight_spread: float = 2.0,
    name: str | None = None,
) -> Dataset:
    """Dataset of Plackett–Luce permutations with log-spaced element weights.

    ``weight_spread`` controls how strongly the hidden quality of the
    elements separates them: 0 gives uniform permutations, larger values
    give increasingly consistent rankings.
    """
    generator = _as_generator(rng)
    elements = list(range(num_elements))
    exponents = np.linspace(0.0, weight_spread, num_elements)
    weights = {element: float(np.exp(exponent)) for element, exponent in zip(elements, exponents)}
    rankings = [plackett_luce_permutation(weights, generator) for _ in range(num_rankings)]
    return Dataset(
        rankings,
        name=name or f"plackett_luce_m{num_rankings}_n{num_elements}",
        metadata={"generator": "plackett-luce", "weight_spread": weight_spread},
    )


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
