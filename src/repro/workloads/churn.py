"""Write-heavy churn workload: a mutation stream driving live serving.

The read-side counterpart (:mod:`repro.workloads.service_load`) replays a
skewed *request* stream; this module replays a *write* stream.  A scenario
dataset becomes the initial population of a
:class:`~repro.core.live.LiveDataset`, a seeded mix of
add / remove / update mutations churns it, and a
:class:`~repro.service.live.LiveAggregationSession` keeps the consensus
fresh — delta-updating the pairwise weights per write and warm-starting
every repair from the pre-mutation consensus.

The payload reports what the streaming-write machinery is for: per-write
delta cost (independent of the dataset size), repair wall-clock and
convergence deltas, cache invalidations — and a final byte-identical
verification of the delta-maintained weights against a from-scratch
rebuild.

The ``repro-rankagg churn`` command is a thin wrapper over
:func:`run_churn_load`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.live import LiveDataset
from ..core.prepared import prepare_rankings
from ..core.ranking import Ranking
from ..service.frontend import ServiceFrontend
from ..service.live import LiveAggregationSession
from .scenario import get_scenario

__all__ = ["ChurnProfile", "build_mutation_stream", "run_churn_load"]


@dataclass(frozen=True)
class ChurnProfile:
    """Shape of a synthetic write stream.

    Attributes
    ----------
    scenario:
        Scenario whose first dataset seeds the live population.
    scale:
        Scenario scale preset the dataset is built at.
    num_mutations:
        Total writes in the stream.
    mutation_mix:
        Relative weights of (add, remove, update) draws.
    repair_every:
        Writes between consensus repairs (1 = repair after every write).
    algorithm:
        Registry name of the anytime algorithm running the repairs.
    budget_seconds:
        Per-repair time budget (``None`` runs each repair to completion).
    seed:
        Base seed for dataset generation and the mutation draw.
    """

    scenario: str = "mallows-ties-diffuse"
    scale: str = "smoke"
    num_mutations: int = 30
    mutation_mix: tuple[float, float, float] = (0.4, 0.2, 0.4)
    repair_every: int = 1
    algorithm: str = "BioConsert"
    budget_seconds: float | None = 0.25
    seed: int = 2015

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (embedded in the churn-report payload)."""
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "num_mutations": self.num_mutations,
            "mutation_mix": list(self.mutation_mix),
            "repair_every": self.repair_every,
            "algorithm": self.algorithm,
            "budget_seconds": self.budget_seconds,
            "seed": self.seed,
        }


def _random_ranking(elements: list[Any], rng: np.random.Generator) -> Ranking:
    """A random bucket order over ``elements`` (ties included)."""
    order = [elements[int(i)] for i in rng.permutation(len(elements))]
    buckets: list[list[Any]] = []
    index = 0
    while index < len(order):
        width = int(rng.integers(1, 4))
        buckets.append(order[index : index + width])
        index += width
    return Ranking(buckets)


def build_mutation_stream(
    dataset: LiveDataset,
    profile: ChurnProfile | None = None,
) -> list[tuple[str, Any]]:
    """Materialise the seeded write stream for ``dataset``.

    Each item is ``("add", ranking)``, ``("remove", index)`` or
    ``("update", (index, ranking))``; indices are drawn against the
    dataset size as the stream replays (removes are skipped in the draw
    while the dataset holds a single ranking).

    Parameters
    ----------
    dataset:
        The live dataset the stream will be applied to (its element domain
        shapes the generated rankings).
    profile:
        Stream shape; defaults to :class:`ChurnProfile`'s defaults.
    """
    profile = profile or ChurnProfile()
    rng = np.random.default_rng(
        np.random.SeedSequence([profile.seed, dataset.num_elements, profile.num_mutations])
    )
    elements = dataset.elements
    mix = np.asarray(profile.mutation_mix, dtype=float)
    mix = mix / mix.sum()
    stream: list[tuple[str, Any]] = []
    size = dataset.num_rankings
    for _ in range(profile.num_mutations):
        kind = ("add", "remove", "update")[int(rng.choice(3, p=mix))]
        if kind == "remove" and size <= 1:
            kind = "add"
        if kind == "add":
            stream.append(("add", _random_ranking(elements, rng)))
            size += 1
        elif kind == "remove":
            stream.append(("remove", int(rng.integers(size))))
            size -= 1
        else:
            stream.append(
                ("update", (int(rng.integers(size)), _random_ranking(elements, rng)))
            )
    return stream


def run_churn_load(
    profile: ChurnProfile | None = None,
    *,
    frontend: ServiceFrontend | None = None,
) -> dict[str, Any]:
    """Replay a write stream through a live session and report statistics.

    Parameters
    ----------
    profile:
        Stream shape; defaults to :class:`ChurnProfile`'s defaults.
    frontend:
        Optional serving frontend whose cache the session keeps coherent
        (mutations invalidate, repairs re-publish).

    Returns
    -------
    dict
        Machine-readable payload: the profile, per-write delta timings,
        repair statistics (warm fraction, wall-clock, convergence deltas)
        and the final equivalence verification against a from-scratch
        preparation.
    """
    profile = profile or ChurnProfile()
    seed_datasets = get_scenario(profile.scenario).build(profile.scale, profile.seed)
    base = seed_datasets[0]
    live = LiveDataset(
        base.rankings, name=f"churn[{base.name}]", metadata=dict(base.metadata)
    )
    session = LiveAggregationSession(
        live,
        algorithm=profile.algorithm,
        frontend=frontend,
        budget_seconds=profile.budget_seconds,
        seed=profile.seed,
    )
    session.serve()  # initial cold solve
    stream = build_mutation_stream(live, profile)

    delta_seconds: list[float] = []
    repair_seconds: list[float] = []
    score_deltas: list[int] = []
    warm_repairs = 0
    invalidated = 0
    for position, (kind, payload) in enumerate(stream):
        if kind == "add":
            session.add_ranking(payload)
        elif kind == "remove":
            session.remove_ranking(payload)
        else:
            index, ranking = payload
            session.update_ranking(index, ranking)
        delta_seconds.append(live.last_delta_seconds)
        if (position + 1) % profile.repair_every == 0:
            report = session.repair()
            repair_seconds.append(report.repair_seconds)
            warm_repairs += int(report.warm_start)
            invalidated += report.invalidated
            if report.score_delta is not None:
                score_deltas.append(report.score_delta)

    fresh = prepare_rankings(list(live.rankings))
    maintained = live.weights()
    weights_match = bool(
        np.array_equal(maintained.before_matrix, fresh.weights.before_matrix)
        and np.array_equal(maintained.tied_matrix, fresh.weights.tied_matrix)
    )

    def _mean(sample: list[float]) -> float:
        return float(sum(sample) / len(sample)) if sample else 0.0

    return {
        "report": "churn-load",
        "profile": profile.describe(),
        "initial_rankings": base.num_rankings,
        "final_rankings": live.num_rankings,
        "num_elements": live.num_elements,
        "generations": live.generation,
        "delta_mean_seconds": _mean(delta_seconds),
        "delta_max_seconds": max(delta_seconds, default=0.0),
        "repairs": len(repair_seconds),
        "warm_repairs": warm_repairs,
        "repair_mean_seconds": _mean(repair_seconds),
        "repair_max_seconds": max(repair_seconds, default=0.0),
        "score_delta_total": int(sum(score_deltas)),
        "invalidated": invalidated,
        "weights_match_rebuild": weights_match,
        "final_score": session.score,
    }
