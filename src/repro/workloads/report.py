"""Matrix report: per-scenario summaries and the ``workloads_report.json`` file.

A :class:`MatrixReport` carries one :class:`ScenarioResult` per scenario of
the grid: the scenario's identity (family, seed policy, normalization), the
features of the datasets actually built, the per-algorithm summary rows
(the same columns as the paper's Table 4/5: average gap, rank, %optimal,
%first, average seconds) and the engine's execution accounting for that
scenario's shards.

:meth:`MatrixReport.to_payload` is the machine-readable form written to
``workloads_report.json``; :func:`deterministic_payload` strips every
timing- and cache-dependent field from it, which is what the golden-file
regression snapshots are compared against.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..experiments.report import format_percentage, format_seconds, format_table

__all__ = ["ScenarioResult", "MatrixReport", "deterministic_payload"]

# Fields whose values depend on the wall clock or on the cache state; the
# golden snapshots must never include them.
_NONDETERMINISTIC_KEYS = frozenset(
    {
        "average_seconds",
        "wall_seconds",
        "elapsed_seconds",
        "executed_runs",
        "cached_runs",
        "backend",
        "telemetry",
    }
)


@dataclass
class ScenarioResult:
    """Aggregated outcome of one scenario's shards.

    Attributes
    ----------
    scenario, family, seed_policy, normalization, paper_section:
        The scenario's registry identity.
    num_datasets, num_shards:
        How many datasets were built and how many engine jobs ran them.
    dataset_features:
        ``Dataset.describe()`` of every built dataset.
    summary_rows:
        Per-algorithm Table 4/5 columns over the scenario's datasets.
    optimal_scores:
        Exact reference scores, per dataset, when computed.
    executed_runs, cached_runs, wall_seconds:
        Engine accounting for this scenario's shards.
    failed_runs:
        Runs that produced no score (see below).
    telemetry:
        Scenario-scoped telemetry snapshot (the ``matrix.scenario`` span
        subtree) when the matrix ran inside an active
        :mod:`repro.telemetry` session; ``None`` otherwise.  Timing-
        dependent, so stripped from the deterministic golden payload.
    """

    scenario: str
    family: str
    seed_policy: str
    normalization: str | None
    paper_section: str
    num_datasets: int
    num_shards: int
    dataset_features: dict[str, dict[str, Any]]
    summary_rows: list[dict[str, Any]]
    optimal_scores: dict[str, int]
    executed_runs: int
    cached_runs: int
    wall_seconds: float
    # Runs that produced no score: library errors and over-budget verdicts.
    # Surfaced so a failing scenario cannot silently degrade into a report
    # with missing cells (the CLI exits non-zero when any are present).
    failed_runs: list[dict[str, Any]] = field(default_factory=list)
    telemetry: dict[str, Any] | None = None

    @property
    def total_runs(self) -> int:
        return self.executed_runs + self.cached_runs

    def best_row(self) -> dict[str, Any] | None:
        """Summary row of the best-ranked algorithm on this scenario."""
        rows = [row for row in self.summary_rows if not _is_nan(row.get("average_gap"))]
        if not rows:
            return None
        return min(rows, key=lambda row: row["rank"])

    def to_payload(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "family": self.family,
            "seed_policy": self.seed_policy,
            "normalization": self.normalization,
            "paper_section": self.paper_section,
            "num_datasets": self.num_datasets,
            "num_shards": self.num_shards,
            "executed_runs": self.executed_runs,
            "cached_runs": self.cached_runs,
            "wall_seconds": self.wall_seconds,
            "dataset_features": self.dataset_features,
            "optimal_scores": dict(sorted(self.optimal_scores.items())),
            "summary": [dict(row) for row in self.summary_rows],
            "failed_runs": [dict(run) for run in self.failed_runs],
            "telemetry": self.telemetry,
        }


@dataclass
class MatrixReport:
    """Full outcome of a :class:`~repro.workloads.matrix.ScenarioMatrix` run.

    Attributes
    ----------
    scale, seed, shard_size, algorithms, backend:
        The matrix configuration that produced the report.
    scenarios:
        One :class:`ScenarioResult` per scenario of the grid.
    """

    scale: str
    seed: int
    shard_size: int
    algorithms: list[str]
    backend: str
    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def total_runs(self) -> int:
        return sum(result.total_runs for result in self.scenarios)

    @property
    def executed_runs(self) -> int:
        return sum(result.executed_runs for result in self.scenarios)

    @property
    def cached_runs(self) -> int:
        return sum(result.cached_runs for result in self.scenarios)

    @property
    def wall_seconds(self) -> float:
        return sum(result.wall_seconds for result in self.scenarios)

    def failed_runs(self) -> list[dict[str, Any]]:
        """Every failed run across the grid, tagged with its scenario."""
        failures: list[dict[str, Any]] = []
        for result in self.scenarios:
            for run in result.failed_runs:
                failures.append({"scenario": result.scenario, **run})
        return failures

    def scenario(self, name: str) -> ScenarioResult:
        for result in self.scenarios:
            if result.scenario == name:
                return result
        raise KeyError(f"no scenario {name!r} in this report")

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict[str, Any]:
        """Machine-readable report (the ``workloads_report.json`` content)."""
        return {
            "report": "scenario-matrix",
            "scale": self.scale,
            "seed": self.seed,
            "shard_size": self.shard_size,
            "algorithms": list(self.algorithms),
            "backend": self.backend,
            "total_runs": self.total_runs,
            "executed_runs": self.executed_runs,
            "cached_runs": self.cached_runs,
            "wall_seconds": self.wall_seconds,
            "scenarios": [result.to_payload() for result in self.scenarios],
        }

    def write(self, path: str | Path) -> Path:
        """Write the machine-readable report to ``path`` (JSON)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(_sanitize(self.to_payload()), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def format(self) -> str:
        """One text table: a row per scenario with its headline statistics."""
        rows = []
        for result in self.scenarios:
            best = result.best_row()
            rows.append(
                {
                    "scenario": result.scenario,
                    "family": result.family,
                    "datasets": result.num_datasets,
                    "runs": result.total_runs,
                    "cached": result.cached_runs,
                    "best algorithm": best["algorithm"] if best else "—",
                    "best avg gap": format_percentage(best["average_gap"]) if best else "—",
                    "wall": format_seconds(result.wall_seconds),
                }
            )
        columns = [
            ("scenario", "Scenario"),
            ("family", "Family"),
            ("datasets", "Datasets"),
            ("runs", "Runs"),
            ("cached", "Cached"),
            ("best algorithm", "Best algorithm"),
            ("best avg gap", "Best avg gap"),
            ("wall", "Wall"),
        ]
        title = (
            f"Scenario matrix — scale={self.scale}, seed={self.seed}, "
            f"backend={self.backend}"
        )
        return format_table(rows, columns, title=title)


def deterministic_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Strip timing- and cache-dependent fields from a report payload.

    The result only depends on the matrix definition and the seed, so it is
    byte-stable across machines, backends and cache states — the form the
    golden regression snapshots are stored in.
    """
    return _strip(_sanitize(payload))


def _strip(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            key: _strip(item)
            for key, item in value.items()
            if key not in _NONDETERMINISTIC_KEYS
        }
    if isinstance(value, list):
        return [_strip(item) for item in value]
    return value


def _sanitize(value: Any) -> Any:
    """Make a payload strictly JSON-roundtrippable (NaN -> None)."""
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and math.isnan(value)
