"""Scenario registry: named, versioned dataset regimes for the workload matrix.

A :class:`Scenario` packages everything needed to regenerate a family of
input datasets on demand: a human-readable identity (name, family,
description, the paper section it generalizes), a *generator spec* (the
builder callable plus the scale knobs it reads), the normalization mode
applied before aggregation, the seed policy, and expected-shape metadata
that every built dataset is validated against — so a scenario that drifts
out of its declared shape fails at build time, not deep inside an
aggregation run.

Scenarios are registered with the :func:`register_scenario` decorator and
looked up with :func:`get_scenario` / :func:`list_scenarios`; the built-in
catalog lives in :mod:`repro.workloads.catalog` and is loaded lazily on
first lookup, so user code can register additional scenarios before or
after importing the catalog.

Seed policies
-------------

``"per-dataset"``
    Dataset ``i`` of a scenario draws from an independent generator derived
    from ``(base_seed, scenario_name, i)`` via ``np.random.SeedSequence``.
    Datasets are reproducible *individually*, whatever sharding or
    execution order the matrix driver uses.

``"shared-stream"``
    All datasets of the scenario consume one sequential generator seeded
    from ``(base_seed, scenario_name)`` — the style of the paper's
    experiment drivers, where dataset ``i`` depends on the draws made for
    datasets ``0..i-1``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..datasets.dataset import Dataset
from ..datasets.normalization import ensure_complete

__all__ = [
    "ScenarioScale",
    "SCENARIO_SCALES",
    "get_scenario_scale",
    "Scenario",
    "ScenarioShapeError",
    "register_scenario",
    "unregister_scenario",
    "scenario_names",
    "get_scenario",
    "list_scenarios",
]

SEED_POLICIES = ("per-dataset", "shared-stream")


@dataclass(frozen=True)
class ScenarioScale:
    """Size knobs the scenario builders read (one preset per matrix scale).

    Attributes
    ----------
    name:
        Preset name (``smoke`` / ``default``).
    datasets_per_scenario:
        How many datasets each scenario builds.
    num_rankings, num_elements:
        The ``m`` and ``n`` of each built dataset.
    large_universe:
        Universe size for the scenarios that cut from a larger domain.
    top_k:
        Cut length of the top-k scenarios.
    markov_steps:
        Chain steps of the Markov-similarity scenarios.
    exact_max_elements:
        Attach the exact gap reference only up to this element count.
    time_limit_seconds:
        Per-run time budget of matrix runs at this scale.
    """

    name: str
    datasets_per_scenario: int
    num_rankings: int
    num_elements: int
    large_universe: int
    top_k: int
    markov_steps: int
    exact_max_elements: int
    time_limit_seconds: float | None

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "datasets_per_scenario": self.datasets_per_scenario,
            "num_rankings": self.num_rankings,
            "num_elements": self.num_elements,
            "large_universe": self.large_universe,
            "top_k": self.top_k,
            "markov_steps": self.markov_steps,
            "exact_max_elements": self.exact_max_elements,
            "time_limit_seconds": self.time_limit_seconds,
        }


SCENARIO_SCALES: dict[str, ScenarioScale] = {
    # Seconds; used by the conformance suite, CI and `--matrix smoke`.
    "smoke": ScenarioScale(
        name="smoke",
        datasets_per_scenario=2,
        num_rankings=4,
        num_elements=7,
        large_universe=14,
        top_k=5,
        markov_steps=200,
        exact_max_elements=8,
        time_limit_seconds=30.0,
    ),
    # Minutes on a laptop; the benchmark harness scale.
    "default": ScenarioScale(
        name="default",
        datasets_per_scenario=5,
        num_rankings=7,
        num_elements=15,
        large_universe=40,
        top_k=12,
        markov_steps=2000,
        exact_max_elements=12,
        time_limit_seconds=120.0,
    ),
}


def get_scenario_scale(scale: str | ScenarioScale) -> ScenarioScale:
    """Resolve a scenario scale preset by name (or pass one through)."""
    if isinstance(scale, ScenarioScale):
        return scale
    try:
        return SCENARIO_SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scenario scale {scale!r}; expected one of {sorted(SCENARIO_SCALES)}"
        ) from None


class ScenarioShapeError(ValueError):
    """A built dataset violates its scenario's expected-shape metadata."""


# Builder contract: (scale, rng, index) -> one raw (pre-normalization) Dataset.
ScenarioBuilder = Callable[[ScenarioScale, np.random.Generator, int], Dataset]


@dataclass(frozen=True)
class Scenario:
    """A named, regenerable dataset regime.

    Attributes
    ----------
    name:
        Unique registry key (kebab-case by convention).
    family:
        Generator family (``"uniform"``, ``"mallows-ties"``, ``"adversarial"``, ...).
    description:
        One-line human description shown by ``scenarios list``.
    builder:
        Callable ``(scale, rng, index) -> Dataset`` producing one raw dataset.
    normalization:
        Normalization process applied after building (``"projection"``,
        ``"unification"``, ``"unified-broken"``) or ``None`` when the raw
        datasets are already complete.
    seed_policy:
        ``"per-dataset"`` or ``"shared-stream"`` (see module docstring).
    paper_section:
        The paper section this scenario reproduces or generalizes.
    expected:
        Expected-shape metadata validated against every built dataset:
        ``complete`` (bool, checked post-normalization), ``contains_ties``
        (bool or None for "either"), ``min_elements`` / ``max_elements``,
        ``raw_complete`` (bool, checked pre-normalization).
    tags:
        Free-form labels (``"adversarial"``, ``"paper"``, ``"new-family"``).
    """

    name: str
    family: str
    description: str
    builder: ScenarioBuilder
    normalization: str | None = None
    seed_policy: str = "per-dataset"
    paper_section: str = ""
    expected: Mapping[str, Any] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.seed_policy not in SEED_POLICIES:
            raise ValueError(
                f"unknown seed policy {self.seed_policy!r}; expected one of {SEED_POLICIES}"
            )

    # ------------------------------------------------------------------ #
    # Seeding
    # ------------------------------------------------------------------ #
    def _seed_material(self, base_seed: int, index: int | None = None) -> list[int]:
        digest = hashlib.sha256(self.name.encode("utf-8")).digest()
        material = [base_seed, int.from_bytes(digest[:8], "big")]
        if index is not None:
            material.append(index)
        return material

    def rng_for(self, base_seed: int, index: int) -> np.random.Generator:
        """Generator for dataset ``index`` under the ``per-dataset`` policy."""
        return np.random.default_rng(np.random.SeedSequence(self._seed_material(base_seed, index)))

    def stream_rng(self, base_seed: int) -> np.random.Generator:
        """Shared sequential generator under the ``shared-stream`` policy."""
        return np.random.default_rng(np.random.SeedSequence(self._seed_material(base_seed)))

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def build(
        self,
        scale: str | ScenarioScale = "smoke",
        base_seed: int = 2015,
        *,
        num_datasets: int | None = None,
    ) -> list[Dataset]:
        """Build, normalize and validate the scenario's datasets.

        Every returned dataset is complete (the scenario's normalization
        mode has been applied), carries provenance metadata (scenario name,
        seed policy, base seed, index) and satisfies the scenario's
        expected-shape constraints.
        """
        scale = get_scenario_scale(scale)
        count = scale.datasets_per_scenario if num_datasets is None else num_datasets
        stream = self.stream_rng(base_seed) if self.seed_policy == "shared-stream" else None
        datasets = []
        for index in range(count):
            rng = stream if stream is not None else self.rng_for(base_seed, index)
            raw = self.builder(scale, rng, index)
            self._check_expected(raw, stage="raw")
            dataset = ensure_complete(raw, self.normalization)
            dataset = dataset.with_metadata(
                scenario=self.name,
                scenario_family=self.family,
                scenario_seed_policy=self.seed_policy,
                scenario_base_seed=base_seed,
                scenario_index=index,
            )
            self._check_expected(dataset, stage="normalized")
            datasets.append(dataset)
        return datasets

    def _check_expected(self, dataset: Dataset, *, stage: str) -> None:
        expected = dict(self.expected)
        checks: list[tuple[str, bool]] = []
        if stage == "raw":
            if "raw_complete" in expected:
                checks.append(
                    (f"raw_complete={expected['raw_complete']}",
                     dataset.is_complete == expected["raw_complete"])
                )
        else:
            if expected.get("complete", True):
                checks.append(("complete", dataset.is_complete))
            ties = expected.get("contains_ties")
            if ties is not None:
                checks.append((f"contains_ties={ties}", dataset.contains_ties() == ties))
            if "min_elements" in expected:
                checks.append(
                    (f"min_elements={expected['min_elements']}",
                     dataset.num_elements >= expected["min_elements"])
                )
            if "max_elements" in expected:
                checks.append(
                    (f"max_elements={expected['max_elements']}",
                     dataset.num_elements <= expected["max_elements"])
                )
        for label, ok in checks:
            if not ok:
                raise ScenarioShapeError(
                    f"scenario {self.name!r}: dataset {dataset.name!r} violates "
                    f"expected shape [{label}] at the {stage} stage"
                )

    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, Any]:
        """Registry-card description (used by ``scenarios list|describe``)."""
        return {
            "name": self.name,
            "family": self.family,
            "description": self.description,
            "normalization": self.normalization or "none (complete by construction)",
            "seed_policy": self.seed_policy,
            "paper_section": self.paper_section or "—",
            "expected": dict(self.expected),
            "tags": list(self.tags),
        }


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, Scenario] = {}
_catalog_loaded = False


def register_scenario(
    name: str,
    *,
    family: str,
    description: str,
    normalization: str | None = None,
    seed_policy: str = "per-dataset",
    paper_section: str = "",
    expected: Mapping[str, Any] | None = None,
    tags: tuple[str, ...] = (),
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator registering a builder function as a named scenario.

    The decorated function keeps working as a plain builder; the registry
    entry wraps it with the declared normalization / seed policy / shape.

    Parameters
    ----------
    name:
        Unique registry key.
    family:
        Generator family label (``uniform``, ``mallows-ties``, ...).
    description:
        One-line human description shown by ``scenarios list``.
    normalization:
        Normalization applied after building, or ``None`` when the raw
        datasets are already complete.
    seed_policy:
        ``per-dataset`` or ``shared-stream`` (see the module docstring).
    paper_section:
        The paper section the scenario reproduces or generalizes.
    expected:
        Expected-shape metadata validated against every built dataset.
    tags:
        Free-form labels used for filtering.
    """

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = Scenario(
            name=name,
            family=family,
            description=description,
            builder=builder,
            normalization=normalization,
            seed_policy=seed_policy,
            paper_section=paper_section,
            expected=dict(expected or {}),
            tags=tuple(tags),
        )
        return builder

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove the scenario registered under ``name`` (used by tests)."""
    _REGISTRY.pop(name, None)


def _load_catalog() -> None:
    global _catalog_loaded
    if not _catalog_loaded:
        _catalog_loaded = True
        from . import catalog  # noqa: F401  (registers the built-in scenarios)


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario."""
    _load_catalog()
    return sorted(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    _load_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_scenarios(*, tag: str | None = None) -> list[Scenario]:
    """All registered scenarios, sorted by name (optionally filtered by tag)."""
    _load_catalog()
    scenarios = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    if tag is not None:
        scenarios = [scenario for scenario in scenarios if tag in scenario.tags]
    return scenarios
