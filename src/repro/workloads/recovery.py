"""Kill-restart churn: prove no acknowledged write survives only in RAM.

The churn workload (:mod:`repro.workloads.churn`) verifies the
delta-maintenance math; this module verifies the *durability* claim on
top of it.  A child process applies a pre-materialised mutation stream
through a journaled :class:`~repro.service.live.LiveAggregationSession`,
acknowledging each write over a pipe only after the journal append
returned.  The parent SIGKILLs the child at seeded points mid-stream —
no atexit, no flush-on-shutdown, the genuine worst case — then replays
the journal and checks the recovery invariant:

* every acknowledged mutation is in the replayed state
  (``recovered generation >= acks received``);
* a torn trailing record (the append the kill interrupted) is truncated,
  never mistaken for data;
* the next round resumes exactly at the recovered generation, so the
  stream is applied once — no loss, no double-apply.

After the final (uninterrupted) round the replayed dataset must be
byte-identical — pairwise weight matrices and content fingerprint — to a
from-scratch :func:`~repro.core.prepared.prepare_rankings` over the same
stream applied to a fresh dataset.

The ``repro-rankagg recovery-churn`` command is a thin wrapper over
:func:`run_kill_restart_churn`; the CI ``recovery`` job runs it as the
crash-safety smoke.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.journal import journal_exists, replay_journal
from ..core.live import LiveDataset
from ..core.prepared import prepare_rankings
from ..service.live import LiveAggregationSession
from .churn import ChurnProfile, build_mutation_stream
from .scenario import get_scenario

__all__ = ["KillRestartProfile", "run_kill_restart_churn"]


@dataclass(frozen=True)
class KillRestartProfile:
    """Shape of a kill-restart churn run.

    Attributes
    ----------
    scenario:
        Scenario whose first dataset seeds the live population.
    scale:
        Scenario scale preset the dataset is built at.
    num_mutations:
        Total writes in the stream (across all restarts).
    kill_points:
        Acknowledged-write counts at which the worker is SIGKILLed; each
        restart resumes from the recovered generation.  Must be strictly
        increasing and below ``num_mutations`` (the final round runs to
        completion).
    repair_every:
        Acknowledged writes between consensus repairs inside the worker
        (repair records exercise the warm-start path across restarts).
    fsync:
        Journal durability policy of the worker sessions.
    algorithm:
        Registry name of the anytime algorithm running the repairs.
    budget_seconds:
        Per-repair time budget.
    seed:
        Base seed for dataset generation and the mutation draw.
    """

    scenario: str = "mallows-ties-diffuse"
    scale: str = "smoke"
    num_mutations: int = 40
    kill_points: tuple[int, ...] = (12, 27)
    repair_every: int = 8
    fsync: str = "batch"
    algorithm: str = "BioConsert"
    budget_seconds: float | None = 0.1
    seed: int = 2015

    def __post_init__(self) -> None:
        points = tuple(self.kill_points)
        if any(b <= a for a, b in zip(points, points[1:])):
            raise ValueError(f"kill_points must be increasing, got {points}")
        if points and points[-1] >= self.num_mutations:
            raise ValueError(
                f"kill_points {points} must stay below "
                f"num_mutations={self.num_mutations} so the final round "
                "has work left"
            )

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (embedded in the report payload)."""
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "num_mutations": self.num_mutations,
            "kill_points": list(self.kill_points),
            "repair_every": self.repair_every,
            "fsync": self.fsync,
            "algorithm": self.algorithm,
            "budget_seconds": self.budget_seconds,
            "seed": self.seed,
        }


def _apply(session: LiveAggregationSession, item: tuple[str, Any]) -> None:
    kind, payload = item
    if kind == "add":
        session.add_ranking(payload)
    elif kind == "remove":
        session.remove_ranking(payload)
    else:
        index, ranking = payload
        session.update_ranking(index, ranking)


def _churn_worker(
    journal_dir: str,
    base_rankings: list[Any],
    stream: list[tuple[str, Any]],
    profile: KillRestartProfile,
    conn: Any,
) -> None:
    """Apply the stream tail through a journaled session, acking each write.

    Runs in a child process.  The ack for write ``k`` is sent only after
    its journal append returned — the exact moment a server would answer
    the client — so a SIGKILL can never catch an acknowledged write
    outside the journal.
    """
    directory = Path(journal_dir)
    if journal_exists(directory):
        session = LiveAggregationSession.recover(
            directory,
            algorithm=profile.algorithm,
            budget_seconds=profile.budget_seconds,
            seed=profile.seed,
            journal_fsync=profile.fsync,
        )
    else:
        session = LiveAggregationSession(
            base_rankings,
            algorithm=profile.algorithm,
            budget_seconds=profile.budget_seconds,
            seed=profile.seed,
            journal_dir=directory,
            journal_fsync=profile.fsync,
        )
    offset = session.dataset.generation  # mutations already recovered
    conn.send(("resumed", offset))
    for position in range(offset, len(stream)):
        _apply(session, stream[position])
        conn.send(("ack", position + 1))
        if (position + 1) % profile.repair_every == 0:
            session.repair()
    session.repair()
    session.close()
    conn.send(("done", len(stream)))
    conn.close()


def run_kill_restart_churn(
    profile: KillRestartProfile | None = None,
    *,
    journal_dir: str | Path | None = None,
) -> dict[str, Any]:
    """SIGKILL a journaled churn worker mid-stream; verify nothing acked is lost.

    Parameters
    ----------
    profile:
        Run shape; defaults to :class:`KillRestartProfile`'s defaults.
    journal_dir:
        Journal location (a temporary directory must be provided by the
        caller when running repeatedly; defaults to
        ``kill_restart_journal`` under the working directory).

    Returns
    -------
    dict
        Machine-readable payload: the profile, one entry per round
        (acks received, recovered generation, truncated records, replay
        wall-clock) and the final byte-identity verification.
    """
    profile = profile or KillRestartProfile()
    directory = Path(journal_dir or "kill_restart_journal")
    directory.mkdir(parents=True, exist_ok=True)
    if any(directory.iterdir()):
        raise ValueError(f"journal_dir {directory} must start empty")

    base = get_scenario(profile.scenario).build(profile.scale, profile.seed)[0]
    reference = LiveDataset(base.rankings, name=f"recovery[{base.name}]")
    stream_profile = ChurnProfile(
        scenario=profile.scenario,
        scale=profile.scale,
        num_mutations=profile.num_mutations,
        algorithm=profile.algorithm,
        budget_seconds=profile.budget_seconds,
        seed=profile.seed,
    )
    stream = build_mutation_stream(reference, stream_profile)

    context = multiprocessing.get_context("fork")
    rounds: list[dict[str, Any]] = []
    targets = [*profile.kill_points, None]  # None = run to completion
    for target in targets:
        parent_conn, child_conn = context.Pipe(duplex=False)
        worker = context.Process(
            target=_churn_worker,
            args=(str(directory), list(base.rankings), stream, profile, child_conn),
        )
        worker.start()
        child_conn.close()
        acked = 0
        resumed_at = None
        finished = False
        while True:
            try:
                kind, value = parent_conn.recv()
            except EOFError:
                break
            if kind == "resumed":
                resumed_at = value
            elif kind == "ack":
                acked = value
                if target is not None and acked >= target:
                    os.kill(worker.pid, signal.SIGKILL)
                    break
            elif kind == "done":
                finished = True
                break
        worker.join()
        # Acks the child pushed into the pipe before dying were *sent*,
        # hence acknowledged: they count against the durability invariant.
        while parent_conn.poll():
            try:
                kind, value = parent_conn.recv()
            except EOFError:
                break
            if kind == "ack":
                acked = value
            elif kind == "done":
                finished = True
        parent_conn.close()

        replay_started = time.perf_counter()
        result = replay_journal(directory)
        replay_seconds = time.perf_counter() - replay_started
        lost = acked - result.generation
        rounds.append(
            {
                "killed": target is not None,
                "resumed_at": resumed_at,
                "acked": acked,
                "recovered_generation": result.generation,
                "lost_acks": max(0, lost),
                "truncated_records": result.truncated_records,
                "replayed_records": result.replayed_records,
                "from_snapshot": result.from_snapshot,
                "replay_seconds": replay_seconds,
                "finished": finished,
            }
        )
        if finished:
            break

    # Final verification: the same stream applied to a fresh dataset must
    # reproduce the recovered state bit for bit.
    final = replay_journal(directory)
    fresh = LiveDataset(base.rankings, name=final.dataset.name)
    fresh_session = LiveAggregationSession(
        fresh, algorithm=profile.algorithm, budget_seconds=profile.budget_seconds
    )
    for item in stream:
        _apply(fresh_session, item)
    prepared = prepare_rankings(list(fresh.rankings))
    recovered_weights = final.dataset.weights()
    weights_match = bool(
        np.array_equal(
            recovered_weights.before_matrix, prepared.weights.before_matrix
        )
        and np.array_equal(
            recovered_weights.tied_matrix, prepared.weights.tied_matrix
        )
    )
    fingerprint_match = (
        final.dataset.content_fingerprint() == fresh.content_fingerprint()
    )
    return {
        "report": "kill-restart-churn",
        "profile": profile.describe(),
        "rounds": rounds,
        "kills": sum(1 for entry in rounds if entry["killed"]),
        "total_truncated_records": sum(r["truncated_records"] for r in rounds),
        "zero_lost_acks": all(r["lost_acks"] == 0 for r in rounds),
        "completed": rounds[-1]["finished"] if rounds else False,
        "final_generation": final.generation,
        "weights_match_rebuild": weights_match,
        "fingerprint_match": fingerprint_match,
        "consensus_recovered": final.consensus is not None,
    }
