"""Scenario workload subsystem.

Turns the ad-hoc dataset regimes of the paper's evaluation into a named,
versioned scenario catalog, adds new ranking families (Mallows-with-ties,
skew-controlled Plackett–Luce, adversarial regimes), and drives
(scenario × algorithm × scale) grids through the batch execution engine
with shard-level batching and aliasing-proof cache keys.

Quickstart
----------

>>> from repro.workloads import ScenarioMatrix, get_scenario, scenario_names
>>> scenario_names()                                      # doctest: +ELLIPSIS
['biomedical-like', 'disjoint-shards', ...]
>>> datasets = get_scenario("mallows-ties-diffuse").build("smoke", 7)
>>> report = ScenarioMatrix(scale="smoke").run()          # doctest: +SKIP
>>> report.write("workloads_report.json")                 # doctest: +SKIP
"""

from .churn import ChurnProfile, build_mutation_stream, run_churn_load
from .http_load import (
    HttpLoadProfile,
    HttpSchedule,
    ScheduledRequest,
    build_http_schedule,
    drive_http_load,
    run_http_load,
)
from .matrix import DEFAULT_MATRIX_ALGORITHMS, ScenarioMatrix
from .recovery import KillRestartProfile, run_kill_restart_churn
from .report import MatrixReport, ScenarioResult, deterministic_payload
from .service_load import (
    ServiceLoadProfile,
    build_service_requests,
    run_service_load,
)
from .scenario import (
    SCENARIO_SCALES,
    Scenario,
    ScenarioScale,
    ScenarioShapeError,
    get_scenario,
    get_scenario_scale,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)

__all__ = [
    "Scenario",
    "ScenarioScale",
    "ScenarioShapeError",
    "SCENARIO_SCALES",
    "get_scenario_scale",
    "register_scenario",
    "unregister_scenario",
    "scenario_names",
    "get_scenario",
    "list_scenarios",
    "ScenarioMatrix",
    "DEFAULT_MATRIX_ALGORITHMS",
    "MatrixReport",
    "ScenarioResult",
    "deterministic_payload",
    "ServiceLoadProfile",
    "build_service_requests",
    "run_service_load",
    "ChurnProfile",
    "build_mutation_stream",
    "run_churn_load",
    "KillRestartProfile",
    "run_kill_restart_churn",
    "HttpLoadProfile",
    "HttpSchedule",
    "ScheduledRequest",
    "build_http_schedule",
    "drive_http_load",
    "run_http_load",
]
