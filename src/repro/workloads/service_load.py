"""Service-load workload: a skewed request stream driving the frontend.

Real serving traffic is heavily repetitive — a few popular inputs account
for most requests.  This module turns the scenario catalog into such a
stream: the distinct datasets of one or more scenarios become the request
population, a Zipf-like popularity law decides how often each is asked
for, and the stream is replayed through a
:class:`~repro.service.ServiceFrontend` in batches — exercising exactly
the serving-side machinery the frontend exists for (request coalescing
inside a batch, the memory/disk cache tiers across batches).

The ``repro-rankagg serve`` command is a thin wrapper over
:func:`build_service_requests` + :func:`run_service_load`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..datasets.dataset import Dataset
from ..service.frontend import ServiceFrontend, ServiceRequest
from .scenario import get_scenario

__all__ = ["ServiceLoadProfile", "build_service_requests", "run_service_load"]


@dataclass(frozen=True)
class ServiceLoadProfile:
    """Shape of a synthetic request stream.

    Attributes
    ----------
    scenarios:
        Scenario names whose datasets form the request population.
    scale:
        Scenario scale preset the datasets are built at.
    num_requests:
        Total number of requests in the stream.
    skew:
        Zipf exponent of the popularity law over the distinct datasets
        (0 = uniform traffic; higher = a few datasets dominate).
    priority:
        Guidance priority carried by every request.
    budget_seconds:
        Per-request time budget.
    batch_size:
        Requests per :meth:`~repro.service.ServiceFrontend.submit_batch`
        call (coalescing happens within a batch).
    seed:
        Base seed for both dataset generation and the popularity draw.
    """

    scenarios: tuple[str, ...] = ("mallows-ties-diffuse", "markov-similarity")
    scale: str = "smoke"
    num_requests: int = 50
    skew: float = 1.1
    priority: str = "balanced"
    budget_seconds: float = 0.25
    batch_size: int = 8
    seed: int = 2015

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (embedded in the load-report payload)."""
        return {
            "scenarios": list(self.scenarios),
            "scale": self.scale,
            "num_requests": self.num_requests,
            "skew": self.skew,
            "priority": self.priority,
            "budget_seconds": self.budget_seconds,
            "batch_size": self.batch_size,
            "seed": self.seed,
        }


def _population(profile: ServiceLoadProfile) -> list[Dataset]:
    """The distinct datasets of the profile's scenarios, in catalog order."""
    datasets: list[Dataset] = []
    for name in profile.scenarios:
        datasets.extend(get_scenario(name).build(profile.scale, profile.seed))
    if not datasets:
        raise ValueError(f"service-load profile selects no dataset: {profile}")
    return datasets


def build_service_requests(
    profile: ServiceLoadProfile | None = None,
) -> list[ServiceRequest]:
    """Materialise the request stream described by ``profile``.

    Dataset ``i`` of the population is drawn with probability proportional
    to ``1 / (i + 1) ** skew`` — the classic Zipf popularity law — so the
    stream repeats a few datasets often and the rest rarely, which is what
    makes the frontend's cache tiers and coalescing observable.

    Parameters
    ----------
    profile:
        Stream shape; defaults to :class:`ServiceLoadProfile`'s defaults.
    """
    profile = profile or ServiceLoadProfile()
    datasets = _population(profile)
    rng = np.random.default_rng(
        np.random.SeedSequence([profile.seed, len(datasets), profile.num_requests])
    )
    weights = 1.0 / np.power(np.arange(1, len(datasets) + 1), profile.skew)
    weights /= weights.sum()
    choices = rng.choice(len(datasets), size=profile.num_requests, p=weights)
    return [
        ServiceRequest(
            dataset=datasets[int(index)],
            priority=profile.priority,
            budget_seconds=profile.budget_seconds,
            request_id=f"req-{position:04d}",
        )
        for position, index in enumerate(choices)
    ]


def run_service_load(
    frontend: ServiceFrontend,
    profile: ServiceLoadProfile | None = None,
    *,
    requests: list[ServiceRequest] | None = None,
) -> dict[str, Any]:
    """Replay a request stream through ``frontend`` and report statistics.

    Parameters
    ----------
    frontend:
        The serving frontend under load.
    profile:
        Stream shape (ignored for stream construction when ``requests`` is
        given, but still recorded in the payload).
    requests:
        Pre-built stream; defaults to :func:`build_service_requests`.

    Returns
    -------
    dict
        Machine-readable payload: the profile, the population size, the
        frontend's session statistics and a per-source response breakdown.
    """
    profile = profile or ServiceLoadProfile()
    stream = requests if requests is not None else build_service_requests(profile)
    sources: dict[str, int] = {}
    distinct = len({id(request.dataset) for request in stream})
    for start in range(0, len(stream), profile.batch_size):
        batch = stream[start : start + profile.batch_size]
        for response in frontend.submit_batch(batch):
            sources[response.source] = sources.get(response.source, 0) + 1
    return {
        "report": "service-load",
        "profile": profile.describe(),
        "distinct_datasets": distinct,
        "responses_by_source": dict(sorted(sources.items())),
        "frontend": frontend.describe(),
    }
