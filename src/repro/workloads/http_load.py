"""HTTP load generator: seeded schedules driven over the real socket path.

The socket-path counterpart of :mod:`repro.workloads.service_load`.  Where
that module replays a skewed stream through an in-process
:class:`~repro.service.ServiceFrontend`, this one drives a running
:class:`~repro.service.http.HttpAggregationServer` through real
connections, in two classic load-testing shapes:

* **closed loop** — ``concurrency`` workers, each with its own keep-alive
  connection, firing its next request the moment the previous answer
  lands.  Measures saturated throughput.
* **open loop** — requests fire at schedule-fixed offsets (seeded
  exponential inter-arrivals at ``rate`` req/s) regardless of how fast
  answers come back, so queueing delay shows up in the latency tail
  instead of silently throttling the offered load.

Everything about a run is **deterministic from the profile's seed**: the
request population, the Zipf popularity draw, the open-loop arrival
offsets and the per-request wire payloads are all fixed by
:func:`build_http_schedule`, and :meth:`HttpSchedule.fingerprint` digests
the whole schedule so a replay can assert byte-identical construction.
The report likewise digests every answer's content
(:func:`~repro.service.http.protocol.result_fingerprint`, in schedule
order) into ``results_fingerprint`` — two runs against the same server
state must produce the same value, which is the load generator's
determinism contract (pinned by ``tests/workloads/test_http_load.py``).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..datasets.dataset import Dataset
from ..service.http.client import AsyncHttpClient
from ..service.http.protocol import encode_aggregate_request, result_fingerprint
from .scenario import get_scenario

__all__ = [
    "HttpLoadProfile",
    "HttpSchedule",
    "ScheduledRequest",
    "build_http_schedule",
    "drive_http_load",
    "run_http_load",
]


@dataclass(frozen=True)
class HttpLoadProfile:
    """Shape of one socket-path load run.

    Attributes
    ----------
    scenarios:
        Scenario names whose datasets form the request population.
    scale:
        Scenario scale preset the datasets are built at.
    num_requests:
        Total requests in the schedule.
    skew:
        Zipf exponent of the popularity law over the distinct datasets.
    priority:
        Guidance priority carried by every request.
    budget_seconds:
        Per-request compute budget.
    deadline_seconds:
        Per-request total-latency deadline (``None`` = no deadline).
    algorithm:
        Pin one registry algorithm on every request (``None`` races the
        guidance portfolio).
    loop:
        ``"closed"`` (concurrency-limited) or ``"open"``
        (arrival-rate-limited).
    concurrency:
        Closed-loop worker count (also the open-loop connection-pool
        floor).
    rate:
        Open-loop mean arrival rate in requests/second.
    seed:
        Base seed fixing the population, the popularity draw and the
        arrival offsets.
    """

    scenarios: tuple[str, ...] = ("mallows-ties-diffuse", "markov-similarity")
    scale: str = "smoke"
    num_requests: int = 50
    skew: float = 1.1
    priority: str = "balanced"
    budget_seconds: float = 0.25
    deadline_seconds: float | None = None
    algorithm: str | None = None
    loop: str = "closed"
    concurrency: int = 4
    rate: float = 50.0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.loop not in ("closed", "open"):
            raise ValueError(f"loop must be 'closed' or 'open', got {self.loop!r}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (embedded in the load report)."""
        return {
            "scenarios": list(self.scenarios),
            "scale": self.scale,
            "num_requests": self.num_requests,
            "skew": self.skew,
            "priority": self.priority,
            "budget_seconds": self.budget_seconds,
            "deadline_seconds": self.deadline_seconds,
            "algorithm": self.algorithm,
            "loop": self.loop,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ScheduledRequest:
    """One slot of an HTTP load schedule.

    Attributes
    ----------
    position:
        Zero-based slot in the schedule (also the report order).
    offset_seconds:
        Open-loop arrival offset from the run start (0.0 throughout a
        closed-loop schedule, where workers self-pace).
    dataset_index:
        Index into the schedule's dataset population.
    wire:
        The exact JSON body this slot sends (pre-encoded, so a replay is
        byte-identical by construction).
    """

    position: int
    offset_seconds: float
    dataset_index: int
    wire: dict[str, Any]


@dataclass(frozen=True)
class HttpSchedule:
    """A fully materialised, seed-deterministic request schedule.

    Attributes
    ----------
    profile:
        The profile the schedule was built from.
    requests:
        The schedule slots, in firing order.
    num_datasets:
        Size of the distinct-dataset population behind the slots.
    """

    profile: HttpLoadProfile
    requests: tuple[ScheduledRequest, ...]
    num_datasets: int

    def fingerprint(self) -> str:
        """SHA-256 digest of the whole schedule (profile + every slot).

        Two calls to :func:`build_http_schedule` with equal profiles must
        produce equal fingerprints — the replay-determinism contract.
        """
        document = {
            "profile": self.profile.describe(),
            "num_datasets": self.num_datasets,
            "requests": [
                {
                    "position": slot.position,
                    "offset_seconds": round(slot.offset_seconds, 9),
                    "dataset_index": slot.dataset_index,
                    "wire": slot.wire,
                }
                for slot in self.requests
            ],
        }
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.requests)


def _population(profile: HttpLoadProfile) -> list[Dataset]:
    """The distinct datasets of the profile's scenarios, in catalog order."""
    datasets: list[Dataset] = []
    for name in profile.scenarios:
        datasets.extend(get_scenario(name).build(profile.scale, profile.seed))
    if not datasets:
        raise ValueError(f"http-load profile selects no dataset: {profile}")
    return datasets


def build_http_schedule(profile: HttpLoadProfile | None = None) -> HttpSchedule:
    """Materialise the deterministic schedule described by ``profile``.

    Dataset popularity follows the Zipf law of
    :func:`~repro.workloads.service_load.build_service_requests`; open-loop
    arrival offsets accumulate exponential inter-arrival gaps with mean
    ``1 / rate``.  Both draws come from one seeded generator, so the whole
    schedule — offsets, dataset choices, wire payloads — is a pure
    function of the profile.

    Parameters
    ----------
    profile:
        Load shape; defaults to :class:`HttpLoadProfile`'s defaults.
    """
    profile = profile or HttpLoadProfile()
    datasets = _population(profile)
    rng = np.random.default_rng(
        np.random.SeedSequence(
            [profile.seed, len(datasets), profile.num_requests]
        )
    )
    weights = 1.0 / np.power(np.arange(1, len(datasets) + 1), profile.skew)
    weights /= weights.sum()
    choices = rng.choice(len(datasets), size=profile.num_requests, p=weights)
    if profile.loop == "open":
        gaps = rng.exponential(1.0 / profile.rate, size=profile.num_requests)
        offsets = np.cumsum(gaps)
    else:
        offsets = np.zeros(profile.num_requests)
    slots = []
    for position, index in enumerate(choices):
        dataset = datasets[int(index)]
        wire = encode_aggregate_request(
            dataset,
            priority=profile.priority,
            budget_seconds=profile.budget_seconds,
            deadline_seconds=profile.deadline_seconds,
            algorithm=profile.algorithm,
            request_id=f"http-{position:05d}",
        )
        slots.append(
            ScheduledRequest(
                position=position,
                offset_seconds=float(offsets[position]),
                dataset_index=int(index),
                wire=wire,
            )
        )
    return HttpSchedule(
        profile=profile, requests=tuple(slots), num_datasets=len(datasets)
    )


async def drive_http_load(
    schedule: HttpSchedule,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: str | None = None,
) -> dict[str, Any]:
    """Drive one schedule against a running server (async form).

    Use this inside an existing event loop (the in-process test suite
    starts server and load generator on one loop); :func:`run_http_load`
    is the blocking wrapper for CLI / benchmark use.

    Parameters
    ----------
    schedule:
        The schedule to drive (:func:`build_http_schedule`).
    host:
        Server address (TCP transport).
    port:
        Server port (TCP transport).
    unix_socket:
        Connect over a unix domain socket at this path instead of TCP.

    Returns
    -------
    dict
        The load report: latency percentiles (p50/p99/p999), throughput,
        per-status and per-source tallies, the schedule fingerprint and
        the order-sensitive digest of every answer's content
        (``results_fingerprint``).
    """
    profile = schedule.profile
    records: list[dict[str, Any] | None] = [None] * len(schedule.requests)

    def _make_client() -> AsyncHttpClient:
        return AsyncHttpClient(host, port, unix_socket=unix_socket)

    started = time.perf_counter()
    if profile.loop == "closed":
        queue: asyncio.Queue[ScheduledRequest] = asyncio.Queue()
        for slot in schedule.requests:
            queue.put_nowait(slot)

        async def _worker() -> None:
            client = _make_client()
            try:
                while True:
                    try:
                        slot = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    records[slot.position] = await _fire(client, slot)
            finally:
                await client.close()

        await asyncio.gather(
            *(_worker() for _ in range(profile.concurrency))
        )
    else:
        pool: list[AsyncHttpClient] = [
            _make_client() for _ in range(profile.concurrency)
        ]

        async def _timed(slot: ScheduledRequest) -> None:
            delay = slot.offset_seconds - (time.perf_counter() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            client = pool.pop() if pool else _make_client()
            try:
                records[slot.position] = await _fire(client, slot)
            finally:
                pool.append(client)

        try:
            await asyncio.gather(
                *(_timed(slot) for slot in schedule.requests)
            )
        finally:
            for client in pool:
                await client.close()
    wall_seconds = time.perf_counter() - started

    done = [record for record in records if record is not None]
    by_status: dict[str, int] = {}
    by_source: dict[str, int] = {}
    for record in done:
        by_status[record["status"]] = by_status.get(record["status"], 0) + 1
        by_source[record["source"]] = by_source.get(record["source"], 0) + 1
    latencies = np.array(
        [record["latency_seconds"] for record in done] or [0.0]
    )
    digest = hashlib.sha256()
    for record in done:
        digest.update(record["result_fingerprint"].encode("ascii"))
    return {
        "report": "http-load",
        "profile": profile.describe(),
        "transport": unix_socket or f"{host}:{port}",
        "num_requests": len(schedule.requests),
        "completed": len(done),
        "failed": int(by_status.get("failed", 0)),
        "by_status": dict(sorted(by_status.items())),
        "by_source": dict(sorted(by_source.items())),
        "latency_seconds": {
            "p50": float(np.percentile(latencies, 50)),
            "p99": float(np.percentile(latencies, 99)),
            "p999": float(np.percentile(latencies, 99.9)),
            "mean": float(latencies.mean()),
            "max": float(latencies.max()),
        },
        "wall_seconds": wall_seconds,
        "throughput_rps": (
            len(done) / wall_seconds if wall_seconds > 0 else 0.0
        ),
        "schedule_fingerprint": schedule.fingerprint(),
        "results_fingerprint": digest.hexdigest(),
        "result_fingerprints": [
            record["result_fingerprint"] for record in done
        ],
    }


async def _fire(
    client: AsyncHttpClient, slot: ScheduledRequest
) -> dict[str, Any]:
    """Send one scheduled request and distill its record.

    Transport-level trouble (connection refused mid-run, a drained
    server hanging up) becomes a ``failed`` record with
    ``source="transport"`` — the report's ``failed`` tally must count
    it, not a traceback.
    """
    sent = time.perf_counter()
    try:
        code, payload = await client.request("POST", "/aggregate", slot.wire)
    except (OSError, asyncio.IncompleteReadError) as error:
        await client.close()
        payload = {"status": "failed", "error": f"transport: {error}"}
        return {
            "position": slot.position,
            "http_code": 0,
            "status": "failed",
            "source": "transport",
            "shard": None,
            "latency_seconds": time.perf_counter() - sent,
            "result_fingerprint": result_fingerprint(payload),
        }
    latency = time.perf_counter() - sent
    return {
        "position": slot.position,
        "http_code": code,
        "status": str(payload.get("status") or "failed"),
        "source": str(payload.get("source") or "unknown"),
        "shard": payload.get("shard"),
        "latency_seconds": latency,
        "result_fingerprint": result_fingerprint(payload),
    }


def run_http_load(
    schedule: HttpSchedule,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: str | None = None,
) -> dict[str, Any]:
    """Blocking wrapper over :func:`drive_http_load` (CLI / benchmarks).

    Parameters
    ----------
    schedule:
        The schedule to drive.
    host:
        Server address (TCP transport).
    port:
        Server port (TCP transport).
    unix_socket:
        Connect over a unix domain socket at this path instead of TCP.
    """
    return asyncio.run(
        drive_http_load(
            schedule, host=host, port=port, unix_socket=unix_socket
        )
    )
