"""ScenarioMatrix: fan a (scenario × algorithm × scale) grid through the engine.

The matrix driver is the workload counterpart of the experiment drivers: it
builds every selected scenario at the requested scale, cuts each scenario's
datasets into *shards* of ``shard_size`` datasets, and submits one
:class:`~repro.engine.job.BatchJob` per shard to the
:class:`~repro.engine.engine.ExecutionEngine`.  Shard-level batching keeps
individual jobs small enough for a parallel backend to interleave scenarios
while still amortising the per-job overhead, and every job carries a
``cache_context`` naming the scenario and its seed policy — so cache
entries of two scenarios can never alias, even if their datasets happen to
produce identical content fingerprints (see
:func:`repro.engine.fingerprint.run_key`).

Within a shard, every (algorithm, dataset) spec shares the dataset's
preparation plan (:mod:`repro.core.prepared`): the engine builds the
O(m·n²) pairwise structure once per dataset and the whole suite — exact
reference included — aggregates through it.

The outcome is a :class:`~repro.workloads.report.MatrixReport`: per-scenario
summary statistics (the Table 4/5 columns over the scenario's datasets),
execution accounting, and a machine-readable ``workloads_report.json``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from ..algorithms.registry import make_algorithm
from ..engine.engine import ExecutionEngine
from ..engine.job import BatchJob
from ..evaluation.runner import EvaluationReport
from ..experiments.config import AdaptiveExact
from ..telemetry import runtime as _telemetry
from ..telemetry.export import span_tree
from .report import MatrixReport, ScenarioResult
from .scenario import ScenarioScale, get_scenario, get_scenario_scale, scenario_names

__all__ = ["DEFAULT_MATRIX_ALGORITHMS", "ScenarioMatrix"]

# Fast, scalable suite usable on every scenario (no LP, no exponential search).
DEFAULT_MATRIX_ALGORITHMS: tuple[str, ...] = (
    "BioConsert",
    "BordaCount",
    "CopelandMethod",
    "KwikSort",
    "MEDRank(0.5)",
    "Pick-a-Perm",
)


@dataclass
class ScenarioMatrix:
    """A (scenario × algorithm × scale) grid run through the execution engine.

    Parameters
    ----------
    scenarios:
        Scenario names; ``None`` selects every registered scenario.
    algorithms:
        Algorithm names from the registry (:data:`DEFAULT_MATRIX_ALGORITHMS`
        by default).
    scale:
        Scenario scale preset name or an explicit
        :class:`~repro.workloads.scenario.ScenarioScale`.
    seed:
        Base seed: scenario dataset generation *and* the randomized
        algorithms derive from it.
    shard_size:
        Number of datasets per engine job (shard-level batching).
    with_exact:
        Attach the adaptive exact solver as the per-dataset gap reference
        (skipped on datasets above the scale's ``exact_max_elements``).
    """

    scenarios: Sequence[str] | None = None
    algorithms: Sequence[str] = DEFAULT_MATRIX_ALGORITHMS
    scale: str | ScenarioScale = "smoke"
    seed: int = 2015
    shard_size: int = 2
    with_exact: bool = True
    _resolved_scale: ScenarioScale = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        self._resolved_scale = get_scenario_scale(self.scale)

    # ------------------------------------------------------------------ #
    def scenario_list(self) -> list[str]:
        """The resolved scenario selection, in registry (sorted) order."""
        if self.scenarios is None:
            return scenario_names()
        return [get_scenario(name).name for name in self.scenarios]

    def _suite(self) -> dict[str, object]:
        return {name: make_algorithm(name, seed=self.seed) for name in self.algorithms}

    def _shards(self, datasets: list) -> Iterator[list]:
        for start in range(0, len(datasets), self.shard_size):
            yield datasets[start : start + self.shard_size]

    def jobs(self) -> Iterator[tuple[str, int, BatchJob]]:
        """Yield ``(scenario_name, shard_index, job)`` for the whole grid."""
        scale = self._resolved_scale
        exact = (
            AdaptiveExact(milp_time_limit=scale.time_limit_seconds)
            if self.with_exact
            else None
        )
        for name in self.scenario_list():
            scenario = get_scenario(name)
            datasets = scenario.build(scale, self.seed)
            for shard_index, shard in enumerate(self._shards(datasets)):
                yield name, shard_index, BatchJob.from_algorithms(
                    shard,
                    self._suite(),
                    exact_algorithm=exact,
                    exact_max_elements=scale.exact_max_elements,
                    time_limit=scale.time_limit_seconds,
                    cache_context={
                        "scenario": scenario.name,
                        "seed_policy": scenario.seed_policy,
                        "base_seed": self.seed,
                    },
                )

    # ------------------------------------------------------------------ #
    def run(self, engine: ExecutionEngine | None = None) -> MatrixReport:
        """Execute the grid and assemble the matrix report.

        With telemetry enabled (:mod:`repro.telemetry`) each scenario's
        shards run under a ``matrix.scenario`` span and the scenario's
        span subtree is attached to its :class:`ScenarioResult` (the
        ``telemetry`` key of the report payload — stripped from the
        deterministic golden form).

        Parameters
        ----------
        engine:
            The execution engine to run the grid's jobs on; a default
            serial, cache-less engine is created when omitted.
        """
        engine = engine or ExecutionEngine()
        scale = self._resolved_scale
        results: list[ScenarioResult] = []
        current: str | None = None
        merged = EvaluationReport()
        shards = executed = cached = 0
        wall = 0.0
        scenario_span = None

        def capture_telemetry() -> dict | None:
            """Close the scenario span and snapshot its subtree."""
            nonlocal scenario_span
            if scenario_span is None:
                return None
            handle, scenario_span = scenario_span, None
            handle.__exit__(None, None, None)
            active = _telemetry.get_active()
            span_id = getattr(handle, "span_id", None)
            if active is None or span_id is None:
                return None
            return {
                "span_tree": span_tree(active.tracer.to_payload(), root_id=span_id)
            }

        def flush() -> None:
            nonlocal merged, shards, executed, cached, wall
            telemetry = capture_telemetry()
            if current is None:
                return
            scenario = get_scenario(current)
            failed = [
                {
                    "algorithm": run.algorithm,
                    "dataset": run.dataset,
                    "error": run.error,
                    "within_budget": run.within_budget,
                }
                for run in merged.runs
                if not run.succeeded
            ]
            results.append(
                ScenarioResult(
                    scenario=scenario.name,
                    family=scenario.family,
                    seed_policy=scenario.seed_policy,
                    normalization=scenario.normalization,
                    paper_section=scenario.paper_section,
                    num_datasets=len(merged.datasets()),
                    num_shards=shards,
                    dataset_features=dict(merged.dataset_features),
                    summary_rows=merged.summary_rows(),
                    optimal_scores=dict(merged.optimal_scores),
                    executed_runs=executed,
                    cached_runs=cached,
                    wall_seconds=wall,
                    failed_runs=failed,
                    telemetry=telemetry,
                )
            )
            merged = EvaluationReport()
            shards = executed = cached = 0
            wall = 0.0

        with _telemetry.span("matrix.run", scale=scale.name):
            for name, _, job in self.jobs():
                if name != current:
                    flush()
                    current = name
                    scenario_span = _telemetry.span("matrix.scenario", scenario=name)
                    scenario_span.__enter__()
                report = engine.run(job)
                merged = merged.merge(report)
                shards += 1
                executed += report.executed_runs
                cached += report.cached_runs
                wall += report.wall_seconds
            flush()

        return MatrixReport(
            scale=scale.name,
            seed=self.seed,
            shard_size=self.shard_size,
            algorithms=list(self.algorithms),
            backend=engine.backend.name,
            scenarios=results,
        )
