"""Built-in scenario catalog.

Every scenario below is a named, seeded, regenerable dataset regime.  The
first block replays the paper's own generation protocols as scenarios; the
second block opens the new ranking families (Mallows-with-ties,
skew-controlled Plackett–Luce); the third block is deliberately adversarial
(near-total ties, disjoint supports, heavy-tailed lengths) and exercises
the normalization hooks, since those regimes are incomplete by
construction.

Scenario sizes come from the :class:`~repro.workloads.scenario.ScenarioScale`
passed at build time, so the same catalog serves the smoke conformance
suite and the default-scale benchmark matrix.
"""

from __future__ import annotations

import numpy as np

from ..datasets.dataset import Dataset
from ..datasets.real_like import biomedical_like_dataset
from ..generators.adversarial import (
    disjoint_support_dataset,
    heavy_tailed_length_dataset,
    near_total_tie_dataset,
)
from ..generators.mallows_ties import mallows_ties_dataset
from ..generators.markov import markov_dataset
from ..generators.permutations import plackett_luce_dataset
from ..generators.unified_topk import unified_topk_dataset
from ..generators.uniform import uniform_dataset
from .scenario import ScenarioScale, register_scenario

__all__: list[str] = []


# --------------------------------------------------------------------------- #
# Paper regimes as scenarios
# --------------------------------------------------------------------------- #
@register_scenario(
    "uniform-ties",
    family="uniform",
    description="Uniformly random rankings with ties (exact big-integer sampler)",
    paper_section="6.1.1",
    expected={"complete": True},
    tags=("paper",),
)
def _uniform_ties(scale: ScenarioScale, rng: np.random.Generator, index: int) -> Dataset:
    return uniform_dataset(
        scale.num_rankings,
        scale.num_elements,
        rng,
        name=f"uniform-ties_{index:03d}",
    )


@register_scenario(
    "markov-similarity",
    family="markov",
    description="Markov-chain walks from a common seed ranking (controlled similarity)",
    seed_policy="shared-stream",
    paper_section="6.1.2",
    expected={"complete": True},
    tags=("paper",),
)
def _markov_similarity(scale: ScenarioScale, rng: np.random.Generator, index: int) -> Dataset:
    return markov_dataset(
        scale.num_rankings,
        scale.num_elements,
        scale.markov_steps,
        rng,
        name=f"markov-similarity_{index:03d}",
    )


@register_scenario(
    "unified-topk",
    family="unified-topk",
    description="Top-k truncated rankings over a large universe, then unified",
    paper_section="6.1.3",
    expected={"complete": True, "contains_ties": True},
    tags=("paper",),
)
def _unified_topk(scale: ScenarioScale, rng: np.random.Generator, index: int) -> Dataset:
    return unified_topk_dataset(
        scale.num_rankings,
        scale.large_universe,
        scale.top_k,
        scale.markov_steps,
        rng,
        name=f"unified-topk_{index:03d}",
    )


@register_scenario(
    "biomedical-like",
    family="real-like",
    description="Synthetic stand-in for the BioMedical group (graded, partial sources)",
    normalization="unification",
    paper_section="7.1 / Table 4",
    expected={"complete": True, "contains_ties": True},
    tags=("paper", "real-like"),
)
def _biomedical_like(scale: ScenarioScale, rng: np.random.Generator, index: int) -> Dataset:
    return biomedical_like_dataset(
        num_sources=scale.num_rankings,
        num_genes=scale.large_universe,
        rng=rng,
        name=f"biomedical-like_{index:03d}",
    )


# --------------------------------------------------------------------------- #
# New ranking families
# --------------------------------------------------------------------------- #
@register_scenario(
    "mallows-ties-concentrated",
    family="mallows-ties",
    description="Mallows-with-ties, low dispersion (phi=0.25): tight consensus regime",
    paper_section="generalizes 6.1.1 (Table 2 Mallows, extended to ties)",
    expected={"complete": True},
    tags=("new-family",),
)
def _mallows_ties_concentrated(
    scale: ScenarioScale, rng: np.random.Generator, index: int
) -> Dataset:
    return mallows_ties_dataset(
        scale.num_rankings,
        scale.num_elements,
        0.25,
        rng,
        name=f"mallows-ties-concentrated_{index:03d}",
    )


@register_scenario(
    "mallows-ties-diffuse",
    family="mallows-ties",
    description="Mallows-with-ties, high dispersion (phi=0.85): near-uniform regime",
    paper_section="generalizes 6.1.1 (Table 2 Mallows, extended to ties)",
    expected={"complete": True},
    tags=("new-family",),
)
def _mallows_ties_diffuse(
    scale: ScenarioScale, rng: np.random.Generator, index: int
) -> Dataset:
    return mallows_ties_dataset(
        scale.num_rankings,
        scale.num_elements,
        0.85,
        rng,
        name=f"mallows-ties-diffuse_{index:03d}",
    )


@register_scenario(
    "plackett-luce-skewed",
    family="plackett-luce",
    description="Plackett–Luce permutations with steep geometric utility skew",
    paper_section="generalizes Table 2 ([3],[5] permutation protocols)",
    expected={"complete": True, "contains_ties": False},
    tags=("new-family",),
)
def _plackett_luce_skewed(
    scale: ScenarioScale, rng: np.random.Generator, index: int
) -> Dataset:
    return plackett_luce_dataset(
        scale.num_rankings,
        scale.num_elements,
        rng,
        skew=1.2,
        skew_kind="geometric",
        name=f"plackett-luce-skewed_{index:03d}",
    )


@register_scenario(
    "plackett-luce-zipf",
    family="plackett-luce",
    description="Plackett–Luce permutations with heavy-tailed (Zipf) utilities",
    paper_section="generalizes Table 2 ([3],[5] permutation protocols)",
    expected={"complete": True, "contains_ties": False},
    tags=("new-family",),
)
def _plackett_luce_zipf(
    scale: ScenarioScale, rng: np.random.Generator, index: int
) -> Dataset:
    return plackett_luce_dataset(
        scale.num_rankings,
        scale.num_elements,
        rng,
        skew=1.1,
        skew_kind="zipf",
        name=f"plackett-luce-zipf_{index:03d}",
    )


# --------------------------------------------------------------------------- #
# Adversarial regimes
# --------------------------------------------------------------------------- #
@register_scenario(
    "near-total-ties",
    family="adversarial",
    description="A few singletons atop one giant tie bucket: tie costs dominate",
    paper_section="stresses the Section 2.2 tie semantics",
    expected={"complete": True, "contains_ties": True},
    tags=("adversarial",),
)
def _near_total_ties(scale: ScenarioScale, rng: np.random.Generator, index: int) -> Dataset:
    return near_total_tie_dataset(
        scale.num_rankings,
        scale.num_elements,
        rng,
        name=f"near-total-ties_{index:03d}",
    )


@register_scenario(
    "disjoint-shards",
    family="adversarial",
    description="Rankings over nearly disjoint universe shards; unification worst case",
    normalization="unification",
    paper_section="stresses 5.1 / the 7.3.1 WebSearch pathology",
    expected={"raw_complete": False, "complete": True, "contains_ties": True},
    tags=("adversarial",),
)
def _disjoint_shards(scale: ScenarioScale, rng: np.random.Generator, index: int) -> Dataset:
    return disjoint_support_dataset(
        scale.num_rankings,
        scale.large_universe,
        rng,
        name=f"disjoint-shards_{index:03d}",
    )


@register_scenario(
    "heavy-tailed-lengths",
    family="adversarial",
    description="Zipf-distributed ranking lengths: extreme per-ranking skew, unified",
    normalization="unification",
    paper_section="stresses 5.1 on length-skewed inputs",
    expected={"raw_complete": False, "complete": True},
    tags=("adversarial",),
)
def _heavy_tailed_lengths(
    scale: ScenarioScale, rng: np.random.Generator, index: int
) -> Dataset:
    return heavy_tailed_length_dataset(
        scale.num_rankings,
        scale.num_elements,
        rng,
        name=f"heavy-tailed-lengths_{index:03d}",
    )
