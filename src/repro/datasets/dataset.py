"""Dataset container.

In the paper a *dataset* systematically denotes a set of input rankings
(Section 2.2).  :class:`Dataset` wraps a list of :class:`~repro.core.Ranking`
objects together with a name and free-form metadata (generation parameters,
normalization applied, ...), and exposes the dataset-level statistics used
throughout the evaluation: domain, completeness, similarity, tie density.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..core.correlation import dataset_similarity
from ..core.exceptions import (
    DatasetMutationError,
    DomainMismatchError,
    EmptyDatasetError,
)
from ..core.pairwise import PairwiseWeights
from ..core.prepared import (
    PreparedDataset,
    cached_plan,
    prepare_rankings,
    rankings_fingerprint,
    store_plan,
)
from ..core.ranking import Element, Ranking

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A named set of input rankings with ties.

    Attributes
    ----------
    rankings:
        The input rankings.  They need not be over the same elements; use
        :mod:`repro.datasets.normalization` to make the dataset *complete*
        before running aggregation algorithms.
    name:
        Human-readable identifier, used in experiment reports.
    metadata:
        Free-form mapping recording how the dataset was obtained
        (generator parameters, normalization process, source group, ...).
    """

    rankings: tuple[Ranking, ...]
    name: str = "dataset"
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __init__(
        self,
        rankings: Iterable[Ranking],
        name: str = "dataset",
        metadata: Mapping[str, Any] | None = None,
    ):
        object.__setattr__(self, "rankings", tuple(rankings))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "metadata", dict(metadata or {}))

    # ------------------------------------------------------------------ #
    # Sequence-like access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rankings)

    def __iter__(self) -> Iterator[Ranking]:
        return iter(self.rankings)

    def __getitem__(self, index: int) -> Ranking:
        return self.rankings[index]

    @property
    def num_rankings(self) -> int:
        """Number of input rankings ``m``."""
        return len(self.rankings)

    # ------------------------------------------------------------------ #
    # Domain
    # ------------------------------------------------------------------ #
    def universe(self) -> frozenset[Element]:
        """Union of the elements appearing in at least one ranking."""
        universe: set[Element] = set()
        for ranking in self.rankings:
            universe |= ranking.domain
        return frozenset(universe)

    def common_elements(self) -> frozenset[Element]:
        """Intersection of the elements appearing in every ranking."""
        if not self.rankings:
            return frozenset()
        common = set(self.rankings[0].domain)
        for ranking in self.rankings[1:]:
            common &= ranking.domain
        return frozenset(common)

    @property
    def is_complete(self) -> bool:
        """``True`` when every ranking is over the same set of elements.

        Aggregation algorithms require a complete dataset; incomplete ones
        must first be normalized (projection or unification, Section 5.1).
        """
        if not self.rankings:
            return True
        domain = self.rankings[0].domain
        return all(ranking.domain == domain for ranking in self.rankings[1:])

    @property
    def num_elements(self) -> int:
        """Number of elements in the universe."""
        return len(self.universe())

    # ------------------------------------------------------------------ #
    # Statistics used by the evaluation
    # ------------------------------------------------------------------ #
    def similarity(self) -> float:
        """Intrinsic similarity ``s(R)`` (equation 5; requires completeness)."""
        self._require_complete()
        return dataset_similarity(self.rankings)

    def tie_density(self) -> float:
        """Average fraction of tied pairs across the input rankings."""
        if not self.rankings:
            return 0.0
        return sum(ranking.tie_density() for ranking in self.rankings) / len(self.rankings)

    def average_bucket_size(self) -> float:
        """Average bucket size across the input rankings."""
        sizes = [size for ranking in self.rankings for size in ranking.bucket_sizes()]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    def contains_ties(self) -> bool:
        """``True`` when at least one input ranking contains a tie."""
        return any(not ranking.is_permutation for ranking in self.rankings)

    def pairwise_weights(self) -> PairwiseWeights:
        """Pairwise weight matrices of the dataset (requires completeness).

        Served from the memoized preparation plan (:meth:`prepared`): the
        O(m·n²) matrices are built once per dataset, not once per call.
        """
        return self.prepared().weights

    def content_fingerprint(self) -> str:
        """Digest of the dataset *content* (rankings only, not name/metadata).

        Memoized on the instance (rankings are frozen to a tuple at
        construction); the same digest the engine's result cache and the
        worker-local plan cache key on.  Coherence with the memoized
        preparation plan is asserted: a caller who rebinds the rankings
        behind the dataclass's back (``object.__setattr__``) gets a
        :class:`~repro.core.exceptions.DatasetMutationError` instead of a
        stale digest feeding wrong cache hits.
        """
        fingerprint: str | None = self.__dict__.get("_content_fingerprint")
        if fingerprint is None:
            self._assert_unmutated()
            fingerprint = rankings_fingerprint(self.rankings)
            object.__setattr__(self, "_content_fingerprint", fingerprint)
        return fingerprint

    def prepared(self) -> PreparedDataset:
        """The dataset's preparation plan (requires completeness), memoized.

        The plan bundles the canonical element order, the dense position
        tensor and the pairwise weight matrices — everything the algorithm
        catalogue derives from a dataset.  It is built at most once per
        dataset instance; across instances with identical content (e.g.
        the fresh unpickled copies process-pool workers receive per work
        item) the worker-local fingerprint-keyed cache of
        :mod:`repro.core.prepared` steps in, so each worker also prepares
        a dataset only once.

        The memoized plan is guarded against out-of-band mutation: if the
        rankings no longer match the plan (someone rebound the sequence via
        ``object.__setattr__``), a
        :class:`~repro.core.exceptions.DatasetMutationError` is raised
        instead of silently serving a stale plan.
        """
        plan: PreparedDataset | None = self.__dict__.get("_plan")
        if plan is not None:
            self._assert_unmutated(plan)
            return plan
        self._assert_unmutated()
        self._require_complete()
        fingerprint = self.content_fingerprint()
        plan = cached_plan(fingerprint)
        if plan is None or not plan.matches(self.rankings):
            plan = prepare_rankings(self.rankings, fingerprint=fingerprint)
            store_plan(fingerprint, plan)
        object.__setattr__(self, "_plan", plan)
        return plan

    def _assert_unmutated(self, plan: PreparedDataset | None = None) -> None:
        """Assert the memoized state still describes ``self.rankings``.

        Cheap by construction: the rankings tuple is compared by identity
        first (O(m) pointer checks in the unmutated case).  ``plan`` is the
        already-memoized plan to verify; with ``None`` only the rankings
        container itself is checked (it must still be the frozen tuple).
        """
        if not isinstance(self.rankings, tuple):
            raise DatasetMutationError(
                f"dataset {self.name!r}: the rankings sequence was rebound to a "
                f"mutable {type(self.rankings).__name__}; datasets are immutable — "
                "use repro.core.LiveDataset for streaming writes"
            )
        if plan is not None and not plan.matches(self.rankings):
            raise DatasetMutationError(
                f"dataset {self.name!r}: the rankings no longer match the memoized "
                "preparation plan (the sequence was mutated or rebound); datasets "
                "are immutable — use repro.core.LiveDataset for streaming writes"
            )

    def describe(self) -> dict[str, Any]:
        """A dictionary of dataset features used by experiment reports and
        by the guidance engine (Section 7.4)."""
        features: dict[str, Any] = {
            "name": self.name,
            "num_rankings": self.num_rankings,
            "num_elements": self.num_elements,
            "is_complete": self.is_complete,
            "contains_ties": self.contains_ties(),
            "tie_density": round(self.tie_density(), 4),
            "average_bucket_size": round(self.average_bucket_size(), 4),
        }
        if self.is_complete and self.num_rankings >= 1 and self.num_elements >= 2:
            features["similarity"] = round(self.similarity(), 4)
        features.update(self.metadata)
        return features

    # ------------------------------------------------------------------ #
    # Derivation helpers
    # ------------------------------------------------------------------ #
    def with_rankings(self, rankings: Sequence[Ranking], suffix: str = "") -> "Dataset":
        """Return a new dataset with the same name/metadata and new rankings."""
        name = f"{self.name}{suffix}" if suffix else self.name
        return Dataset(rankings, name=name, metadata=dict(self.metadata))

    def with_metadata(self, **extra: Any) -> "Dataset":
        """Return a copy of the dataset with extra metadata entries."""
        metadata = dict(self.metadata)
        metadata.update(extra)
        return Dataset(self.rankings, name=self.name, metadata=metadata)

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict[str, Any]:
        """Pickle the content, never the memoized plan.

        Work items shipped to process-pool workers carry their dataset;
        including the O(n²) plan matrices would inflate every IPC payload.
        The (tiny, content-derived) fingerprint *is* kept, so workers can
        look their local plan cache up without re-serializing the rankings.
        """
        state = dict(self.__dict__)
        state.pop("_plan", None)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)

    def _require_complete(self) -> None:
        if not self.rankings:
            raise EmptyDatasetError(f"dataset {self.name!r} contains no ranking")
        if not self.is_complete:
            raise DomainMismatchError(
                f"dataset {self.name!r} is not complete (rankings are over "
                "different elements); apply projection or unification first"
            )

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, m={self.num_rankings}, "
            f"n={self.num_elements}, complete={self.is_complete})"
        )
