"""Plain-text serialization of datasets.

The paper's companion website distributes its 19 000 datasets as text files,
one ranking per line, buckets written between square brackets and elements
separated by commas, e.g.::

    [[A],[D],[B,C]]
    [[A],[B,C],[D]]
    [[D],[A,C],[B]]

This module reads and writes that format.  Elements are stored as strings;
purely numeric tokens are converted to ``int`` so that synthetic datasets
round-trip exactly.  Lines starting with ``#`` are comments and empty lines
are ignored.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from pathlib import Path

from ..core.exceptions import InvalidRankingError
from ..core.ranking import Element, Ranking
from .dataset import Dataset

__all__ = [
    "parse_ranking",
    "format_ranking",
    "loads",
    "dumps",
    "load_dataset",
    "save_dataset",
]

_BUCKET_PATTERN = re.compile(r"\[([^\[\]]*)\]")


def parse_ranking(line: str) -> Ranking:
    """Parse a single ranking from its textual representation.

    Accepts the bracketed form ``[[A],[B,C]]`` as well as the looser
    ``[A],[B,C]`` (without the outer brackets).
    """
    text = line.strip()
    if not text:
        raise InvalidRankingError("cannot parse a ranking from an empty line")
    if text.startswith("[[") and text.endswith("]]"):
        text = text[1:-1]
    buckets: list[list[Element]] = []
    matches = _BUCKET_PATTERN.findall(text)
    if not matches:
        raise InvalidRankingError(f"no bucket found in line {line!r}")
    for match in matches:
        tokens = [token.strip() for token in match.split(",") if token.strip()]
        if not tokens:
            raise InvalidRankingError(f"empty bucket in line {line!r}")
        buckets.append([_parse_element(token) for token in tokens])
    return Ranking(buckets)


def _parse_element(token: str) -> Element:
    if token.lstrip("-").isdigit():
        return int(token)
    return token


def format_ranking(ranking: Ranking) -> str:
    """Textual representation of a ranking, inverse of :func:`parse_ranking`."""
    buckets = ",".join(
        "[" + ",".join(str(element) for element in bucket) + "]"
        for bucket in ranking.buckets
    )
    return f"[{buckets}]"


def loads(text: str, *, name: str = "dataset") -> Dataset:
    """Parse a dataset from a multi-line string (one ranking per line)."""
    rankings = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rankings.append(parse_ranking(stripped))
    return Dataset(rankings, name=name)


def dumps(dataset: Dataset, *, include_header: bool = True) -> str:
    """Serialize a dataset to the text format."""
    lines: list[str] = []
    if include_header:
        lines.append(f"# dataset: {dataset.name}")
        for key, value in sorted(dataset.metadata.items()):
            lines.append(f"# {key}: {value}")
    lines.extend(format_ranking(ranking) for ranking in dataset.rankings)
    return "\n".join(lines) + "\n"


def load_dataset(path: str | Path, *, name: str | None = None) -> Dataset:
    """Load a dataset from a text file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        text = handle.read()
    return loads(text, name=name or path.stem)


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset to a text file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(dumps(dataset))
    return path


def save_collection(datasets: Iterable[Dataset], directory: str | Path) -> list[Path]:
    """Write a collection of datasets, one file per dataset, into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, dataset in enumerate(datasets):
        filename = f"{dataset.name or 'dataset'}_{index:04d}.txt"
        paths.append(save_dataset(dataset, directory / filename))
    return paths
