"""Synthetic stand-ins for the paper's real-world datasets.

The paper evaluates the algorithms on four groups of real datasets (Table 2,
bold rows): **WebSearch**, **F1**, **SkiCross/SkiJumping** and
**BioMedical**.  Those datasets are not redistributable here, so this module
builds synthetic datasets that reproduce the *features* the paper identifies
as driving algorithm behaviour (Section 7): number of rankings, ranking
lengths, overlap between rankings (which controls the size of unification
buckets), tie density, and similarity regime (Figure 3).

Every builder returns a *raw* (incomplete) dataset, exactly like the real
data: rankings over overlapping but different element sets.  The caller
applies projection or unification, as the paper does, via
:mod:`repro.datasets.normalization`.

Published characteristics used to calibrate the builders
---------------------------------------------------------

* **F1** (Section 7.3.1): seasons of Formula 1; one ranking per race, each
  race ranking only the pilots who finished it.  Projection removes
  53.4% ± 25% of the pilots; projected datasets have ≈ 16 elements, unified
  ones ≈ 39.  Input rankings are permutations (no ties), similarity is
  positive (Figure 3).
* **WebSearch** (Sections 7.3.1, 5.1): top-1000 result lists from several
  search engines; projection removes ≈ 98.4% of the elements, projected
  datasets have ≈ 40 elements and unified ones ≈ 2586, with unification
  buckets of ≈ 1586 elements on average.  Our stand-in keeps the same
  *ratios* at a laptop-friendly scale (configurable).
* **SkiCross / SkiJumping**: small competition datasets, a handful of
  rankings over a few dozen competitors, high similarity, no ties.
* **BioMedical** ([12], Section 5.2): rankings of genes returned by queries
  against biomedical databases; rankings contain ties (grades shared by
  many genes), overlap is partial, and the paper uses them unified.  490
  datasets of modest size.

Each builder draws rankings from a noisy ground-truth ordering so that the
input rankings agree with each other to a controllable degree; agreement
levels are chosen to land the similarity ``s(R)`` in the regime Figure 3
reports for the corresponding group.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.ranking import Element, Ranking
from ..generators.markov import markov_walk
from .dataset import Dataset

__all__ = [
    "f1_like_dataset",
    "websearch_like_dataset",
    "skicross_like_dataset",
    "biomedical_like_dataset",
    "real_like_collection",
]


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _noisy_order(
    elements: Sequence[Element],
    strengths: np.ndarray,
    noise: float,
    rng: np.random.Generator,
) -> list[Element]:
    """Order elements by descending (strength + Gaussian noise)."""
    perturbed = strengths + rng.normal(0.0, noise, size=len(elements))
    order = np.argsort(-perturbed, kind="stable")
    return [elements[i] for i in order]


# --------------------------------------------------------------------------- #
# F1-like: permutations over partially overlapping drivers
# --------------------------------------------------------------------------- #
def f1_like_dataset(
    num_races: int = 16,
    num_pilots: int = 39,
    best_finish_rate: float = 0.99,
    worst_finish_rate: float = 0.68,
    noise: float = 0.6,
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "f1_like",
) -> Dataset:
    """A season of races: one permutation per race over the finishing pilots.

    Parameters
    ----------
    num_races:
        Number of rankings (races in the season).
    num_pilots:
        Total number of pilots entering the season (the unified universe).
    best_finish_rate, worst_finish_rate:
        Per-race probability of finishing for the strongest and the weakest
        pilot; the probability interpolates linearly in between.  Strong
        pilots finishing most races is what keeps the projected dataset
        non-trivial while still removing roughly half of the pilots, as
        reported in Section 7.3.1 of the paper.
    noise:
        Standard deviation of the per-race performance noise relative to a
        unit-spaced underlying pilot strength; controls the similarity.
    """
    generator = _as_generator(rng)
    pilots = [f"pilot_{i:02d}" for i in range(num_pilots)]
    strengths = np.linspace(num_pilots, 1, num_pilots, dtype=float)
    finish_rates = np.linspace(best_finish_rate, worst_finish_rate, num_pilots)
    rankings = []
    for _ in range(num_races):
        finished_mask = generator.random(num_pilots) < finish_rates
        if finished_mask.sum() < 2:
            finished_mask[:2] = True
        finishers = [pilot for pilot, ok in zip(pilots, finished_mask) if ok]
        finisher_strengths = strengths[finished_mask]
        order = _noisy_order(finishers, finisher_strengths, noise * num_pilots / 10, generator)
        rankings.append(Ranking.from_permutation(order))
    return Dataset(
        rankings,
        name=name,
        metadata={"group": "F1", "source": "synthetic-stand-in", "has_ties": False},
    )


# --------------------------------------------------------------------------- #
# WebSearch-like: long top-k lists with small overlap
# --------------------------------------------------------------------------- #
def websearch_like_dataset(
    num_engines: int = 4,
    universe_size: int = 600,
    results_per_engine: int = 160,
    overlap_bias: float = 3.0,
    tie_fraction: float = 0.15,
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "websearch_like",
) -> Dataset:
    """Top-k result lists of several search engines over a large document pool.

    Each engine ranks ``results_per_engine`` documents drawn from a shared
    universe with a popularity bias (``overlap_bias``): popular documents are
    retrieved by most engines, the long tail by a single engine.  This
    reproduces the WebSearch regime where projection keeps only a few
    percent of the elements while unification creates very large unification
    buckets.  A fraction of adjacent result pairs are tied to mimic
    grade-based scores.

    The default scale (4 × 160 results over 600 documents) is a
    laptop-friendly scaled-down version of the paper's 1000-result lists;
    the *ratios* (overlap ≈ 1.6%, unification bucket ≈ 60% of the universe)
    match the published statistics.
    """
    generator = _as_generator(rng)
    documents = [f"doc_{i:04d}" for i in range(universe_size)]
    relevance = np.linspace(universe_size, 1, universe_size, dtype=float)
    # Popularity: geometric-ish retrieval probability decreasing with rank.
    retrieval_probability = np.exp(-overlap_bias * np.arange(universe_size) / universe_size)
    rankings = []
    for _ in range(num_engines):
        retrieved_mask = generator.random(universe_size) < retrieval_probability
        retrieved = [doc for doc, ok in zip(documents, retrieved_mask) if ok]
        if len(retrieved) < results_per_engine:
            missing = [doc for doc in documents if doc not in set(retrieved)]
            generator.shuffle(missing)
            retrieved.extend(missing[: results_per_engine - len(retrieved)])
        else:
            generator.shuffle(retrieved)
            retrieved = retrieved[:results_per_engine]
        strengths = np.array([relevance[documents.index(doc)] for doc in retrieved])
        order = _noisy_order(retrieved, strengths, universe_size / 12, generator)
        rankings.append(_tie_adjacent(order, tie_fraction, generator))
    return Dataset(
        rankings,
        name=name,
        metadata={"group": "WebSearch", "source": "synthetic-stand-in", "has_ties": True},
    )


def _tie_adjacent(
    order: Sequence[Element], tie_fraction: float, rng: np.random.Generator
) -> Ranking:
    """Merge a fraction of adjacent pairs of a permutation into shared buckets."""
    buckets: list[list[Element]] = []
    for element in order:
        if buckets and rng.random() < tie_fraction:
            buckets[-1].append(element)
        else:
            buckets.append([element])
    return Ranking(buckets)


# --------------------------------------------------------------------------- #
# SkiCross-like: small, highly similar competition rankings
# --------------------------------------------------------------------------- #
def skicross_like_dataset(
    num_runs: int = 4,
    num_competitors: int = 32,
    participation_rate: float = 0.85,
    noise: float = 0.5,
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "skicross_like",
) -> Dataset:
    """A small competition: a few permutations over mostly the same athletes.

    High similarity, no ties, small universe — the regime of the paper's
    SkiCross/SkiJumping datasets.
    """
    generator = _as_generator(rng)
    competitors = [f"athlete_{i:02d}" for i in range(num_competitors)]
    strengths = np.linspace(num_competitors, 1, num_competitors, dtype=float)
    rankings = []
    for _ in range(num_runs):
        present_mask = generator.random(num_competitors) < participation_rate
        if present_mask.sum() < 2:
            present_mask[:2] = True
        present = [c for c, ok in zip(competitors, present_mask) if ok]
        present_strengths = strengths[present_mask]
        order = _noisy_order(present, present_strengths, noise * num_competitors / 10, generator)
        rankings.append(Ranking.from_permutation(order))
    return Dataset(
        rankings,
        name=name,
        metadata={"group": "SkiCross", "source": "synthetic-stand-in", "has_ties": False},
    )


# --------------------------------------------------------------------------- #
# BioMedical-like: rankings of genes with large grade-induced ties
# --------------------------------------------------------------------------- #
def biomedical_like_dataset(
    num_sources: int = 5,
    num_genes: int = 28,
    coverage_rate: float = 0.75,
    grade_levels: int = 5,
    divergence_steps: int = 40,
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "biomedical_like",
) -> Dataset:
    """Rankings of genes returned by several biomedical sources.

    Each source covers only part of the gene universe, assigns coarse grades
    (creating large buckets of tied genes) and diverges moderately from the
    shared ground truth (controlled by ``divergence_steps`` of the Markov
    chain of Section 6.1.2).  The paper uses the BioMedical group unified;
    it is the only real group with native ties.
    """
    generator = _as_generator(rng)
    genes = [f"gene_{i:03d}" for i in range(num_genes)]
    # Ground-truth grading: genes partitioned into ordered grade buckets.
    grades = np.sort(generator.integers(0, grade_levels, size=num_genes))
    buckets: list[list[Element]] = [[] for _ in range(grade_levels)]
    for gene, grade in zip(genes, grades):
        buckets[int(grade)].append(gene)
    seed = Ranking([bucket for bucket in buckets if bucket])
    rankings = []
    for _ in range(num_sources):
        diverged = markov_walk(seed, divergence_steps, generator)
        covered_mask = generator.random(num_genes) < coverage_rate
        covered = {gene for gene, ok in zip(genes, covered_mask) if ok}
        if len(covered) < 2:
            covered = set(genes[:2])
        rankings.append(diverged.restricted_to(covered))
    return Dataset(
        rankings,
        name=name,
        metadata={"group": "BioMedical", "source": "synthetic-stand-in", "has_ties": True},
    )


# --------------------------------------------------------------------------- #
# Collections
# --------------------------------------------------------------------------- #
_BUILDERS = {
    "F1": f1_like_dataset,
    "WebSearch": websearch_like_dataset,
    "SkiCross": skicross_like_dataset,
    "BioMedical": biomedical_like_dataset,
}


def real_like_collection(
    group: str,
    num_datasets: int,
    rng: np.random.Generator | int | None = None,
    **builder_kwargs,
) -> list[Dataset]:
    """Generate several independent datasets of one real-world-like group.

    ``group`` is one of ``"F1"``, ``"WebSearch"``, ``"SkiCross"``,
    ``"BioMedical"``.  Extra keyword arguments are forwarded to the builder.
    """
    try:
        builder = _BUILDERS[group]
    except KeyError:
        raise ValueError(
            f"unknown real-world-like group {group!r}; expected one of {sorted(_BUILDERS)}"
        ) from None
    generator = _as_generator(rng)
    datasets = []
    for index in range(num_datasets):
        dataset = builder(rng=generator, **builder_kwargs)
        datasets.append(
            Dataset(
                dataset.rankings,
                name=f"{dataset.name}_{index:03d}",
                metadata=dict(dataset.metadata),
            )
        )
    return datasets
