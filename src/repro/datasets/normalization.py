"""Normalization processes: projection, unification, unified-broken.

Real datasets rarely rank the same elements in every ranking.  Section 5.1
of the paper describes the two standardization processes used in the
literature to turn such a *raw* dataset into a *complete* one (all rankings
over the same elements), plus the "broken" variant:

* **Projection** keeps only the elements present in *every* ranking and
  removes the others.  It may discard large numbers of relevant elements
  (Section 7.3.1: 53% of the F1 pilots, 98% of the WebSearch results).
* **Unification** appends, at the end of each ranking, a *unification
  bucket* containing the elements that appear in other rankings but not in
  this one.
* **Unified-broken** additionally breaks the unification bucket into
  singletons (arbitrary order), so the result only contains the ties that
  were present in the raw rankings — used by studies restricted to
  permutations.

A generalized process parameterised by a threshold ``k`` (discussed as
future work in Section 8) is also provided: elements belonging to fewer
than ``k`` rankings are removed, the others are unified.  ``k = m`` recovers
projection and ``k = 1`` recovers unification.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.exceptions import EmptyDatasetError
from ..core.ranking import Element, Ranking
from .dataset import Dataset

__all__ = [
    "project",
    "unify",
    "unify_broken",
    "normalize_with_threshold",
    "normalize",
    "ensure_complete",
]


def project(dataset: Dataset) -> Dataset:
    """Projection: keep only the elements present in every ranking of ``dataset``.

    The relative order (and the ties) of the kept elements are preserved in
    every ranking.  Rankings that lose all of their elements become empty
    and are dropped.
    """
    _require_rankings(dataset)
    common = dataset.common_elements()
    rankings = []
    for ranking in dataset.rankings:
        projected = ranking.restricted_to(common)
        if len(projected) > 0:
            rankings.append(projected)
    result = Dataset(rankings, name=dataset.name, metadata=dict(dataset.metadata))
    return result.with_metadata(normalization="projection")


def unify(dataset: Dataset) -> Dataset:
    """Unification: append missing elements in a final unification bucket.

    Every ranking of the result is over the full universe of the dataset.
    Rankings already covering the universe are kept unchanged.
    """
    _require_rankings(dataset)
    universe = dataset.universe()
    rankings = []
    for ranking in dataset.rankings:
        missing = sorted(universe - ranking.domain, key=_element_key)
        rankings.append(ranking.with_appended_bucket(missing))
    result = Dataset(rankings, name=dataset.name, metadata=dict(dataset.metadata))
    return result.with_metadata(normalization="unification")


def unify_broken(dataset: Dataset, *, break_all_ties: bool = False) -> Dataset:
    """Unified-broken: unification followed by breaking the unification bucket.

    The elements added by unification are appended as singleton buckets in a
    deterministic (sorted) order.  With ``break_all_ties=True`` every tie of
    the raw rankings is broken as well, producing permutations — this is the
    variant used by the studies restricted to permutations ([3] in the
    paper, GiantSlalom dataset).
    """
    _require_rankings(dataset)
    universe = dataset.universe()
    rankings = []
    for ranking in dataset.rankings:
        missing = sorted(universe - ranking.domain, key=_element_key)
        if break_all_ties:
            base = ranking.break_ties()
        else:
            base = ranking
        buckets = list(base.buckets) + [[element] for element in missing]
        rankings.append(Ranking(buckets))
    result = Dataset(rankings, name=dataset.name, metadata=dict(dataset.metadata))
    return result.with_metadata(normalization="unified-broken")


def normalize_with_threshold(dataset: Dataset, k: int) -> Dataset:
    """Threshold normalization (Section 8, future work).

    Elements appearing in fewer than ``k`` rankings are removed; the
    remaining elements are unified.  ``k = 1`` is plain unification and
    ``k = m`` (the number of rankings) is projection followed by a no-op
    unification.
    """
    _require_rankings(dataset)
    if k < 1:
        raise ValueError(f"threshold k must be >= 1, got {k}")
    counts: dict[Element, int] = {}
    for ranking in dataset.rankings:
        for element in ranking.domain:
            counts[element] = counts.get(element, 0) + 1
    kept = {element for element, count in counts.items() if count >= k}
    restricted = []
    for ranking in dataset.rankings:
        projected = ranking.restricted_to(kept)
        if len(projected) > 0:
            restricted.append(projected)
    if not restricted:
        raise EmptyDatasetError(
            f"threshold normalization with k={k} removed every element of "
            f"dataset {dataset.name!r}"
        )
    intermediate = Dataset(restricted, name=dataset.name, metadata=dict(dataset.metadata))
    return unify(intermediate).with_metadata(normalization=f"threshold-k={k}")


_PROCESSES = {
    "projection": project,
    "unification": unify,
    "unified-broken": unify_broken,
}


def normalize(dataset: Dataset, process: str) -> Dataset:
    """Apply a normalization process selected by name.

    ``process`` is one of ``"projection"``, ``"unification"`` or
    ``"unified-broken"``.
    """
    try:
        function = _PROCESSES[process]
    except KeyError:
        raise ValueError(
            f"unknown normalization process {process!r}; "
            f"expected one of {sorted(_PROCESSES)}"
        ) from None
    return function(dataset)


def ensure_complete(dataset: Dataset, process: str | None = None) -> Dataset:
    """Normalization hook used by the scenario workloads.

    With ``process`` given, applies that normalization unconditionally (so
    the scenario's declared mode is always recorded in the metadata).  With
    ``process=None`` the dataset is required to already be complete —
    incomplete datasets are unified as a safe default and flagged in the
    metadata, instead of failing deep inside an aggregation run.
    """
    if process is not None:
        return normalize(dataset, process)
    if dataset.is_complete:
        return dataset
    return unify(dataset).with_metadata(normalization="unification(auto)")


def _require_rankings(dataset: Dataset) -> None:
    if not dataset.rankings:
        raise EmptyDatasetError(f"dataset {dataset.name!r} contains no ranking")


def _element_key(element: Element) -> tuple[str, str]:
    return (type(element).__name__, repr(element))
