"""Datasets: container, normalization processes, I/O, real-world-like builders."""

from .dataset import Dataset
from .io import (
    dumps,
    format_ranking,
    load_dataset,
    loads,
    parse_ranking,
    save_dataset,
)
from .normalization import (
    ensure_complete,
    normalize,
    normalize_with_threshold,
    project,
    unify,
    unify_broken,
)
from .real_like import (
    biomedical_like_dataset,
    f1_like_dataset,
    real_like_collection,
    skicross_like_dataset,
    websearch_like_dataset,
)

__all__ = [
    "Dataset",
    "project",
    "unify",
    "unify_broken",
    "ensure_complete",
    "normalize",
    "normalize_with_threshold",
    "parse_ranking",
    "format_ranking",
    "loads",
    "dumps",
    "load_dataset",
    "save_dataset",
    "f1_like_dataset",
    "websearch_like_dataset",
    "skicross_like_dataset",
    "biomedical_like_dataset",
    "real_like_collection",
]
